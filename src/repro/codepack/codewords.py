"""CodePack codeword classes.

Paper Section 3.1: each 16-bit halfword symbol is translated to "a
variable bit codeword from 2 to 11 bits"; a codeword starts with "a 2 or
3 bit tag that tells the size", followed by a dictionary index.  The
all-zero *low* halfword -- by far the most common symbol -- is encoded
with a 2-bit tag and no index.  Halfwords absent from the dictionary are
escaped with a 3-bit raw tag followed by the 16 literal bits.

The paper does not publish IBM's exact tag allocation (and explicitly
does not model the PPC405 bit-for-bit), so we fix a concrete prefix-free
allocation satisfying every published constraint:

===========  ===========  ==========  ================  ============
tag (bits)   low stream   high stream index bits        codeword len
===========  ===========  ==========  ================  ============
``00``       literal 0    class A     0 (low) / 4 (hi)  2 / 6
``01``       class A      class B     4 / 6             6 / 8
``10``       class B      class C     6 / 8             8 / 10
``110``      class C      --          8 / --            11 / --
``111``      raw escape   raw escape  16 literal        19
===========  ===========  ==========  ================  ============

Class capacities are 16 / 64 / 256 entries, so each dictionary holds at
most 336 entries -- within the paper's "2 dictionaries of less than 512
entries each", and the maximum *compressed* codeword is 11 bits.
"""

from dataclasses import dataclass
from functools import lru_cache

#: Bits in the raw-escape tag.
RAW_TAG_BITS = 3
#: Literal bits following a raw tag.
RAW_HALFWORD_BITS = 16
#: Total length of a raw-escaped halfword.
RAW_CODEWORD_BITS = RAW_TAG_BITS + RAW_HALFWORD_BITS


@dataclass(frozen=True)
class CodewordClass:
    """One tagged size class: *capacity* entries of *index_bits* each."""

    tag: int
    tag_bits: int
    index_bits: int

    @property
    def capacity(self):
        return 1 << self.index_bits

    @property
    def total_bits(self):
        return self.tag_bits + self.index_bits


@dataclass(frozen=True)
class CodewordScheme:
    """The complete codeword allocation for one halfword stream.

    ``classes`` are ordered shortest-first; dictionary entry *i* belongs
    to the first class whose cumulative capacity exceeds *i*.
    ``zero_special`` marks the low stream, where the value 0 is encoded
    by the first tag alone (2 bits, no index) and never occupies a
    dictionary slot.
    """

    name: str
    classes: tuple
    zero_special: bool
    raw_tag: int = 0b111
    raw_tag_bits: int = RAW_TAG_BITS

    @property
    def dictionary_capacity(self):
        """Maximum number of dictionary entries the scheme can index."""
        return sum(cls.capacity for cls in self.classes)

    def class_of_entry(self, entry_index):
        """The (class, index-within-class) pair for a dictionary slot."""
        base = 0
        for cls in self.classes:
            if entry_index < base + cls.capacity:
                return cls, entry_index - base
            base += cls.capacity
        raise IndexError("dictionary entry %d beyond capacity %d"
                         % (entry_index, self.dictionary_capacity))

    def entry_of_class(self, cls, index_in_class):
        """Inverse of :meth:`class_of_entry`."""
        base = 0
        for candidate in self.classes:
            if candidate is cls or candidate == cls:
                return base + index_in_class
            base += candidate.capacity
        raise ValueError("class not part of scheme")

    def encoded_bits(self, entry_index):
        """Codeword length for dictionary slot *entry_index*."""
        cls, _ = self.class_of_entry(entry_index)
        return cls.total_bits

    def class_for_tag(self, tag, tag_bits):
        """Look up a class by its decoded tag; None for the raw tag."""
        if tag == self.raw_tag and tag_bits == self.raw_tag_bits:
            return None
        for cls in self.classes:
            if cls.tag == tag and cls.tag_bits == tag_bits:
                return cls
        raise KeyError("unknown tag %s/%d in %s stream"
                       % (bin(tag), tag_bits, self.name))


@lru_cache(maxsize=None)
def slot_widths(scheme):
    """Codeword length of every dictionary slot of *scheme*, as a tuple.

    Memoised per scheme (schemes are frozen, hence hashable); replaces
    per-slot :meth:`CodewordScheme.encoded_bits` class scans in the
    dictionary-admission hot path.
    """
    widths = []
    for cls in scheme.classes:
        widths.extend([cls.total_bits] * cls.capacity)
    return tuple(widths)


def _low_scheme():
    # Tag 00 is the zero escape (2-bit codeword, no index); the remaining
    # classes index the low dictionary.
    return CodewordScheme(
        name="low",
        zero_special=True,
        classes=(
            CodewordClass(tag=0b01, tag_bits=2, index_bits=4),
            CodewordClass(tag=0b10, tag_bits=2, index_bits=6),
            CodewordClass(tag=0b110, tag_bits=3, index_bits=8),
        ),
    )


def _high_scheme():
    # The high halfword has no dominant single value, so tag 00 is a
    # normal (shortest) dictionary class.
    return CodewordScheme(
        name="high",
        zero_special=False,
        classes=(
            CodewordClass(tag=0b00, tag_bits=2, index_bits=4),
            CodewordClass(tag=0b01, tag_bits=2, index_bits=6),
            CodewordClass(tag=0b10, tag_bits=2, index_bits=8),
        ),
    )


LOW_SCHEME = _low_scheme()
HIGH_SCHEME = _high_scheme()

#: Tag used by the low stream for the literal-zero halfword.
LOW_ZERO_TAG = 0b00
LOW_ZERO_TAG_BITS = 2
