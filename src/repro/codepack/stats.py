"""Bit-exact composition accounting for the compressed image.

Paper Table 4 breaks the compressed region into seven categories:
index table, dictionary, compressed tags, dictionary indices, raw tags,
raw bits, and pad.  The compressor increments these counters as it
emits every field, so the percentages we report are exact, not
estimated.
"""

from dataclasses import dataclass, fields


@dataclass
class CompositionStats:
    """Bit counts per Table 4 category."""

    index_table_bits: int = 0
    dictionary_bits: int = 0
    compressed_tag_bits: int = 0
    dictionary_index_bits: int = 0
    raw_tag_bits: int = 0
    raw_bits: int = 0
    pad_bits: int = 0

    @property
    def total_bits(self):
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def total_bytes(self):
        total = self.total_bits
        if total % 8:
            raise ValueError("compressed image is not byte aligned")
        return total // 8

    def fractions(self):
        """Category -> fraction of the total, matching Table 4 columns."""
        total = float(self.total_bits)
        if not total:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / total for f in fields(self)}

    def merged(self, other):
        """Element-wise sum (used when aggregating per-block stats)."""
        merged = CompositionStats()
        for f in fields(self):
            setattr(merged, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return merged

    def as_row(self):
        """Percentages in Table 4 column order plus the byte total."""
        frac = self.fractions()
        order = ("index_table_bits", "dictionary_bits",
                 "compressed_tag_bits", "dictionary_index_bits",
                 "raw_tag_bits", "raw_bits", "pad_bits")
        return [frac[name] for name in order] + [self.total_bytes]
