"""The functional CodePack decoder (fast path).

This is the software model of paper Figure 1 step C: given the
compressed bytes of one block and the two dictionaries, reconstruct the
original 32-bit instructions.  The hardware timing aspects (burst
arrival, decode rate, output buffer) live in
:mod:`repro.sim.codepack_engine`; this module only cares about bit-exact
correctness and is what the round-trip tests exercise.

Decoding is table-driven: a per-image :class:`~repro.codepack.fastcodec.
BlockDecoder` resolves each codeword with a single ``2**11``-entry
lookup instead of the reference decoder's field-by-field bit reads.  The
decoder is cached on the image (keyed by dictionary identity, so
swapping an image's dictionaries invalidates it) and is proven
bit-identical to :mod:`repro.codepack.reference` by the differential
test harness.
"""

from repro.codepack.errors import DecompressionError
from repro.codepack.fastcodec import BlockDecoder, decode_raw_block
from repro.codepack.reference import decode_halfword_reference

#: Backwards-compatible alias: the per-bit halfword decoder now lives in
#: :mod:`repro.codepack.reference`.
_decode_halfword = decode_halfword_reference

__all__ = [
    "DecompressionError",
    "decoder_for_image",
    "decompress_block",
    "decompress_program",
    "iter_block_symbols",
]


def decoder_for_image(image):
    """The image's cached :class:`BlockDecoder`, (re)built on demand.

    The decode tables depend only on the image's schemes and
    dictionaries; the cache is invalidated when either dictionary
    object is replaced (the corruption tests do exactly that).
    """
    cache = getattr(image, "_fast_decoder", None)
    if cache is not None and cache[0] is image.high_dict \
            and cache[1] is image.low_dict:
        return cache[2]
    decoder = BlockDecoder(image.high_scheme, image.low_scheme,
                           image.high_dict, image.low_dict)
    image._fast_decoder = (image.high_dict, image.low_dict, decoder)
    return decoder


def _decode_block(image, block_index):
    """Decode one block; returns ``(words, end_bit_offsets)``."""
    block = image.blocks[block_index]
    if block.is_raw:
        return decode_raw_block(image.code_bytes, block.byte_offset,
                                block.n_instructions)
    return decoder_for_image(image).decode_block(
        image.code_bytes, block.byte_offset, block.n_instructions)


def iter_block_symbols(image, block_index):
    """Yield ``(instruction_word, end_bit_offset)`` for one block.

    ``end_bit_offset`` is measured from the start of the block's bytes;
    for raw blocks it advances 32 bits per instruction.  This is the
    decode loop the hardware engine performs serially, so the timing
    model shares it.
    """
    words, ends = _decode_block(image, block_index)
    return iter(zip(words, ends))


def decompress_block(image, block_index):
    """Decode one compression block back to instruction words."""
    return _decode_block(image, block_index)[0]


def decompress_program(image):
    """Decode the whole image back to the original ``.text`` words."""
    words = []
    for block_index in range(image.n_blocks):
        words.extend(decompress_block(image, block_index))
    if len(words) != image.n_instructions:
        raise DecompressionError(
            "decoded %d instructions, expected %d"
            % (len(words), image.n_instructions))
    return words
