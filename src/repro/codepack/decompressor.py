"""The functional CodePack decoder.

This is the software model of paper Figure 1 step C: given the
compressed bytes of one block and the two dictionaries, reconstruct the
original 32-bit instructions.  The hardware timing aspects (burst
arrival, decode rate, output buffer) live in
:mod:`repro.sim.codepack_engine`; this module only cares about bit-exact
correctness and is what the round-trip tests exercise.
"""

from repro.codepack.bitstream import BitReader
from repro.codepack.codewords import RAW_HALFWORD_BITS


class DecompressionError(ValueError):
    """Raised when the compressed stream is malformed."""


def _decode_halfword(reader, scheme, dictionary):
    """Decode one halfword symbol from *reader*."""
    tag = reader.read(2)
    tag_bits = 2
    if tag == 0b11:
        tag = (tag << 1) | reader.read(1)
        tag_bits = 3
    if tag == scheme.raw_tag and tag_bits == scheme.raw_tag_bits:
        return reader.read(RAW_HALFWORD_BITS)
    if scheme.zero_special and tag == 0b00 and tag_bits == 2:
        return 0
    try:
        cls = scheme.class_for_tag(tag, tag_bits)
    except KeyError as exc:
        raise DecompressionError(str(exc))
    index_in_class = reader.read(cls.index_bits)
    slot = scheme.entry_of_class(cls, index_in_class)
    if slot >= len(dictionary):
        raise DecompressionError(
            "dictionary slot %d beyond %s dictionary (%d entries)"
            % (slot, scheme.name, len(dictionary)))
    return dictionary.value(slot)


def iter_block_symbols(image, block_index):
    """Yield ``(instruction_word, end_bit_offset)`` for one block.

    ``end_bit_offset`` is measured from the start of the block's bytes;
    for raw blocks it advances 32 bits per instruction.  This is the
    decode loop the hardware engine performs serially, so the timing
    model shares it.
    """
    block = image.blocks[block_index]
    reader = BitReader(image.code_bytes, bit_offset=block.byte_offset * 8)
    base_bit = block.byte_offset * 8
    if block.is_raw:
        for _ in range(block.n_instructions):
            yield reader.read(32), reader.position - base_bit
        return
    for _ in range(block.n_instructions):
        high = _decode_halfword(reader, image.high_scheme, image.high_dict)
        low = _decode_halfword(reader, image.low_scheme, image.low_dict)
        yield (high << 16) | low, reader.position - base_bit


def decompress_block(image, block_index):
    """Decode one compression block back to instruction words."""
    return [word for word, _ in iter_block_symbols(image, block_index)]


def decompress_program(image):
    """Decode the whole image back to the original ``.text`` words."""
    words = []
    for block_index in range(image.n_blocks):
        words.extend(decompress_block(image, block_index))
    if len(words) != image.n_instructions:
        raise DecompressionError(
            "decoded %d instructions, expected %d"
            % (len(words), image.n_instructions))
    return words
