"""Frequency-driven dictionary construction.

Paper Section 3.1: "Because the high and low half-words have very
different distribution frequencies and values, two separate dictionaries
are used ... The most common half-word values receive the shortest
codewords.  The dictionaries are fixed at program load-time which allows
them to be adapted for specific programs."

:func:`build_dictionaries` counts halfword symbols over the ``.text``
section and assigns the most frequent values to the shortest codeword
classes.  A value is only admitted when encoding it through the
dictionary actually shrinks the program, counting the 16 bits its
dictionary slot costs in the compressed image -- this keeps the
single-occurrence tail raw, which is what produces the paper's
surprising 19--25% raw fraction (Table 4).
"""

import array
import heapq
import sys
from collections import Counter
from dataclasses import dataclass, field

from repro.codepack.codewords import RAW_CODEWORD_BITS, slot_widths

try:
    import numpy as _np
except ImportError:  # NumPy is optional everywhere in this package
    _np = None

#: Bits each dictionary slot occupies in the compressed image.
DICTIONARY_ENTRY_BITS = 16
#: Fixed per-dictionary header (entry count), mirroring a load-time blob.
DICTIONARY_HEADER_BITS = 32


@dataclass
class Dictionary:
    """One halfword dictionary: entry order defines codeword assignment.

    ``entries[i]`` is the halfword stored in slot *i*; slot numbers map
    to codeword classes through the :class:`CodewordScheme`.
    """

    scheme: object
    entries: list = field(default_factory=list)

    def __post_init__(self):
        self._slot_of = {value: i for i, value in enumerate(self.entries)}
        if len(self._slot_of) != len(self.entries):
            raise ValueError("duplicate dictionary entries")
        if len(self.entries) > self.scheme.dictionary_capacity:
            raise ValueError("dictionary exceeds scheme capacity")
        if self.scheme.zero_special and 0 in self._slot_of:
            raise ValueError("low dictionary must not contain 0")

    def __len__(self):
        return len(self.entries)

    def __contains__(self, value):
        return value in self._slot_of

    def slot(self, value):
        """Slot number of *value*, or ``None`` when not in the dictionary."""
        return self._slot_of.get(value)

    def value(self, slot):
        """Halfword stored in *slot*."""
        return self.entries[slot]

    @property
    def storage_bits(self):
        """Bits this dictionary occupies in the compressed image."""
        return DICTIONARY_HEADER_BITS + DICTIONARY_ENTRY_BITS * len(self)


def _admit(scheme, ranked):
    """Greedily fill dictionary slots with profitable values.

    *ranked* is ``(value, count)`` sorted most-frequent-first.  Slot *i*
    costs ``scheme.encoded_bits(i)`` per occurrence plus a one-off
    :data:`DICTIONARY_ENTRY_BITS`; the alternative is
    :data:`RAW_CODEWORD_BITS` per occurrence.
    """
    entries = []
    capacity = scheme.dictionary_capacity
    widths = slot_widths(scheme)
    for value, count in ranked:
        slot = len(entries)
        if slot >= capacity:
            break
        saving = count * (RAW_CODEWORD_BITS - widths[slot])
        if saving <= DICTIONARY_ENTRY_BITS:
            # Candidates are frequency-sorted and class widths only grow,
            # so no later candidate can be profitable either.
            break
        entries.append(value)
    return entries


def _pack_words(words):
    """*words* as a packed 32-bit :class:`array.array`, or ``None``.

    ``None`` means the words cannot be reinterpreted in C (a value out
    of range, a non-integer, or a platform with unusual C-int sizes)
    and callers must take the masking generator path.
    """
    try:
        packed = array.array("I", words)
    except (OverflowError, TypeError):
        return None
    return packed if packed.itemsize == 4 else None


def _split_halves(packed):
    """The (high, low) halfword streams of *packed* as NumPy arrays."""
    halves = _np.frombuffer(packed.tobytes(), dtype=_np.uint16)
    if sys.byteorder == "little":
        return halves[1::2], halves[0::2]
    return halves[0::2], halves[1::2]


def _bincount_histogram(halves):
    """A :class:`Counter` over 16-bit symbols via one bincount pass.

    Equivalent to ``Counter(halves)`` but vectorized: one histogram
    over the fixed 2^16 symbol space, then only the observed symbols
    materialise as Python ints.  Candidate ranking keys on
    ``(-count, value)`` -- a total order, since values are unique -- so
    the different iteration order versus ``Counter`` cannot change
    which entries are admitted: the built dictionaries are
    byte-identical.
    """
    counts = _np.bincount(halves, minlength=0x10000)
    values = _np.nonzero(counts)[0]
    return Counter(dict(zip(values.tolist(), counts[values].tolist())))


def halfword_histograms(words):
    """Count high and low halfword symbols over instruction *words*.

    The fast path reinterprets the words as packed 16-bit halves and
    histograms each stream with ``np.bincount`` over the full 2^16
    symbol space -- one C pass per dictionary, no per-symbol hashing.
    Without NumPy the :mod:`array` reinterpretation still splits the
    halves in C and :class:`Counter` does the counting; out-of-range
    words (or platforms with unusual C-int sizes) fall back to the
    generator path, which masks exactly like the reference encoder.
    All three tiers produce identical histograms.
    """
    packed = _pack_words(words)
    if packed is not None:
        if _np is not None and len(packed):
            high, low = _split_halves(packed)
            return (_bincount_histogram(high),
                    _bincount_histogram(low))
        halves = array.array("H", packed.tobytes())
        if sys.byteorder == "little":
            return Counter(halves[1::2]), Counter(halves[0::2])
        return Counter(halves[0::2]), Counter(halves[1::2])
    high = Counter((word >> 16) & 0xFFFF for word in words)
    low = Counter(word & 0xFFFF for word in words)
    return high, low


def _ranked_candidates(scheme, histogram):
    """Top-capacity ``(value, count)`` pairs by ``(-count, value)``.

    Deterministic: ties broken by value.  Only the top ``capacity``
    candidates can ever be admitted, so an O(n log capacity) partial
    sort replaces the full sort of the symbol tail.
    """
    items = histogram.items()
    if scheme.zero_special:
        items = ((value, count) for value, count in items if value != 0)
    return heapq.nsmallest(scheme.dictionary_capacity, items,
                           key=lambda pair: (-pair[1], pair[0]))


def _ranked_vectorized(scheme, halves):
    """Vectorized candidate ranking: bincount then stable argsort.

    ``np.nonzero`` yields observed values in ascending order, so a
    *stable* argsort on the negated counts produces exactly the
    ``(-count, value)`` lexicographic order :func:`_ranked_candidates`
    computes -- the two paths rank (and therefore admit) byte-identical
    dictionaries.  The symbol space never materialises as Python
    objects: only the top ``capacity`` survivors do.
    """
    counts = _np.bincount(halves, minlength=0x10000)
    values = _np.nonzero(counts)[0]
    counts = counts[values]
    if scheme.zero_special and values.size and values[0] == 0:
        values, counts = values[1:], counts[1:]
    order = _np.argsort(-counts, kind="stable")
    order = order[:scheme.dictionary_capacity]
    return list(zip(values[order].tolist(), counts[order].tolist()))


def build_dictionary(scheme, histogram):
    """Build one dictionary for *scheme* from a symbol *histogram*."""
    return Dictionary(scheme=scheme,
                      entries=_admit(scheme,
                                     _ranked_candidates(scheme, histogram)))


def build_dictionaries(words, high_scheme=None, low_scheme=None):
    """Build the (high, low) dictionary pair for a ``.text`` section.

    With NumPy the whole pipeline -- halfword split, histogram,
    frequency ranking -- runs as array kernels; otherwise the
    histogram/:func:`build_dictionary` path serves, with identical
    output either way.
    """
    from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME

    high_scheme = high_scheme or HIGH_SCHEME
    low_scheme = low_scheme or LOW_SCHEME
    if _np is not None:
        packed = _pack_words(words)
        if packed is not None and len(packed):
            high, low = _split_halves(packed)
            return (
                Dictionary(scheme=high_scheme,
                           entries=_admit(high_scheme,
                                          _ranked_vectorized(high_scheme,
                                                             high))),
                Dictionary(scheme=low_scheme,
                           entries=_admit(low_scheme,
                                          _ranked_vectorized(low_scheme,
                                                             low))),
            )
    high_hist, low_hist = halfword_histograms(words)
    return (build_dictionary(high_scheme, high_hist),
            build_dictionary(low_scheme, low_hist))
