"""Analytical companion to the codec: entropy bounds and coverage.

Two questions the paper's Tables 3-4 raise but do not answer:

* **How good is CodePack's encoding?**  The halfword streams have a
  zeroth-order entropy; a perfect halfword coder would reach it.
  :func:`entropy_report` compares the achieved bits/instruction against
  that bound and against the raw 32 bits.
* **Where do the bits go?**  :func:`coverage_report` breaks each
  halfword stream down by codeword class -- how many symbol
  *occurrences* each tag class absorbs and at what cost -- which
  explains Table 4's tag/index/raw composition mechanically.

Both operate on a program plus its :class:`CodePackImage` and are used
by the ``compression_analysis`` extension experiment and the examples.
"""

import math
from collections import Counter
from dataclasses import dataclass

from repro.codepack.codewords import (
    LOW_ZERO_TAG_BITS,
    RAW_CODEWORD_BITS,
)
from repro.codepack.dictionary import halfword_histograms


def shannon_entropy(histogram):
    """Zeroth-order entropy of a symbol histogram, in bits/symbol."""
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in histogram.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class EntropyReport:
    """Achieved vs entropy-bound coding cost for one program."""

    n_instructions: int
    high_entropy: float  # bits/symbol
    low_entropy: float
    achieved_code_bits: int  # tag+index+raw bits (no framing)
    framing_bits: int  # index table + dictionaries + pad

    @property
    def bound_bits_per_instruction(self):
        """Entropy bound for a (memoryless) halfword coder."""
        return self.high_entropy + self.low_entropy

    @property
    def achieved_bits_per_instruction(self):
        return self.achieved_code_bits / self.n_instructions

    @property
    def coding_efficiency(self):
        """Bound over achieved: 1.0 = entropy-optimal symbol coding."""
        if not self.achieved_code_bits:
            return 1.0
        return self.bound_bits_per_instruction \
            / self.achieved_bits_per_instruction

    @property
    def bound_ratio(self):
        """Best possible compression ratio for this symbol model
        (ignoring framing)."""
        return self.bound_bits_per_instruction / 32.0


def entropy_report(program, image):
    """Compare the image's coding cost against the entropy bound."""
    high_hist, low_hist = halfword_histograms(program.text)
    stats = image.stats
    code_bits = (stats.compressed_tag_bits + stats.dictionary_index_bits
                 + stats.raw_tag_bits + stats.raw_bits)
    framing = stats.index_table_bits + stats.dictionary_bits \
        + stats.pad_bits
    return EntropyReport(
        n_instructions=image.n_instructions,
        high_entropy=shannon_entropy(high_hist),
        low_entropy=shannon_entropy(low_hist),
        achieved_code_bits=code_bits,
        framing_bits=framing,
    )


@dataclass(frozen=True)
class ClassCoverage:
    """One codeword class's share of a halfword stream."""

    label: str
    codeword_bits: int
    occurrences: int  # symbol instances encoded through this class
    distinct_values: int
    total_bits: int

    def fraction_of(self, total_occurrences):
        if not total_occurrences:
            return 0.0
        return self.occurrences / total_occurrences


def _stream_coverage(scheme, dictionary, histogram):
    """Per-class coverage for one halfword stream."""
    rows = []
    remaining = Counter(histogram)
    if scheme.zero_special:
        zero_count = remaining.pop(0, 0)
        rows.append(ClassCoverage(
            label="zero escape (tag only)",
            codeword_bits=LOW_ZERO_TAG_BITS,
            occurrences=zero_count,
            distinct_values=1 if zero_count else 0,
            total_bits=zero_count * LOW_ZERO_TAG_BITS))
    base = 0
    for cls in scheme.classes:
        values = dictionary.entries[base:base + cls.capacity]
        occurrences = sum(remaining.pop(value, 0) for value in values)
        rows.append(ClassCoverage(
            label="%d-bit class (tag %s)" % (cls.total_bits,
                                             format(cls.tag,
                                                    "0%db" % cls.tag_bits)),
            codeword_bits=cls.total_bits,
            occurrences=occurrences,
            distinct_values=len(values),
            total_bits=occurrences * cls.total_bits))
        base += cls.capacity
    raw_occurrences = sum(remaining.values())
    rows.append(ClassCoverage(
        label="raw escape (19 bits)",
        codeword_bits=RAW_CODEWORD_BITS,
        occurrences=raw_occurrences,
        distinct_values=len(remaining),
        total_bits=raw_occurrences * RAW_CODEWORD_BITS))
    return rows


def coverage_report(program, image):
    """Per-class coverage for both streams: ``{"high": [...], "low":
    [...]}`` of :class:`ClassCoverage` rows."""
    high_hist, low_hist = halfword_histograms(program.text)
    return {
        "high": _stream_coverage(image.high_scheme, image.high_dict,
                                 high_hist),
        "low": _stream_coverage(image.low_scheme, image.low_dict,
                                low_hist),
    }


def format_entropy_report(report):
    """Render an :class:`EntropyReport` as text."""
    lines = [
        "halfword entropies: high %.2f + low %.2f = %.2f bits/instruction"
        % (report.high_entropy, report.low_entropy,
           report.bound_bits_per_instruction),
        "achieved coding:    %.2f bits/instruction "
        "(%.1f%% of entropy-optimal)"
        % (report.achieved_bits_per_instruction,
           100 * report.coding_efficiency),
        "entropy-bound ratio %.3f vs native 32 bits "
        "(framing adds %.2f bits/instruction)"
        % (report.bound_ratio,
           report.framing_bits / report.n_instructions),
    ]
    return "\n".join(lines)
