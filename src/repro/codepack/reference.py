"""The reference (per-bit) CodePack codec, retained as the oracle.

This module is the original, deliberately simple implementation of the
CodePack encoder and decoder: every codeword is emitted and consumed one
field at a time through :class:`~repro.codepack.bitstream.BitWriter` and
:class:`~repro.codepack.bitstream.BitReader`, mirroring the prose of
paper Section 3.1 line by line.

The production codec (:mod:`repro.codepack.compressor` and
:mod:`repro.codepack.decompressor`) packs and unpacks whole blocks at a
time through precomputed codeword tables -- an order of magnitude
faster, but much less obviously correct.  The differential test harness
(``tests/codepack/test_differential.py``) fuzzes both paths against each
other and asserts bit-exact images, so this module must stay the
straightforward transcription of the paper: clarity over speed.
"""

from repro.codepack.bitstream import BitReader, BitWriter
from repro.codepack.codewords import (
    HIGH_SCHEME,
    LOW_SCHEME,
    LOW_ZERO_TAG,
    LOW_ZERO_TAG_BITS,
    RAW_HALFWORD_BITS,
)
from repro.codepack.dictionary import build_dictionaries
from repro.codepack.errors import DecompressionError
from repro.codepack.index_table import IndexEntry
from repro.codepack.stats import CompositionStats
from repro.isa.encoding import INSTRUCTION_BYTES

#: Instructions per compression block (fixed by the paper).
BLOCK_INSTRUCTIONS = 16
#: Blocks per compression group / index entry.
GROUP_BLOCKS = 2


# -- encoding ----------------------------------------------------------------

def encode_halfword(writer, scheme, dictionary, value, stats):
    """Emit one halfword symbol; update *stats*; return bit count."""
    start = writer.bit_length
    if scheme.zero_special and value == 0:
        writer.write(LOW_ZERO_TAG, LOW_ZERO_TAG_BITS)
        stats.compressed_tag_bits += LOW_ZERO_TAG_BITS
        return writer.bit_length - start
    slot = dictionary.slot(value)
    if slot is None:
        writer.write(scheme.raw_tag, scheme.raw_tag_bits)
        writer.write(value, RAW_HALFWORD_BITS)
        stats.raw_tag_bits += scheme.raw_tag_bits
        stats.raw_bits += RAW_HALFWORD_BITS
        return writer.bit_length - start
    cls, index_in_class = scheme.class_of_entry(slot)
    writer.write(cls.tag, cls.tag_bits)
    writer.write(index_in_class, cls.index_bits)
    stats.compressed_tag_bits += cls.tag_bits
    stats.dictionary_index_bits += cls.index_bits
    return writer.bit_length - start


def encode_block_reference(words, high_scheme, low_scheme,
                           high_dict, low_dict):
    """Compress one block per-bit; returns (bytes, is_raw, ends, stats).

    The return contract is shared with the fast path's block encoder so
    the differential harness can compare block encodings directly.
    """
    writer = BitWriter()
    stats = CompositionStats()
    end_bits = []
    for word in words:
        encode_halfword(writer, high_scheme, high_dict,
                        (word >> 16) & 0xFFFF, stats)
        encode_halfword(writer, low_scheme, low_dict, word & 0xFFFF, stats)
        end_bits.append(writer.bit_length)
    pad = writer.pad_to_byte()
    stats.pad_bits += pad
    native_bits = len(words) * 32
    if writer.bit_length > native_bits:
        # Whole-block raw escape: store the native words unchanged.
        raw_writer = BitWriter()
        for word in words:
            raw_writer.write(word, 32)
        raw_stats = CompositionStats(raw_bits=native_bits)
        raw_ends = tuple(32 * (i + 1) for i in range(len(words)))
        return raw_writer.to_bytes(), True, raw_ends, raw_stats
    return writer.to_bytes(), False, tuple(end_bits), stats


def compress_words_reference(words, text_base=0, name="program",
                             high_scheme=None, low_scheme=None,
                             block_instructions=BLOCK_INSTRUCTIONS,
                             group_blocks=GROUP_BLOCKS,
                             high_dict=None, low_dict=None):
    """Per-bit equivalent of :func:`repro.codepack.compressor.compress_words`."""
    # Imported here to avoid a circular import at module load.
    from repro.codepack.compressor import BlockInfo, CodePackImage

    high_scheme = high_scheme or HIGH_SCHEME
    low_scheme = low_scheme or LOW_SCHEME
    if high_dict is None or low_dict is None:
        built_high, built_low = build_dictionaries(
            words, high_scheme=high_scheme, low_scheme=low_scheme)
        high_dict = high_dict or built_high
        low_dict = low_dict or built_low

    blocks = []
    chunks = []
    stats = CompositionStats()
    offset = 0
    for start in range(0, len(words), block_instructions):
        chunk_words = words[start:start + block_instructions]
        data, is_raw, end_bits, block_stats = encode_block_reference(
            chunk_words, high_scheme, low_scheme, high_dict, low_dict)
        blocks.append(BlockInfo(
            index=len(blocks),
            byte_offset=offset,
            byte_length=len(data),
            is_raw=is_raw,
            n_instructions=len(chunk_words),
            inst_end_bits=end_bits,
        ))
        chunks.append(data)
        stats = stats.merged(block_stats)
        offset += len(data)

    index_entries = build_index_entries(blocks, group_blocks)
    stats.index_table_bits = len(index_entries) * 32
    stats.dictionary_bits = high_dict.storage_bits + low_dict.storage_bits

    return CodePackImage(
        name=name,
        text_base=text_base,
        n_instructions=len(words),
        high_dict=high_dict,
        low_dict=low_dict,
        index_entries=index_entries,
        code_bytes=b"".join(chunks),
        blocks=blocks,
        stats=stats,
        original_bytes=len(words) * INSTRUCTION_BYTES,
        high_scheme=high_scheme,
        low_scheme=low_scheme,
        block_instructions=block_instructions,
        group_blocks=group_blocks,
    )


def compress_program_reference(program, **kwargs):
    """Per-bit equivalent of :func:`repro.codepack.compressor.compress_program`."""
    return compress_words_reference(program.text, text_base=program.text_base,
                                    name=program.name, **kwargs)


def build_index_entries(blocks, group_blocks):
    """Derive the group index entries from block geometry.

    Shared by the reference and fast compressors (and the batch API) so
    a future index-format change cannot silently diverge between paths.
    Each entry covers ``group_blocks`` blocks; only the first two are
    addressable per the 32-bit format.  A group holding a single (tail)
    block records that block's length as the second offset, keeping
    ``block2_base`` pointing one past the end of the code region.
    """
    entries = []
    for group_start in range(0, len(blocks), group_blocks):
        first = blocks[group_start]
        if group_blocks > 1 and group_start + 1 < len(blocks):
            second = blocks[group_start + 1]
            entries.append(IndexEntry(
                block1_base=first.byte_offset,
                block2_offset=second.byte_offset - first.byte_offset,
                block1_raw=first.is_raw,
                block2_raw=second.is_raw,
            ))
        else:
            entries.append(IndexEntry(
                block1_base=first.byte_offset,
                block2_offset=first.byte_length,
                block1_raw=first.is_raw,
                block2_raw=False,
            ))
    return entries


# -- decoding ----------------------------------------------------------------

def decode_halfword_reference(reader, scheme, dictionary):
    """Decode one halfword symbol from *reader*, field by field."""
    tag = reader.read(2)
    tag_bits = 2
    if tag == 0b11:
        tag = (tag << 1) | reader.read(1)
        tag_bits = 3
    if tag == scheme.raw_tag and tag_bits == scheme.raw_tag_bits:
        return reader.read(RAW_HALFWORD_BITS)
    if scheme.zero_special and tag == 0b00 and tag_bits == 2:
        return 0
    try:
        cls = scheme.class_for_tag(tag, tag_bits)
    except KeyError as exc:
        raise DecompressionError(str(exc))
    index_in_class = reader.read(cls.index_bits)
    slot = scheme.entry_of_class(cls, index_in_class)
    if slot >= len(dictionary):
        raise DecompressionError(
            "dictionary slot %d beyond %s dictionary (%d entries)"
            % (slot, scheme.name, len(dictionary)))
    return dictionary.value(slot)


def iter_block_symbols_reference(image, block_index):
    """Yield ``(instruction_word, end_bit_offset)`` for one block."""
    block = image.blocks[block_index]
    reader = BitReader(image.code_bytes, bit_offset=block.byte_offset * 8)
    base_bit = block.byte_offset * 8
    if block.is_raw:
        for _ in range(block.n_instructions):
            yield reader.read(32), reader.position - base_bit
        return
    for _ in range(block.n_instructions):
        high = decode_halfword_reference(reader, image.high_scheme,
                                         image.high_dict)
        low = decode_halfword_reference(reader, image.low_scheme,
                                        image.low_dict)
        yield (high << 16) | low, reader.position - base_bit


def decompress_block_reference(image, block_index):
    """Decode one compression block back to instruction words."""
    return [word for word, _ in iter_block_symbols_reference(image,
                                                             block_index)]


def decompress_program_reference(image):
    """Decode the whole image back to the original ``.text`` words."""
    words = []
    for block_index in range(image.n_blocks):
        words.extend(decompress_block_reference(image, block_index))
    if len(words) != image.n_instructions:
        raise DecompressionError(
            "decoded %d instructions, expected %d"
            % (len(words), image.n_instructions))
    return words
