"""The CodePack encoder.

Compression walks the ``.text`` section in 16-instruction *compression
blocks* (paper: "This is the granularity at which decompression
occurs").  Each instruction contributes a high codeword followed by a
low codeword; blocks are zero-padded to a byte boundary so that the
index table can address them with byte offsets.  Two consecutive blocks
form a *compression group* described by a single 32-bit index entry.

A block whose compressed form would be no smaller than its native 64
bytes is stored raw and flagged in the index entry (paper: "CodePack may
choose to not compress entire blocks in the case that using the
compression algorithm would expand them").

The resulting :class:`CodePackImage` carries everything downstream
consumers need: the raw compressed bytes and index table for the
functional decompressor, per-block geometry (including per-instruction
bit boundaries) for the decompression-engine timing model, and the
bit-exact :class:`~repro.codepack.stats.CompositionStats` for Table 4.
"""

from dataclasses import dataclass, field

from repro.codepack.bitstream import BitWriter
from repro.codepack.codewords import (
    HIGH_SCHEME,
    LOW_SCHEME,
    LOW_ZERO_TAG,
    LOW_ZERO_TAG_BITS,
    RAW_HALFWORD_BITS,
)
from repro.codepack.dictionary import build_dictionaries
from repro.codepack.index_table import IndexEntry
from repro.codepack.stats import CompositionStats
from repro.isa.encoding import INSTRUCTION_BYTES

#: Instructions per compression block (fixed by the paper).
BLOCK_INSTRUCTIONS = 16
#: Blocks per compression group / index entry.
GROUP_BLOCKS = 2
#: Instructions covered by one index entry.
GROUP_INSTRUCTIONS = BLOCK_INSTRUCTIONS * GROUP_BLOCKS
#: Native bits in a full block.
BLOCK_NATIVE_BITS = BLOCK_INSTRUCTIONS * 32


@dataclass(frozen=True)
class BlockInfo:
    """Geometry of one compressed block inside the code region.

    ``inst_end_bits[i]`` is the bit offset, from the start of the block,
    at which instruction *i*'s codewords end -- the decompression-engine
    timing model uses it to decide when each instruction's bits have
    arrived over the memory bus.
    """

    index: int
    byte_offset: int
    byte_length: int
    is_raw: bool
    n_instructions: int
    inst_end_bits: tuple

    @property
    def bit_length(self):
        return self.byte_length * 8


@dataclass
class CodePackImage:
    """A fully compressed program image.

    The native program is *not* stored here; CodePack keeps compressed
    and native address spaces disjoint and the CPU never sees this
    image directly -- only the decompression engine does.

    ``block_instructions``/``group_blocks`` default to the paper's
    16-instruction blocks and 2-block groups; the ablation benchmarks
    vary them.
    """

    name: str
    text_base: int
    n_instructions: int
    high_dict: object
    low_dict: object
    index_entries: list
    code_bytes: bytes
    blocks: list
    stats: CompositionStats
    original_bytes: int
    high_scheme: object = field(default=HIGH_SCHEME)
    low_scheme: object = field(default=LOW_SCHEME)
    block_instructions: int = BLOCK_INSTRUCTIONS
    group_blocks: int = GROUP_BLOCKS

    # -- size metrics --------------------------------------------------------

    @property
    def compressed_bytes(self):
        """Total compressed size: index table + dictionaries + code."""
        return self.stats.total_bytes

    @property
    def compression_ratio(self):
        """Paper Eq. 1: compressed size / original size (smaller is better)."""
        return self.compressed_bytes / float(self.original_bytes)

    @property
    def n_blocks(self):
        return len(self.blocks)

    @property
    def n_groups(self):
        return len(self.index_entries)

    # -- address mapping -------------------------------------------------------

    def block_of_address(self, addr):
        """Compression-block number containing native address *addr*."""
        index = (addr - self.text_base) \
            // (self.block_instructions * INSTRUCTION_BYTES)
        if not 0 <= index < len(self.blocks):
            raise IndexError("address %#x outside compressed text" % addr)
        return index

    def group_of_address(self, addr):
        """Compression-group number containing native address *addr*."""
        return self.block_of_address(addr) // self.group_blocks

    def block_base_address(self, block_index):
        """Native address of a block's first instruction."""
        return self.text_base \
            + block_index * self.block_instructions * INSTRUCTION_BYTES

    def slot_in_block(self, addr):
        """Position of the instruction at *addr* inside its block."""
        return ((addr - self.text_base) // INSTRUCTION_BYTES) \
            % self.block_instructions


def encode_halfword(writer, scheme, dictionary, value, stats):
    """Emit one halfword symbol; update *stats*; return bit count."""
    start = writer.bit_length
    if scheme.zero_special and value == 0:
        writer.write(LOW_ZERO_TAG, LOW_ZERO_TAG_BITS)
        stats.compressed_tag_bits += LOW_ZERO_TAG_BITS
        return writer.bit_length - start
    slot = dictionary.slot(value)
    if slot is None:
        writer.write(scheme.raw_tag, scheme.raw_tag_bits)
        writer.write(value, RAW_HALFWORD_BITS)
        stats.raw_tag_bits += scheme.raw_tag_bits
        stats.raw_bits += RAW_HALFWORD_BITS
        return writer.bit_length - start
    cls, index_in_class = scheme.class_of_entry(slot)
    writer.write(cls.tag, cls.tag_bits)
    writer.write(index_in_class, cls.index_bits)
    stats.compressed_tag_bits += cls.tag_bits
    stats.dictionary_index_bits += cls.index_bits
    return writer.bit_length - start


def _encode_block(words, image_args):
    """Compress one block; returns (bytes, BlockInfo fields, stats)."""
    high_scheme, low_scheme, high_dict, low_dict = image_args
    writer = BitWriter()
    stats = CompositionStats()
    end_bits = []
    for word in words:
        encode_halfword(writer, high_scheme, high_dict,
                        (word >> 16) & 0xFFFF, stats)
        encode_halfword(writer, low_scheme, low_dict, word & 0xFFFF, stats)
        end_bits.append(writer.bit_length)
    pad = writer.pad_to_byte()
    stats.pad_bits += pad
    native_bits = len(words) * 32
    if writer.bit_length > native_bits:
        # Whole-block raw escape: store the native words unchanged.
        raw_writer = BitWriter()
        for word in words:
            raw_writer.write(word, 32)
        raw_stats = CompositionStats(raw_bits=native_bits)
        raw_ends = tuple(32 * (i + 1) for i in range(len(words)))
        return raw_writer.to_bytes(), True, raw_ends, raw_stats
    return writer.to_bytes(), False, tuple(end_bits), stats


def compress_words(words, text_base=0, name="program",
                   high_scheme=None, low_scheme=None,
                   block_instructions=BLOCK_INSTRUCTIONS,
                   group_blocks=GROUP_BLOCKS,
                   high_dict=None, low_dict=None):
    """Compress a list of instruction words into a :class:`CodePackImage`.

    ``block_instructions`` and ``group_blocks`` default to the paper's
    fixed 16 and 2; they are exposed for the ablation studies only.
    Pre-built ``high_dict``/``low_dict`` override the per-program
    frequency build (the paper's load-time adaptation) -- used by the
    generic-dictionary ablation.
    """
    high_scheme = high_scheme or HIGH_SCHEME
    low_scheme = low_scheme or LOW_SCHEME
    if high_dict is None or low_dict is None:
        built_high, built_low = build_dictionaries(
            words, high_scheme=high_scheme, low_scheme=low_scheme)
        high_dict = high_dict or built_high
        low_dict = low_dict or built_low
    args = (high_scheme, low_scheme, high_dict, low_dict)

    blocks = []
    chunks = []
    stats = CompositionStats()
    offset = 0
    for start in range(0, len(words), block_instructions):
        chunk_words = words[start:start + block_instructions]
        data, is_raw, end_bits, block_stats = _encode_block(chunk_words, args)
        blocks.append(BlockInfo(
            index=len(blocks),
            byte_offset=offset,
            byte_length=len(data),
            is_raw=is_raw,
            n_instructions=len(chunk_words),
            inst_end_bits=end_bits,
        ))
        chunks.append(data)
        stats = stats.merged(block_stats)
        offset += len(data)

    index_entries = []
    for group_start in range(0, len(blocks), group_blocks):
        first = blocks[group_start]
        if group_blocks > 1 and group_start + 1 < len(blocks):
            second = blocks[group_start + 1]
            entry = IndexEntry(
                block1_base=first.byte_offset,
                block2_offset=second.byte_offset - first.byte_offset,
                block1_raw=first.is_raw,
                block2_raw=second.is_raw,
            )
        else:
            entry = IndexEntry(
                block1_base=first.byte_offset,
                block2_offset=first.byte_length,
                block1_raw=first.is_raw,
                block2_raw=False,
            )
        index_entries.append(entry)

    stats.index_table_bits = len(index_entries) * 32
    stats.dictionary_bits = high_dict.storage_bits + low_dict.storage_bits

    return CodePackImage(
        name=name,
        text_base=text_base,
        n_instructions=len(words),
        high_dict=high_dict,
        low_dict=low_dict,
        index_entries=index_entries,
        code_bytes=b"".join(chunks),
        blocks=blocks,
        stats=stats,
        original_bytes=len(words) * INSTRUCTION_BYTES,
        high_scheme=high_scheme,
        low_scheme=low_scheme,
        block_instructions=block_instructions,
        group_blocks=group_blocks,
    )


def compress_program(program, high_scheme=None, low_scheme=None,
                     block_instructions=BLOCK_INSTRUCTIONS,
                     group_blocks=GROUP_BLOCKS,
                     high_dict=None, low_dict=None):
    """Compress a :class:`~repro.isa.program.Program`'s ``.text`` section."""
    return compress_words(program.text, text_base=program.text_base,
                          name=program.name, high_scheme=high_scheme,
                          low_scheme=low_scheme,
                          block_instructions=block_instructions,
                          group_blocks=group_blocks,
                          high_dict=high_dict, low_dict=low_dict)
