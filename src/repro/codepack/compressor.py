"""The CodePack encoder.

Compression walks the ``.text`` section in 16-instruction *compression
blocks* (paper: "This is the granularity at which decompression
occurs").  Each instruction contributes a high codeword followed by a
low codeword; blocks are zero-padded to a byte boundary so that the
index table can address them with byte offsets.  Two consecutive blocks
form a *compression group* described by a single 32-bit index entry.

A block whose compressed form would be no smaller than its native 64
bytes is stored raw and flagged in the index entry (paper: "CodePack may
choose to not compress entire blocks in the case that using the
compression algorithm would expand them").

The resulting :class:`CodePackImage` carries everything downstream
consumers need: the raw compressed bytes and index table for the
functional decompressor, per-block geometry (including per-instruction
bit boundaries) for the decompression-engine timing model, and the
bit-exact :class:`~repro.codepack.stats.CompositionStats` for Table 4.

This is the **fast path**: blocks are packed word-at-a-time through the
precomputed codeword tables of :mod:`repro.codepack.fastcodec`.  The
original per-bit encoder survives as
:func:`repro.codepack.reference.compress_words_reference` and the
differential harness keeps the two bit-identical.
"""

from dataclasses import dataclass, field

from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME
from repro.codepack.dictionary import build_dictionaries
from repro.codepack.fastcodec import BlockEncoder
from repro.codepack.reference import build_index_entries, encode_halfword
from repro.codepack.stats import CompositionStats
from repro.isa.encoding import INSTRUCTION_BYTES

__all__ = [
    "BLOCK_INSTRUCTIONS",
    "GROUP_BLOCKS",
    "GROUP_INSTRUCTIONS",
    "BLOCK_NATIVE_BITS",
    "BlockInfo",
    "CodePackImage",
    "compress_words",
    "compress_program",
    "encode_halfword",
]

#: Instructions per compression block (fixed by the paper).
BLOCK_INSTRUCTIONS = 16
#: Blocks per compression group / index entry.
GROUP_BLOCKS = 2
#: Instructions covered by one index entry.
GROUP_INSTRUCTIONS = BLOCK_INSTRUCTIONS * GROUP_BLOCKS
#: Native bits in a full block.
BLOCK_NATIVE_BITS = BLOCK_INSTRUCTIONS * 32


@dataclass(frozen=True)
class BlockInfo:
    """Geometry of one compressed block inside the code region.

    ``inst_end_bits[i]`` is the bit offset, from the start of the block,
    at which instruction *i*'s codewords end -- the decompression-engine
    timing model uses it to decide when each instruction's bits have
    arrived over the memory bus.
    """

    index: int
    byte_offset: int
    byte_length: int
    is_raw: bool
    n_instructions: int
    inst_end_bits: tuple

    @property
    def bit_length(self):
        return self.byte_length * 8


@dataclass
class CodePackImage:
    """A fully compressed program image.

    The native program is *not* stored here; CodePack keeps compressed
    and native address spaces disjoint and the CPU never sees this
    image directly -- only the decompression engine does.

    ``block_instructions``/``group_blocks`` default to the paper's
    16-instruction blocks and 2-block groups; the ablation benchmarks
    vary them.
    """

    name: str
    text_base: int
    n_instructions: int
    high_dict: object
    low_dict: object
    index_entries: list
    code_bytes: bytes
    blocks: list
    stats: CompositionStats
    original_bytes: int
    high_scheme: object = field(default=HIGH_SCHEME)
    low_scheme: object = field(default=LOW_SCHEME)
    block_instructions: int = BLOCK_INSTRUCTIONS
    group_blocks: int = GROUP_BLOCKS

    # -- size metrics --------------------------------------------------------

    @property
    def compressed_bytes(self):
        """Total compressed size: index table + dictionaries + code."""
        return self.stats.total_bytes

    @property
    def compression_ratio(self):
        """Paper Eq. 1: compressed size / original size (smaller is better).

        An empty program has no meaningful ratio; report 1.0 rather than
        dividing by zero (the image still carries fixed container overhead).
        """
        if not self.original_bytes:
            return 1.0
        return self.compressed_bytes / float(self.original_bytes)

    @property
    def n_blocks(self):
        return len(self.blocks)

    @property
    def n_groups(self):
        return len(self.index_entries)

    # -- address mapping -------------------------------------------------------

    def block_of_address(self, addr):
        """Compression-block number containing native address *addr*."""
        index = (addr - self.text_base) \
            // (self.block_instructions * INSTRUCTION_BYTES)
        if not 0 <= index < len(self.blocks):
            raise IndexError("address %#x outside compressed text" % addr)
        return index

    def group_of_address(self, addr):
        """Compression-group number containing native address *addr*."""
        return self.block_of_address(addr) // self.group_blocks

    def block_base_address(self, block_index):
        """Native address of a block's first instruction."""
        return self.text_base \
            + block_index * self.block_instructions * INSTRUCTION_BYTES

    def slot_in_block(self, addr):
        """Position of the instruction at *addr* inside its block."""
        return ((addr - self.text_base) // INSTRUCTION_BYTES) \
            % self.block_instructions


def compress_words(words, text_base=0, name="program",
                   high_scheme=None, low_scheme=None,
                   block_instructions=BLOCK_INSTRUCTIONS,
                   group_blocks=GROUP_BLOCKS,
                   high_dict=None, low_dict=None):
    """Compress a list of instruction words into a :class:`CodePackImage`.

    ``block_instructions`` and ``group_blocks`` default to the paper's
    fixed 16 and 2; they are exposed for the ablation studies only.
    Pre-built ``high_dict``/``low_dict`` override the per-program
    frequency build (the paper's load-time adaptation) -- used by the
    generic-dictionary ablation.
    """
    high_scheme = high_scheme or HIGH_SCHEME
    low_scheme = low_scheme or LOW_SCHEME
    if high_dict is None or low_dict is None:
        built_high, built_low = build_dictionaries(
            words, high_scheme=high_scheme, low_scheme=low_scheme)
        high_dict = high_dict or built_high
        low_dict = low_dict or built_low
    encoder = BlockEncoder(high_scheme, low_scheme, high_dict, low_dict)

    blocks = []
    chunks = []
    ct = di = rt = rb = pad = 0
    offset = 0
    for start in range(0, len(words), block_instructions):
        chunk_words = words[start:start + block_instructions]
        data, is_raw, end_bits, block_stats = encoder.encode_block(
            chunk_words)
        blocks.append(BlockInfo(
            index=len(blocks),
            byte_offset=offset,
            byte_length=len(data),
            is_raw=is_raw,
            n_instructions=len(chunk_words),
            inst_end_bits=end_bits,
        ))
        chunks.append(data)
        ct += block_stats[0]
        di += block_stats[1]
        rt += block_stats[2]
        rb += block_stats[3]
        pad += block_stats[4]
        offset += len(data)

    index_entries = build_index_entries(blocks, group_blocks)
    stats = CompositionStats(
        index_table_bits=len(index_entries) * 32,
        dictionary_bits=high_dict.storage_bits + low_dict.storage_bits,
        compressed_tag_bits=ct,
        dictionary_index_bits=di,
        raw_tag_bits=rt,
        raw_bits=rb,
        pad_bits=pad,
    )

    return CodePackImage(
        name=name,
        text_base=text_base,
        n_instructions=len(words),
        high_dict=high_dict,
        low_dict=low_dict,
        index_entries=index_entries,
        code_bytes=b"".join(chunks),
        blocks=blocks,
        stats=stats,
        original_bytes=len(words) * INSTRUCTION_BYTES,
        high_scheme=high_scheme,
        low_scheme=low_scheme,
        block_instructions=block_instructions,
        group_blocks=group_blocks,
    )


def compress_program(program, high_scheme=None, low_scheme=None,
                     block_instructions=BLOCK_INSTRUCTIONS,
                     group_blocks=GROUP_BLOCKS,
                     high_dict=None, low_dict=None):
    """Compress a :class:`~repro.isa.program.Program`'s ``.text`` section."""
    return compress_words(program.text, text_base=program.text_base,
                          name=program.name, high_scheme=high_scheme,
                          low_scheme=low_scheme,
                          block_instructions=block_instructions,
                          group_blocks=group_blocks,
                          high_dict=high_dict, low_dict=low_dict)
