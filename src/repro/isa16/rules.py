"""Convertibility rules: which SS32 instructions get 16-bit forms.

The constraints mirror Thumb/MIPS16 reality:

* only eight **low registers** are directly encodable in 3-bit fields
  (we map SS32's $t0-$t7, the hottest registers in compiler-shaped
  code), with $sp and $ra reachable by dedicated forms;
* ALU operations are mostly **two-operand** (``rd == rs``), with
  three-operand forms only for add/sub;
* immediates shrink to 3-8 bits, load/store offsets to scaled 5-bit
  fields (SP-relative gets 8 bits);
* conditional branches compare one register against zero and reach
  ~±256 bytes; unconditional branches ~±2KB (checked at layout time);
* multiply/divide, ``lui``, ``jal`` and two-register compare-branches
  stay 32-bit.

``classify`` returns one of:

* :data:`CLASS_HALF` -- a single 16-bit form exists;
* :data:`CLASS_EXPAND` -- expressible as two 16-bit instructions
  (``move rd, rs`` + two-operand op), the classic Thumb expansion that
  inflates dynamic instruction count;
* :data:`CLASS_WORD` -- stays 32-bit.

Conditional control flow returns a *candidate* classification; the
translator demotes candidates whose targets end up out of reach.
"""

from repro.isa.encoding import decode, sign_extend_16
from repro.isa.opcodes import spec_for_word

CLASS_HALF = "half"
CLASS_EXPAND = "expand"
CLASS_WORD = "word"

#: SS32 registers encodable in SS16's 3-bit fields.  A Thumb/MIPS16
#: compiler allocates hot values to the eight low registers; we map
#: them onto $t0-$t7, the registers SS32 code (like MIPS compiler
#: output) channels most traffic through.
LOW_REGS = frozenset(range(8, 16))
SP = 29
RA = 31
ZERO = 0

#: Reach of a 16-bit conditional branch (bytes, either direction).
BRANCH_REACH = 250
#: Reach of a 16-bit unconditional branch.
JUMP_REACH = 2000

_COMMUTATIVE = frozenset({"addu", "add", "and", "or", "xor"})
_TWO_OP_ALU = frozenset({"and", "or", "xor", "nor", "slt", "sltu"})
_THREE_OP_ALU = frozenset({"addu", "add", "subu", "sub"})
_SHIFTS = frozenset({"sll", "srl", "sra"})
_VAR_SHIFTS = frozenset({"sllv", "srlv", "srav"})
_MULTDIV = frozenset({"mult", "multu", "div", "divu"})


def _low(*regs):
    return all(reg in LOW_REGS for reg in regs)


def _classify_rtype(spec, f):
    name = spec.name
    if name in _THREE_OP_ALU:
        # Register moves (addu rd, rs, $zero) have a dedicated MOV
        # form that even reaches high registers in Thumb.
        if name in ("addu", "add") and f.rt == ZERO:
            return CLASS_HALF if (f.rd in LOW_REGS or f.rs in LOW_REGS
                                  or f.rs == ZERO) else CLASS_WORD
        # Thumb has true three-operand ADD/SUB for low registers.
        return CLASS_HALF if _low(f.rd, f.rs, f.rt) else CLASS_WORD
    if name in _TWO_OP_ALU:
        if f.rd == f.rs and _low(f.rd, f.rt):
            return CLASS_HALF
        if f.rd == f.rt and name in _COMMUTATIVE and _low(f.rd, f.rs):
            return CLASS_HALF  # commutes into the two-operand shape
        if f.rd != f.rt and _low(f.rd, f.rs, f.rt):
            return CLASS_EXPAND  # move rd, rs ; op rd, rd, rt
        return CLASS_WORD
    if name in _SHIFTS:
        # Immediate shifts have full imm5 fields in Thumb.
        if f.rd == 0 and f.rt == 0 and f.shamt == 0:
            return CLASS_HALF  # nop
        return CLASS_HALF if _low(f.rd, f.rt) else CLASS_WORD
    if name in _VAR_SHIFTS:
        # Thumb register shifts are two-operand.
        if f.rd == f.rt and _low(f.rd, f.rs):
            return CLASS_HALF
        return CLASS_WORD
    if name in _MULTDIV:
        return CLASS_HALF if _low(f.rs, f.rt) else CLASS_WORD
    if name in ("mfhi", "mflo"):
        return CLASS_HALF if f.rd in LOW_REGS else CLASS_WORD
    if name == "jr":
        return CLASS_HALF  # BX works with any register
    if name == "jalr":
        return CLASS_HALF if f.rd == RA else CLASS_WORD
    if name == "syscall":
        return CLASS_HALF
    return CLASS_WORD


def _classify_itype(spec, f):
    name = spec.name
    simm = sign_extend_16(f.imm & 0xFFFF)
    if name in ("addiu", "addi"):
        if f.rs == ZERO and f.rt in LOW_REGS and 0 <= simm < 256:
            return CLASS_HALF  # MOV rd, #imm8
        if f.rt == f.rs and f.rt in LOW_REGS and -256 < simm < 256:
            return CLASS_HALF  # ADD/SUB rd, #imm8
        if f.rt == SP and f.rs == SP and simm % 4 == 0 \
                and -512 <= simm <= 508:
            return CLASS_HALF  # ADD SP, #imm7<<2 (frame push/pop)
        if _low(f.rt, f.rs) and 0 <= simm < 8:
            return CLASS_HALF  # ADD rd, rs, #imm3
        return CLASS_WORD
    if name in ("ori", "andi", "xori"):
        if f.rt == f.rs and f.rt in LOW_REGS and f.imm < 256:
            return CLASS_HALF
        return CLASS_WORD
    if name in ("slti", "sltiu"):
        if f.rt == f.rs and f.rt in LOW_REGS and 0 <= simm < 256:
            return CLASS_HALF  # CMP-style
        return CLASS_WORD
    if name == "lw" or name == "sw":
        if f.imm % 4:
            return CLASS_WORD
        if _low(f.rt, f.rs) and 0 <= f.imm < 128:
            return CLASS_HALF  # imm5 scaled by 4
        if f.rt in LOW_REGS and f.rs == SP and 0 <= f.imm < 1024:
            return CLASS_HALF  # SP-relative imm8 scaled by 4
        if f.rt == RA and f.rs == SP and 0 <= f.imm < 1024 \
                and f.imm % 4 == 0:
            return CLASS_HALF  # PUSH/POP {lr}
        return CLASS_WORD
    if name in ("lb", "lbu", "sb"):
        if _low(f.rt, f.rs) and 0 <= f.imm < 32:
            return CLASS_HALF
        return CLASS_WORD
    if name in ("lh", "lhu", "sh"):
        if _low(f.rt, f.rs) and 0 <= f.imm < 64 and f.imm % 2 == 0:
            return CLASS_HALF
        return CLASS_WORD
    if name in ("beq", "bne"):
        # Only compare-against-zero has a 16-bit form (CBZ/CBNZ-like);
        # reach is validated by the translator.
        if f.rt == ZERO and f.rs in LOW_REGS:
            return CLASS_HALF
        if f.rs == ZERO and f.rt in LOW_REGS:
            return CLASS_HALF
        if f.rs == ZERO and f.rt == ZERO:
            return CLASS_HALF  # unconditional branch
        return CLASS_WORD
    if name in ("blez", "bgtz", "bltz", "bgez"):
        return CLASS_HALF if f.rs in LOW_REGS else CLASS_WORD
    return CLASS_WORD


def classify(word):
    """Classify one SS32 instruction word (see module docstring)."""
    spec = spec_for_word(word)
    if spec is None:
        return CLASS_WORD
    fields = decode(word)
    if spec.fmt == "J":
        # j may become a short 16-bit branch (range checked at layout);
        # jal always needs the 32-bit form for its 26-bit target.
        return CLASS_HALF if spec.name == "j" else CLASS_WORD
    if spec.fmt == "R" or spec.op == 0:
        return _classify_rtype(spec, fields)
    return _classify_itype(spec, fields)


def is_reach_limited(word):
    """Whether a HALF classification still needs a layout reach check."""
    spec = spec_for_word(word)
    return spec is not None and spec.name in (
        "beq", "bne", "blez", "bgtz", "bltz", "bgez", "j")


def expansion_words(word):
    """The two SS32-equivalent words for a CLASS_EXPAND instruction.

    ``op rd, rs, rt`` (rd distinct from both) becomes
    ``addu rd, rs, $zero`` followed by ``op rd, rd, rt``.
    """
    from repro.isa.encoding import encode_r

    fields = decode(word)
    move = encode_r(0, fields.rs, 0, fields.rd, 0, 0x21)  # addu rd,rs,$0
    op = (word & ~(0x1F << 21)) | (fields.rd << 21)  # rs := rd
    return move, op
