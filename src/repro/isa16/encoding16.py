"""Binary encodings for SS16's 16-bit instruction forms.

:mod:`repro.isa16.rules` decides *which* SS32 instructions have 16-bit
forms; this module pins down the bits, so the translated program is a
real binary object (``assemble_mixed``) and not just a layout model.

Prefix allocation (MSB-first; ``p`` = 5-bit prefix ``h[15:11]``):

====== ============ =====================================================
prefix form         payload ``h[10:0]``
====== ============ =====================================================
0x00   SLL          shamt5, rt3, rd3
0x01   SRL          shamt5, rt3, rd3
0x02   SRA          shamt5, rt3, rd3
0x03   ADD3/SUB3    sub1, rs3, rt3, rd3, 0
0x04   MOVI         rd3, imm8            (addiu rd, $zero, imm8)
0x05   ADDI8        rd3, imm8            (addiu rd, rd, imm8)
0x06   SUBI8        rd3, imm8            (addiu rd, rd, -imm8)
0x07   SLTI8        rd3, imm8            (slti rd, rd, imm8)
0x08   ORI8         rd3, imm8
0x09   ANDI8        rd3, imm8
0x0A   XORI8        rd3, imm8
0x0B   LW5          imm5, rs3, rt3       (offset = imm5 * 4)
0x0C   SW5          imm5, rs3, rt3
0x0D   LWSP         rt3, imm8            (offset = imm8 * 4, base $sp)
0x0E   SWSP         rt3, imm8
0x0F   LB5          imm5, rs3, rt3
0x10   LBU5         imm5, rs3, rt3
0x11   SB5          imm5, rs3, rt3
0x12   LH5          imm5, rs3, rt3       (offset = imm5 * 2)
0x13   LHU5         imm5, rs3, rt3
0x14   SH5          imm5, rs3, rt3
0x15   BEQZ         rs3, off8            (offset in halfwords, signed)
0x16   BNEZ         rs3, off8
0x17   BLTZ         rs3, off8
0x18   BGEZ         rs3, off8
0x19   BLEZ         rs3, off8
0x1A   BGTZ         rs3, off8
0x1B   B            off11                (halfwords, signed)
0x1C   MISC         sub2 then: 0 SPADJ imm8s (offset = imm8s * 4);
                    1 LWRA imm8 (lw $ra, imm8*4($sp)); 2 SWRA imm8;
                    3 ADDI3 rd3, rs3, imm3
0x1D   ALU2         funct5, a3, b3: and or xor nor slt sltu sllv srlv
                    srav mult multu div divu mfhi mflo
0x1E   MOVR         rd5, rs5, 0          (addu rd, rs, $zero)
0x1F   CTRL         sub2 then: 0 JR rs5; 1 JALR rs5 (link $ra);
                    2 SYSCALL; 3 NOP
====== ============ =====================================================

Low registers (3-bit fields) map to SS32 $t0-$t7 (see
:data:`repro.isa16.rules.LOW_REGS`); MOVR/JR/JALR carry full 5-bit
register numbers.

Residual 32-bit instructions keep the SS32 encoding, except that
branch/jump offsets become **halfword-granular** (targets in a mixed
layout are only 2-byte aligned); ``assemble_mixed`` /
``verify_mixed_encoding`` handle that rewrite.
"""

from repro.isa.encoding import decode, encode_i, encode_r, sign_extend_16
from repro.isa.opcodes import InstrClass, spec_for_word
from repro.isa16.rules import LOW_REGS, RA, SP, ZERO, classify, CLASS_HALF

_LOW_LIST = sorted(LOW_REGS)
_LOW_TO_3 = {reg: i for i, reg in enumerate(_LOW_LIST)}
_3_TO_LOW = {i: reg for i, reg in enumerate(_LOW_LIST)}

# Prefix numbers.
P_SLL, P_SRL, P_SRA, P_ADD3 = 0x00, 0x01, 0x02, 0x03
P_MOVI, P_ADDI8, P_SUBI8, P_SLTI8 = 0x04, 0x05, 0x06, 0x07
P_ORI8, P_ANDI8, P_XORI8 = 0x08, 0x09, 0x0A
P_LW5, P_SW5, P_LWSP, P_SWSP = 0x0B, 0x0C, 0x0D, 0x0E
P_LB5, P_LBU5, P_SB5 = 0x0F, 0x10, 0x11
P_LH5, P_LHU5, P_SH5 = 0x12, 0x13, 0x14
P_BEQZ, P_BNEZ, P_BLTZ, P_BGEZ, P_BLEZ, P_BGTZ = (
    0x15, 0x16, 0x17, 0x18, 0x19, 0x1A)
P_B, P_MISC, P_ALU2, P_MOVR, P_CTRL = 0x1B, 0x1C, 0x1D, 0x1E, 0x1F

_ALU2_FUNCTS = ("and", "or", "xor", "nor", "slt", "sltu",
                "sllv", "srlv", "srav", "mult", "multu", "div", "divu",
                "mfhi", "mflo")
_ALU2_NUM = {name: i for i, name in enumerate(_ALU2_FUNCTS)}

_SHIFT_PREFIX = {"sll": P_SLL, "srl": P_SRL, "sra": P_SRA}
_BRANCH_PREFIX = {"beqz": P_BEQZ, "bnez": P_BNEZ, "bltz": P_BLTZ,
                  "bgez": P_BGEZ, "blez": P_BLEZ, "bgtz": P_BGTZ}
_MEM5_PREFIX = {"lw": P_LW5, "sw": P_SW5, "lb": P_LB5, "lbu": P_LBU5,
                "sb": P_SB5, "lh": P_LH5, "lhu": P_LHU5, "sh": P_SH5}
_MEM5_SCALE = {"lw": 4, "sw": 4, "lb": 1, "lbu": 1, "sb": 1,
               "lh": 2, "lhu": 2, "sh": 2}
_IMM8_PREFIX = {"ori": P_ORI8, "andi": P_ANDI8, "xori": P_XORI8}

# SS32 funct codes for re-encoding on decode.
_R_FUNCT = {"and": 0x24, "or": 0x25, "xor": 0x26, "nor": 0x27,
            "slt": 0x2A, "sltu": 0x2B, "sllv": 0x04, "srlv": 0x06,
            "srav": 0x07, "mult": 0x18, "multu": 0x19, "div": 0x1A,
            "divu": 0x1B, "mfhi": 0x10, "mflo": 0x12}
_MEM5_OP = {"lw": 0x23, "sw": 0x2B, "lb": 0x20, "lbu": 0x24, "sb": 0x28,
            "lh": 0x21, "lhu": 0x25, "sh": 0x29}
_BRANCH_DECODE = {
    P_BEQZ: lambda rs: encode_i(0x04, rs, 0, 0),
    P_BNEZ: lambda rs: encode_i(0x05, rs, 0, 0),
    P_BLTZ: lambda rs: encode_i(0x01, rs, 0x00, 0),
    P_BGEZ: lambda rs: encode_i(0x01, rs, 0x01, 0),
    P_BLEZ: lambda rs: encode_i(0x06, rs, 0, 0),
    P_BGTZ: lambda rs: encode_i(0x07, rs, 0, 0),
}


class EncodingError(ValueError):
    """Raised when a word has no 16-bit form (or a form is malformed)."""


def _h(prefix, payload):
    if not 0 <= payload < (1 << 11):
        raise EncodingError("payload overflow")
    return (prefix << 11) | payload


def _low3(reg):
    if reg not in _LOW_TO_3:
        raise EncodingError("register %d not encodable in 3 bits" % reg)
    return _LOW_TO_3[reg]


def canonical_form(word):
    """The decode-canonical SS32 word for a HALF-class instruction.

    Commutative two-operand ops with ``rd == rt`` are commuted into the
    ``rd == rs`` shape; ``j`` becomes the unconditional-branch shape
    (``beq $zero, $zero``, offset supplied at assembly); everything
    else is already canonical.
    """
    spec = spec_for_word(word)
    f = decode(word)
    if spec is None:
        return word
    if spec.name in ("and", "or", "xor", "addu", "add") \
            and f.rd == f.rt and f.rd != f.rs and f.rd != 0:
        return encode_r(0, f.rd, f.rs, f.rd, 0, decode(word).funct)
    if spec.name == "j":
        return encode_i(0x04, 0, 0, 0)
    if spec.iclass is InstrClass.BRANCH:
        # Branch offsets are layout-dependent; canonical form is the
        # zero-offset template, with the live register normalised into
        # the rs field for beq/bne-against-zero.
        if spec.name in ("beq", "bne") and f.rs == 0 and f.rt != 0:
            return encode_i(f.op, f.rt, 0, 0)
        return word & 0xFFFF0000
    return word


def encode_half(word, branch_offset=None):
    """Encode a HALF-class SS32 *word* as its 16-bit form.

    *branch_offset* (signed, in halfwords from the next instruction)
    must be supplied for control-flow words and omitted otherwise.
    """
    spec = spec_for_word(word)
    if spec is None:
        raise EncodingError("undecodable word %#010x" % word)
    f = decode(word)
    name = spec.name

    if name in ("sll", "srl", "sra"):
        if f.rd == 0 and f.rt == 0 and f.shamt == 0:
            return _h(P_CTRL, (3 << 9))  # NOP
        return _h(_SHIFT_PREFIX[name],
                  (f.shamt << 6) | (_low3(f.rt) << 3) | _low3(f.rd))
    if name in ("addu", "add", "subu", "sub"):
        if name in ("addu", "add") and f.rt == ZERO:
            return _h(P_MOVR, (f.rd << 6) | (f.rs << 1))  # MOVR
        sub = 1 if name in ("subu", "sub") else 0
        canon = canonical_form(word)
        f = decode(canon)
        return _h(P_ADD3, (sub << 10) | (_low3(f.rs) << 7)
                  | (_low3(f.rt) << 4) | (_low3(f.rd) << 1))
    if name in ("and", "or", "xor", "nor", "slt", "sltu"):
        canon = canonical_form(word)
        f = decode(canon)
        if f.rd != f.rs:
            raise EncodingError("two-operand shape required")
        return _h(P_ALU2, (_ALU2_NUM[name] << 6)
                  | (_low3(f.rd) << 3) | _low3(f.rt))
    if name in ("sllv", "srlv", "srav"):
        if f.rd != f.rt:
            raise EncodingError("two-operand shape required")
        return _h(P_ALU2, (_ALU2_NUM[name] << 6)
                  | (_low3(f.rd) << 3) | _low3(f.rs))
    if name in ("mult", "multu", "div", "divu"):
        return _h(P_ALU2, (_ALU2_NUM[name] << 6)
                  | (_low3(f.rs) << 3) | _low3(f.rt))
    if name in ("mfhi", "mflo"):
        return _h(P_ALU2, (_ALU2_NUM[name] << 6) | (_low3(f.rd) << 3))
    if name in ("addiu", "addi"):
        simm = sign_extend_16(f.imm)
        if f.rt == SP and f.rs == SP:
            return _h(P_MISC, (0 << 9) | (((simm // 4) & 0xFF) << 1))
        if f.rs == ZERO and 0 <= simm < 256:
            return _h(P_MOVI, (_low3(f.rt) << 8) | simm)
        if f.rt == f.rs and 0 <= simm < 256:
            return _h(P_ADDI8, (_low3(f.rt) << 8) | simm)
        if f.rt == f.rs and -256 < simm < 0:
            return _h(P_SUBI8, (_low3(f.rt) << 8) | (-simm))
        if 0 <= simm < 8:
            return _h(P_MISC, (3 << 9) | (_low3(f.rt) << 6)
                      | (_low3(f.rs) << 3) | simm)
        raise EncodingError("addiu shape not encodable")
    if name in ("slti", "sltiu"):
        return _h(P_SLTI8, (_low3(f.rt) << 8) | f.imm)
    if name in _IMM8_PREFIX:
        return _h(_IMM8_PREFIX[name], (_low3(f.rt) << 8) | f.imm)
    if name in _MEM5_PREFIX:
        if f.rs == SP and name in ("lw", "sw"):
            if f.rt == RA:
                sub = 1 if name == "lw" else 2
                return _h(P_MISC, (sub << 9) | ((f.imm // 4) << 1))
            return _h(P_LWSP if name == "lw" else P_SWSP,
                      (_low3(f.rt) << 8) | (f.imm // 4))
        scale = _MEM5_SCALE[name]
        return _h(_MEM5_PREFIX[name],
                  ((f.imm // scale) << 6) | (_low3(f.rs) << 3)
                  | _low3(f.rt))
    if name in ("beq", "bne"):
        if branch_offset is None:
            raise EncodingError("branch needs an offset")
        if f.rs == ZERO and f.rt == ZERO:
            if not -1024 <= branch_offset < 1024:
                raise EncodingError("B offset out of range")
            return _h(P_B, branch_offset & 0x7FF)
        reg = f.rs if f.rt == ZERO else f.rt
        if not -128 <= branch_offset < 128:
            raise EncodingError("branch offset out of range")
        prefix = P_BEQZ if name == "beq" else P_BNEZ
        return _h(prefix, (_low3(reg) << 8) | (branch_offset & 0xFF))
    if name in ("bltz", "bgez", "blez", "bgtz"):
        if branch_offset is None:
            raise EncodingError("branch needs an offset")
        if not -128 <= branch_offset < 128:
            raise EncodingError("branch offset out of range")
        prefix = _BRANCH_PREFIX["b" + name[1:]]
        return _h(prefix, (_low3(f.rs) << 8) | (branch_offset & 0xFF))
    if name == "j":
        if branch_offset is None:
            raise EncodingError("branch needs an offset")
        if not -1024 <= branch_offset < 1024:
            raise EncodingError("B offset out of range")
        return _h(P_B, branch_offset & 0x7FF)
    if name == "jr":
        return _h(P_CTRL, (0 << 9) | (f.rs << 4))
    if name == "jalr":
        return _h(P_CTRL, (1 << 9) | (f.rs << 4))
    if name == "syscall":
        return _h(P_CTRL, (2 << 9))
    raise EncodingError("no 16-bit form for %s" % name)


class DecodedHalf:
    """Result of :func:`decode_half`: the canonical SS32 word plus the
    control-flow offset (halfwords) when the form carries one."""

    __slots__ = ("word", "branch_offset")

    def __init__(self, word, branch_offset=None):
        self.word = word
        self.branch_offset = branch_offset


def decode_half(h):
    """Decode a 16-bit SS16 value back to its canonical SS32 word."""
    if not 0 <= h < (1 << 16):
        raise EncodingError("not a halfword: %#x" % h)
    prefix = h >> 11
    payload = h & 0x7FF

    if prefix in (P_SLL, P_SRL, P_SRA):
        funct = {P_SLL: 0x00, P_SRL: 0x02, P_SRA: 0x03}[prefix]
        shamt = payload >> 6
        rt = _3_TO_LOW[(payload >> 3) & 7]
        rd = _3_TO_LOW[payload & 7]
        return DecodedHalf(encode_r(0, 0, rt, rd, shamt, funct))
    if prefix == P_ADD3:
        funct = 0x23 if payload >> 10 else 0x21
        rs = _3_TO_LOW[(payload >> 7) & 7]
        rt = _3_TO_LOW[(payload >> 4) & 7]
        rd = _3_TO_LOW[(payload >> 1) & 7]
        return DecodedHalf(encode_r(0, rs, rt, rd, 0, funct))
    if prefix == P_MOVI:
        return DecodedHalf(encode_i(0x09, 0, _3_TO_LOW[payload >> 8],
                                    payload & 0xFF))
    if prefix == P_ADDI8:
        rd = _3_TO_LOW[payload >> 8]
        return DecodedHalf(encode_i(0x09, rd, rd, payload & 0xFF))
    if prefix == P_SUBI8:
        rd = _3_TO_LOW[payload >> 8]
        return DecodedHalf(encode_i(0x09, rd, rd, -(payload & 0xFF)))
    if prefix == P_SLTI8:
        rd = _3_TO_LOW[payload >> 8]
        return DecodedHalf(encode_i(0x0A, rd, rd, payload & 0xFF))
    if prefix in (P_ORI8, P_ANDI8, P_XORI8):
        op = {P_ORI8: 0x0D, P_ANDI8: 0x0C, P_XORI8: 0x0E}[prefix]
        rd = _3_TO_LOW[payload >> 8]
        return DecodedHalf(encode_i(op, rd, rd, payload & 0xFF))
    for name, mem_prefix in _MEM5_PREFIX.items():
        if prefix == mem_prefix:
            scale = _MEM5_SCALE[name]
            imm = (payload >> 6) * scale
            rs = _3_TO_LOW[(payload >> 3) & 7]
            rt = _3_TO_LOW[payload & 7]
            return DecodedHalf(encode_i(_MEM5_OP[name], rs, rt, imm))
    if prefix in (P_LWSP, P_SWSP):
        op = 0x23 if prefix == P_LWSP else 0x2B
        rt = _3_TO_LOW[payload >> 8]
        return DecodedHalf(encode_i(op, SP, rt, (payload & 0xFF) * 4))
    if prefix in _BRANCH_DECODE:
        rs = _3_TO_LOW[payload >> 8]
        offset = payload & 0xFF
        if offset >= 128:
            offset -= 256
        return DecodedHalf(_BRANCH_DECODE[prefix](rs), offset)
    if prefix == P_B:
        offset = payload
        if offset >= 1024:
            offset -= 2048
        return DecodedHalf(encode_i(0x04, 0, 0, 0), offset)
    if prefix == P_MISC:
        sub = payload >> 9
        if sub == 0:
            imm = (payload >> 1) & 0xFF
            if imm >= 128:
                imm -= 256
            return DecodedHalf(encode_i(0x09, SP, SP, imm * 4))
        if sub == 1:
            return DecodedHalf(encode_i(0x23, SP, RA,
                                        ((payload >> 1) & 0xFF) * 4))
        if sub == 2:
            return DecodedHalf(encode_i(0x2B, SP, RA,
                                        ((payload >> 1) & 0xFF) * 4))
        rd = _3_TO_LOW[(payload >> 6) & 7]
        rs = _3_TO_LOW[(payload >> 3) & 7]
        return DecodedHalf(encode_i(0x09, rs, rd, payload & 7))
    if prefix == P_ALU2:
        name = _ALU2_FUNCTS[payload >> 6]
        a = (payload >> 3) & 7
        b = payload & 7
        funct = _R_FUNCT[name]
        if name in ("and", "or", "xor", "nor", "slt", "sltu"):
            rd = _3_TO_LOW[a]
            return DecodedHalf(encode_r(0, rd, _3_TO_LOW[b], rd, 0, funct))
        if name in ("sllv", "srlv", "srav"):
            rd = _3_TO_LOW[a]
            return DecodedHalf(encode_r(0, _3_TO_LOW[b], rd, rd, 0, funct))
        if name in ("mult", "multu", "div", "divu"):
            return DecodedHalf(encode_r(0, _3_TO_LOW[a], _3_TO_LOW[b],
                                        0, 0, funct))
        return DecodedHalf(encode_r(0, 0, 0, _3_TO_LOW[a], 0, funct))
    if prefix == P_MOVR:
        rd = (payload >> 6) & 0x1F
        rs = (payload >> 1) & 0x1F
        return DecodedHalf(encode_r(0, rs, 0, rd, 0, 0x21))
    if prefix == P_CTRL:
        sub = payload >> 9
        if sub == 0:
            return DecodedHalf(encode_r(0, (payload >> 4) & 0x1F,
                                        0, 0, 0, 0x08))
        if sub == 1:
            return DecodedHalf(encode_r(0, (payload >> 4) & 0x1F,
                                        0, RA, 0, 0x09))
        if sub == 2:
            return DecodedHalf(encode_r(0, 0, 0, 0, 0, 0x0C))
        return DecodedHalf(0)  # NOP (sll $zero, $zero, 0)
    raise EncodingError("unknown prefix %#x" % prefix)


def assemble_mixed(mixed):
    """Emit the translated program's actual bytes (big-endian).

    16-bit instructions use the SS16 forms above; residual 32-bit
    instructions keep SS32 encodings with branch/jump offsets rewritten
    to halfword granularity against the new layout.
    """
    out = bytearray()
    for st in mixed.static:
        if st.size == 2:
            offset = None
            spec = spec_for_word(st.word)
            if spec is not None and spec.iclass.name in ("BRANCH", "JUMP"):
                offset = (st.taken_target - (st.addr + 2)) // 2
            h = encode_half(st.word, branch_offset=offset)
            out += h.to_bytes(2, "big")
        else:
            word = st.word
            spec = spec_for_word(word)
            if spec is not None and spec.iclass is InstrClass.BRANCH:
                offset = (st.taken_target - (st.addr + 4)) // 2
                word = (word & 0xFFFF0000) | (offset & 0xFFFF)
            elif spec is not None and spec.iclass in (InstrClass.JUMP,
                                                      InstrClass.CALL):
                word = (word & 0xFC000000) \
                    | ((st.taken_target // 2) & 0x3FFFFFF)
            out += word.to_bytes(4, "big")
    return bytes(out)


def verify_mixed_encoding(mixed):
    """Decode ``assemble_mixed``'s bytes and check them against the
    translated instruction stream.  Returns the instruction count.

    For each 16-bit instruction the decoded canonical word must match
    ``canonical_form`` of the translator's word, and reconstructed
    control-flow targets must equal ``taken_target``.
    """
    data = assemble_mixed(mixed)
    checked = 0
    for st in mixed.static:
        pos = st.addr - mixed.text_base
        if st.size == 2:
            h = int.from_bytes(data[pos:pos + 2], "big")
            decoded = decode_half(h)
            expected = canonical_form(st.word)
            if decoded.branch_offset is not None:
                target = st.addr + 2 + 2 * decoded.branch_offset
                if target != st.taken_target:
                    raise EncodingError(
                        "branch target mismatch at %#x: %#x != %#x"
                        % (st.addr, target, st.taken_target))
                if decoded.word != expected:
                    raise EncodingError(
                        "branch template mismatch at %#x" % st.addr)
            elif decoded.word != expected:
                raise EncodingError(
                    "decode mismatch at %#x: %#010x != %#010x"
                    % (st.addr, decoded.word, expected))
        else:
            word = int.from_bytes(data[pos:pos + 4], "big")
            spec = spec_for_word(st.word)
            if spec is not None and spec.iclass is InstrClass.BRANCH:
                offset = sign_extend_16(word & 0xFFFF)
                target = st.addr + 4 + 2 * offset
                if target != st.taken_target:
                    raise EncodingError(
                        "32-bit branch target mismatch at %#x" % st.addr)
            elif spec is not None and spec.iclass in (InstrClass.JUMP,
                                                      InstrClass.CALL):
                if (word & 0x3FFFFFF) * 2 != st.taken_target:
                    raise EncodingError(
                        "32-bit jump target mismatch at %#x" % st.addr)
            elif word != st.word:
                raise EncodingError("32-bit word mismatch at %#x"
                                    % st.addr)
        checked += 1
    return checked
