"""The SS32 -> SS16 layout translator.

Produces a :class:`MixedProgram`: the same computation re-laid-out with
2-byte and 4-byte instructions.  Because
:class:`~repro.sim.cpu.StaticInstr` carries explicit ``size``,
``fall_through`` and ``taken_target`` fields, the unmodified functional
core and timing models execute the result directly (with a pc -> index
map instead of the fixed-width divide).

The layout pass runs to a fixed point: every reach-limited branch
starts optimistically 16-bit and is demoted to 32-bit if its target
lands out of range; demotions only grow the image, so the iteration
terminates.  A 16-bit alignment nop is inserted wherever a 32-bit
instruction would otherwise straddle an I-cache line (2-byte alignment
is allowed everywhere else, as in Thumb-2).

Indirect control flow works because (a) return addresses are produced
by the translated ``jal``/``jalr`` themselves and (b) function-pointer
tables recorded in ``Program.data_relocs`` are rewritten to the new
addresses.
"""

from dataclasses import dataclass, field

from repro.isa.encoding import decode, sign_extend_16
from repro.isa.opcodes import InstrClass, spec_for_word
from repro.isa16.rules import (
    BRANCH_REACH,
    CLASS_EXPAND,
    CLASS_HALF,
    JUMP_REACH,
    classify,
    expansion_words,
    is_reach_limited,
)
from repro.sim.cpu import StaticInstr

#: The 16-bit alignment nop (sll $zero, $zero, 0 in its short form).
_NOP_WORD = 0


@dataclass
class TranslationStats:
    """Static census of the translation."""

    n_source: int = 0
    n_half: int = 0  # one 16-bit instruction
    n_expanded: int = 0  # source instructions that became two halves
    n_word: int = 0  # kept 32-bit
    n_align_nops: int = 0
    demoted_branches: int = 0  # reach-limited candidates pushed to 32-bit

    @property
    def n_emitted(self):
        return (self.n_half + 2 * self.n_expanded + self.n_word
                + self.n_align_nops)


@dataclass
class MixedProgram:
    """A translated program: variable-length layout over SS32 semantics."""

    original: object  # the source Program
    static: list  # StaticInstr records, in layout order
    pc_index: dict  # byte address -> static index
    text_base: int
    text_size: int  # bytes
    entry: int
    data: dict  # relocated data segment
    stats: TranslationStats
    addr_map: dict = field(default_factory=dict)  # orig addr -> new addr

    @property
    def name(self):
        return self.original.name + "-ss16"

    @property
    def size_ratio(self):
        """Dense-code size over original size (smaller is better)."""
        return self.text_size / float(self.original.text_size)

    def program_shim(self):
        """A Program-shaped view for the simulator (data/entry/name).

        The instruction stream itself comes from ``static`` +
        ``pc_index``; the shim only supplies the architectural
        environment.
        """
        from repro.isa.program import Program

        return Program(text=list(self.original.text),
                       text_base=self.text_base, data=dict(self.data),
                       symbols=dict(self.original.symbols),
                       entry=self.entry, name=self.name)


def _plan(program):
    """Per-source-instruction plan: (classification, emitted words)."""
    plan = []
    for word in program.text:
        kind = classify(word)
        if kind == CLASS_EXPAND:
            plan.append((kind, expansion_words(word)))
        else:
            plan.append((kind, (word,)))
    return plan


def _place(program, plan, demoted, line_bytes):
    """Lay the plan out in memory.

    Returns ``(placed, addr_of_source, end_addr, align_nops)`` where
    *placed* is, per source instruction, a list of
    ``(addr, word, size, is_pad)`` units (alignment nops included).
    """
    addr = program.text_base
    placed = []
    addr_of_source = {}
    align_nops = 0
    for index, (kind, words) in enumerate(plan):
        if kind == CLASS_HALF and index not in demoted:
            sizes = (2,) * len(words)
        elif kind == CLASS_EXPAND:
            sizes = (2, 2)
        else:
            sizes = (4,)
        units = []
        for word, size in zip(words, sizes):
            if size == 4 and (addr % line_bytes) > line_bytes - 4:
                units.append((addr, _NOP_WORD, 2, True))
                align_nops += 1
                addr += 2
            if program.text_base + 4 * index not in addr_of_source:
                addr_of_source[program.text_base + 4 * index] = addr
            units.append((addr, word, size, False))
            addr += size
        placed.append(units)
    return placed, addr_of_source, addr, align_nops


def translate(program, line_bytes=32):
    """Translate *program* to the mixed 16/32-bit layout."""
    plan = _plan(program)
    demoted = set()

    # Fixed point: lay out, then demote any 16-bit control-flow whose
    # target is out of reach; demotions only grow the image, so this
    # terminates.
    while True:
        placed, addr_of_source, end_addr, align_nops = _place(
            program, plan, demoted, line_bytes)
        newly_demoted = False
        for index, (kind, words) in enumerate(plan):
            if kind != CLASS_HALF or index in demoted \
                    or not is_reach_limited(words[0]):
                continue
            word = words[0]
            spec = spec_for_word(word)
            fields = decode(word)
            source_addr = program.text_base + 4 * index
            if spec.fmt == "J":
                target = fields.target * 4
                reach = JUMP_REACH
            else:
                target = source_addr + 4 + sign_extend_16(fields.imm) * 4
                reach = BRANCH_REACH
            new_target = addr_of_source.get(target)
            new_from = addr_of_source[source_addr] + 2
            if new_target is None or abs(new_target - new_from) > reach:
                demoted.add(index)
                newly_demoted = True
        if not newly_demoted:
            break

    # Emit StaticInstr records from the final placement.
    static = []
    pc_index = {}
    stats = TranslationStats(n_source=len(plan),
                             n_align_nops=align_nops,
                             demoted_branches=len(demoted))
    for index, units in enumerate(placed):
        kind = plan[index][0]
        if kind == CLASS_HALF and index not in demoted:
            stats.n_half += 1
        elif kind == CLASS_EXPAND:
            stats.n_expanded += 1
        else:
            stats.n_word += 1
        source_addr = program.text_base + 4 * index
        for addr, word, size, is_pad in units:
            taken = None
            if not is_pad:
                spec = spec_for_word(word)
                if spec.iclass is InstrClass.BRANCH:
                    orig_target = source_addr + 4 \
                        + sign_extend_16(decode(word).imm) * 4
                    taken = addr_of_source[orig_target]
                elif spec.iclass in (InstrClass.JUMP, InstrClass.CALL):
                    taken = addr_of_source[decode(word).target * 4]
            pc_index[addr] = len(static)
            static.append(StaticInstr(addr, word, size=size,
                                      taken_target=taken))

    # Relocate function-pointer tables and the entry point.
    data = dict(program.data)
    for reloc_addr in program.data_relocs:
        value = 0
        for offset in range(4):
            value = (value << 8) | data[reloc_addr + offset]
        new_value = addr_of_source.get(value)
        if new_value is None:
            raise ValueError(
                "data relocation at %#x targets %#x, which is not an "
                "instruction boundary" % (reloc_addr, value))
        for offset in range(4):
            data[reloc_addr + offset] = \
                (new_value >> (24 - 8 * offset)) & 0xFF

    return MixedProgram(
        original=program,
        static=static,
        pc_index=pc_index,
        text_base=program.text_base,
        text_size=end_addr - program.text_base,
        entry=addr_of_source[program.entry],
        data=data,
        stats=stats,
        addr_map=addr_of_source,
    )
