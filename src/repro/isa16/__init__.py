"""SS16: a Thumb/MIPS16-style dense re-encoding of SS32.

Paper Section 2.1 frames 16-bit instruction subsets as the other road
to code density: "Programs compiled for Thumb achieve 30% smaller code
... but run 15%-20% slower on systems with ideal instruction memories";
MIPS16 reaches 40% smaller.  The trade is the mirror image of
CodePack's -- no decompression hardware and no miss-path latency, paid
for with *more executed instructions* (two-operand forms, low-register
pressure, expansion sequences).

The transform is implemented end to end:

* :mod:`repro.isa16.rules` -- which SS32 instructions have a 16-bit
  form (Thumb-like constraints: 8 "low" registers, short immediates,
  two-operand ALU shapes, short branch reach);
* :mod:`repro.isa16.translator` -- a fixed-point layout pass producing
  a :class:`~repro.isa16.translator.MixedProgram`: 2-byte and 4-byte
  instructions interleaved, branches re-targeted, jump tables
  relocated, and 32-bit instructions kept from straddling I-cache
  lines;
* :mod:`repro.isa16.encoding16` -- the actual bits: a prefix-allocated
  16-bit encoding with encoder, decoder, whole-program assembler
  (``assemble_mixed``) and a bit-level verifier
  (``verify_mixed_encoding``).

The result executes on the unmodified functional core and timing
models (instructions carry their own size and control-flow targets),
so SS16, native SS32 and CodePack can be compared on identical
machines: see ``repro.eval.extensions.dense_isa``.
"""

from repro.isa16.encoding16 import (
    assemble_mixed,
    decode_half,
    encode_half,
    verify_mixed_encoding,
)
from repro.isa16.rules import CLASS_EXPAND, CLASS_HALF, CLASS_WORD, classify
from repro.isa16.translator import MixedProgram, translate


def simulate_ss16(mixed, arch, **kwargs):
    """Simulate a :class:`MixedProgram` on *arch*.

    A thin wrapper over :func:`repro.sim.machine.simulate` that supplies
    the variable-length instruction stream and pc map.
    """
    from repro.sim.machine import simulate

    kwargs.setdefault("mode", "ss16")
    return simulate(mixed.program_shim(), arch, static=mixed.static,
                    pc_index=mixed.pc_index, **kwargs)


__all__ = [
    "CLASS_EXPAND",
    "CLASS_HALF",
    "CLASS_WORD",
    "MixedProgram",
    "assemble_mixed",
    "classify",
    "decode_half",
    "encode_half",
    "simulate_ss16",
    "translate",
    "verify_mixed_encoding",
]
