"""Tests for the top-level simulation driver."""

import pytest

from repro.codepack.compressor import compress_program
from repro.sim import (
    ARCH_1_ISSUE,
    ARCH_4_ISSUE,
    CodePackConfig,
    simulate,
)
from repro.sim.config import IndexCacheConfig
from repro.sim.machine import describe_mode, prepare
from tests.conftest import make_counting_program, make_memory_program


class TestTransparency:
    """Compression must be architecturally invisible (paper S2.3)."""

    def test_same_output_and_exit(self):
        prog = make_counting_program(500)
        native = simulate(prog, ARCH_4_ISSUE)
        packed = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig())
        assert native.output == packed.output
        assert native.exit_code == packed.exit_code
        assert native.instructions == packed.instructions

    def test_memory_program_identical(self):
        prog = make_memory_program()
        native = simulate(prog, ARCH_1_ISSUE)
        packed = simulate(prog, ARCH_1_ISSUE,
                          codepack=CodePackConfig.optimized())
        assert native.output == packed.output


class TestModeLabels:
    def test_native(self):
        assert describe_mode(None) == "native"

    def test_baseline(self):
        assert describe_mode(CodePackConfig()) == "codepack"

    def test_optimized(self):
        assert describe_mode(CodePackConfig.optimized()) \
            == "codepack+ic64x4+dec2"

    def test_perfect(self):
        assert describe_mode(CodePackConfig(perfect_index=True)) \
            == "codepack+perfect-index"

    def test_nobuf(self):
        assert describe_mode(CodePackConfig(output_buffer=False)) \
            == "codepack+nobuf"

    def test_result_carries_mode(self):
        prog = make_counting_program(10)
        result = simulate(prog, ARCH_1_ISSUE, codepack=CodePackConfig(
            index_cache=IndexCacheConfig(8, 2)))
        assert result.mode == "codepack+ic8x2"


class TestArtifactReuse:
    def test_prebuilt_image_and_static(self):
        prog = make_counting_program(200)
        image = compress_program(prog)
        static = prepare(prog)
        a = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig(),
                     image=image, static=static)
        b = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig())
        assert a.cycles == b.cycles


class TestResultFields:
    def test_engine_stats_only_for_codepack(self):
        prog = make_counting_program(100)
        assert simulate(prog, ARCH_1_ISSUE).engine is None
        packed = simulate(prog, ARCH_1_ISSUE, codepack=CodePackConfig())
        assert packed.engine is not None
        assert packed.engine.misses >= 1

    def test_truncation_flag(self):
        prog = make_counting_program(10_000)
        result = simulate(prog, ARCH_1_ISSUE, max_instructions=500)
        assert result.extra["truncated"]
        assert result.instructions == 500

    def test_speedup_requires_same_work(self):
        prog = make_counting_program(100)
        full = simulate(prog, ARCH_1_ISSUE)
        short = simulate(prog, ARCH_1_ISSUE, max_instructions=50)
        with pytest.raises(ValueError):
            full.speedup_over(short)

    def test_summary_mentions_key_numbers(self):
        result = simulate(make_counting_program(100), ARCH_1_ISSUE)
        text = result.summary()
        assert "counting" in text and "IPC" in text
