"""Contract tests: every miss path honours the LineFill invariants.

The FetchUnit and both pipeline models rely on these properties from
*any* miss path (native, native+prefetch, CodePack, CCRP, DictWord,
software): causality (nothing ready before the request), completeness
(one time per line word), and consistency (critical/fill bounds).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.compressor import compress_program
from repro.schemes.ccrp import CcrpEngine, compress_ccrp
from repro.schemes.dictword import DictWordEngine, compress_dictword
from repro.schemes.software import SoftwareDecompEngine
from repro.sim.codepack_engine import CodePackEngine
from repro.sim.config import CodePackConfig, MemoryConfig
from repro.sim.fetch import NativeMissPath
from tests.conftest import make_static_program

PROGRAM = make_static_program(256)  # 16 blocks / 32 lines
LINE_BYTES = 32
N_LINES = PROGRAM.text_size // LINE_BYTES


def all_paths():
    memory = MemoryConfig()
    image = compress_program(PROGRAM)
    return [
        ("native", NativeMissPath(memory, LINE_BYTES)),
        ("native-nocwf", NativeMissPath(memory, LINE_BYTES,
                                        critical_word_first=False)),
        ("native-nlp", NativeMissPath(memory, LINE_BYTES,
                                      prefetch_next=True)),
        ("codepack", CodePackEngine(image, memory, CodePackConfig(),
                                    line_bytes=LINE_BYTES)),
        ("codepack-opt", CodePackEngine(image, memory,
                                        CodePackConfig.optimized(),
                                        line_bytes=LINE_BYTES)),
        ("ccrp", CcrpEngine(compress_ccrp(PROGRAM), memory,
                            line_bytes=LINE_BYTES)),
        ("dictword", DictWordEngine(compress_dictword(PROGRAM), memory,
                                    CodePackConfig(),
                                    line_bytes=LINE_BYTES)),
        ("software", SoftwareDecompEngine(image, memory,
                                          line_bytes=LINE_BYTES)),
    ]


@pytest.mark.parametrize("label,path", all_paths(),
                         ids=[label for label, _ in all_paths()])
class TestContract:
    def test_single_miss_invariants(self, label, path):
        addr = PROGRAM.text_base + 5 * 4
        now = 100
        fill = path.miss(addr, now)
        assert fill.critical_ready > now
        assert fill.fill_done >= fill.critical_ready
        assert len(fill.word_times) == LINE_BYTES // 4
        word = (addr % LINE_BYTES) // 4
        assert fill.word_times[word] == fill.critical_ready
        assert max(fill.word_times) == fill.fill_done
        assert all(t > now for t in fill.word_times)

    def test_line_addr_matches_request(self, label, path):
        addr = PROGRAM.text_base + 3 * LINE_BYTES + 8
        fill = path.miss(addr, 0)
        assert fill.line_addr == addr // LINE_BYTES


@settings(max_examples=30, deadline=None)
@given(line=st.integers(0, N_LINES - 1),
       word=st.integers(0, 7),
       now=st.integers(0, 10_000))
def test_codepack_contract_fuzz(line, word, now):
    """Random miss sequences keep the invariants (buffer state and
    all)."""
    memory = MemoryConfig()
    image = compress_program(PROGRAM)
    engine = CodePackEngine(image, memory, CodePackConfig(),
                            line_bytes=LINE_BYTES)
    addr = PROGRAM.text_base + line * LINE_BYTES + word * 4
    for step in range(3):
        fill = engine.miss(addr, now + step * 50)
        assert fill.critical_ready > now + step * 50
        assert fill.fill_done >= fill.critical_ready


@settings(max_examples=30, deadline=None)
@given(lines=st.lists(st.integers(0, N_LINES - 1), min_size=1,
                      max_size=12),
       start=st.integers(0, 1000))
def test_native_prefetch_contract_fuzz(lines, start):
    """The prefetching path keeps causality across arbitrary miss
    sequences (buffer hits included)."""
    path = NativeMissPath(MemoryConfig(), LINE_BYTES, prefetch_next=True)
    now = start
    for line in lines:
        addr = PROGRAM.text_base + line * LINE_BYTES
        fill = path.miss(addr, now)
        assert fill.critical_ready > now
        assert fill.fill_done >= fill.critical_ready
        now = fill.critical_ready  # misses only move forward in time
