"""Differential suite: vectorized group pricing vs the scalar oracle.

:mod:`repro.sim.vecreplay` promises that pricing a whole group of sweep
cells through the NumPy column kernels returns exactly what the scalar
``replay_inorder``/``replay_ooo`` engines produce cell by cell -- same
cycles, same cache/predictor statistics, same CodePack engine counters.
These tests hold it to that across the paper's full Table 5-12 cell
grid (all issue widths, native/CodePack/optimized modes, index-cache
ablations), the cwf/prefetch ablation knobs, and truncation caps, and
pin the vectorized profile builder against the scalar walk -- both on
the real benchmark traces and on Hypothesis-generated random access
streams and geometries.
"""

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.compressor import compress_program
from repro.eval.experiments import (
    ALL_EXPERIMENTS,
    CP_BASELINE,
    CP_OPTIMIZED,
    sweep_cells,
)
from repro.eval.runner import Workbench
from repro.sim import vecreplay
from repro.sim.config import ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE
from repro.sim.machine import prepare, simulate
from repro.sim.replay import build_profile, record_trace
from repro.workloads.suite import build_benchmark

SCALE = 0.02

ARCHS = {a.name: a for a in (ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE)}


@pytest.fixture(scope="module")
def suite():
    """Programs, predecode, image and recorded trace per benchmark."""
    out = {}
    for name in ("cc1", "pegwit"):
        program = build_benchmark(name, SCALE)
        static = prepare(program)
        image = compress_program(program)
        trace = record_trace(program, static=static)
        out[name] = (program, static, image, trace)
    return out


@pytest.fixture(scope="module")
def grid_cells():
    """The full sweep cell grid at test scale, as (arch, cp) per bench."""
    wb = Workbench(scale=SCALE, vec=False)
    cells = list(sweep_cells(list(ALL_EXPERIMENTS), wb=wb,
                             benchmarks=["cc1", "pegwit"]))
    by_bench = {}
    for bench, arch, codepack in cells:
        by_bench.setdefault(bench, []).append((arch, codepack))
    return by_bench


def price(suite, bench, bcells, **kwargs):
    program, static, image, trace = suite[bench]
    kwargs.setdefault("max_instructions", 5_000_000)
    kwargs.setdefault("min_group", 1)
    return vecreplay.price_cells(program, bcells, static=static,
                                 trace=trace, image=image, **kwargs)


class TestGridExactness:
    """Every sweep cell, priced vectorized, equals its scalar run."""

    @pytest.mark.parametrize("bench", ("cc1", "pegwit"))
    def test_full_grid_cycle_and_stats_exact(self, suite, grid_cells,
                                             bench):
        program, static, image, trace = suite[bench]
        bcells = grid_cells[bench]
        priced = price(suite, bench, bcells)
        # At min_group=1 every shape in the paper's grid is served --
        # 1/4/8-issue, native and every CodePack/index-cache variant.
        assert sorted(priced) == list(range(len(bcells)))
        for pos, (arch, codepack) in enumerate(bcells):
            ref = simulate(program, arch, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace)
            assert priced[pos].to_dict() == ref.to_dict(), (
                bench, arch.name, codepack)

    def test_all_issue_widths_grouped(self, suite, grid_cells):
        # The grid exercises all three kernels: 1-issue in-order,
        # 4-issue and 8-issue out-of-order.
        widths = {(a.in_order, a.issue_width) for a, _ in
                  grid_cells["cc1"]}
        assert {(True, 1), (False, 4), (False, 8)} <= widths


class TestAblationKnobs:
    CELLS = [(ARCH_4_ISSUE, None), (ARCH_4_ISSUE, CP_BASELINE),
             (ARCH_4_ISSUE, CP_OPTIMIZED)]

    def test_no_critical_word_first(self, suite):
        program, static, image, trace = suite["cc1"]
        priced = price(suite, "cc1", self.CELLS,
                       critical_word_first=False)
        assert sorted(priced) == [0, 1, 2]
        for pos, (arch, codepack) in enumerate(self.CELLS):
            ref = simulate(program, arch, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace,
                           critical_word_first=False)
            assert priced[pos].to_dict() == ref.to_dict()

    def test_native_prefetch(self, suite):
        program, static, image, trace = suite["cc1"]
        priced = price(suite, "cc1", self.CELLS, native_prefetch=True)
        assert sorted(priced) == [0, 1, 2]
        for pos, (arch, codepack) in enumerate(self.CELLS):
            ref = simulate(program, arch, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace,
                           native_prefetch=True)
            assert priced[pos].to_dict() == ref.to_dict()

    TRUNC_CELLS = [(ARCH_1_ISSUE, None), (ARCH_1_ISSUE, CP_BASELINE),
                   (ARCH_4_ISSUE, None), (ARCH_4_ISSUE, CP_BASELINE),
                   (ARCH_4_ISSUE, CP_OPTIMIZED), (ARCH_8_ISSUE, None),
                   (ARCH_8_ISSUE, CP_OPTIMIZED)]

    @pytest.mark.parametrize("cap", (1, 37, 997))
    def test_truncation_cap_priced_exactly(self, suite, cap):
        # A cap below the trace length truncates the stream: the
        # kernels clip every event column to the prefix and report the
        # truncated SimResult (instructions, stats, output, flags)
        # exactly as the scalar truncating loops do.
        program, static, image, trace = suite["cc1"]
        assert cap < trace.n
        priced = price(suite, "cc1", self.TRUNC_CELLS,
                       max_instructions=cap)
        assert sorted(priced) == list(range(len(self.TRUNC_CELLS)))
        for pos, (arch, codepack) in enumerate(self.TRUNC_CELLS):
            ref = simulate(program, arch, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace,
                           max_instructions=cap)
            got = priced[pos].to_dict()
            assert got["instructions"] == cap
            assert got == ref.to_dict(), (arch.name, codepack, cap)

    def test_min_group_gate(self, suite):
        # Below min_group the group is declined, not mispriced -- and
        # the decline is counted, not silent.
        declines = {}
        priced = price(suite, "cc1", self.CELLS[:1], min_group=2,
                       declines=declines)
        assert priced == {}
        assert declines == {"group below min_group": 1}


class TestSharedBus:
    """The single-port-channel kernels vs the scalar arbitration."""

    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_shared_bus_cells_priced_exactly(self, suite, arch):
        program, static, image, trace = suite["pegwit"]
        shared = ARCHS[arch].with_shared_bus()
        cells = [(shared, None), (shared, CP_BASELINE),
                 (shared, CP_OPTIMIZED)]
        priced = price(suite, "pegwit", cells)
        assert sorted(priced) == [0, 1, 2]
        for pos, (a, codepack) in enumerate(cells):
            ref = simulate(program, a, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace)
            assert priced[pos].to_dict() == ref.to_dict(), \
                (arch, codepack)

    def test_shared_and_idle_bus_grouped_apart(self, suite):
        # Shared-bus cells must never share a kernel pass with
        # idle-channel cells of the same shape: the group key splits
        # them, and both price exactly in one call.
        program, static, image, trace = suite["pegwit"]
        cells = [(ARCH_4_ISSUE, CP_BASELINE),
                 (ARCH_4_ISSUE.with_shared_bus(), CP_BASELINE)]
        priced = price(suite, "pegwit", cells)
        assert sorted(priced) == [0, 1]
        assert priced[0].cycles < priced[1].cycles  # contention costs
        for pos, (a, codepack) in enumerate(cells):
            ref = simulate(program, a, codepack=codepack, image=image,
                           static=static, replay=trace)
            assert priced[pos].to_dict() == ref.to_dict()

    def test_shared_bus_truncated(self, suite):
        program, static, image, trace = suite["pegwit"]
        shared = ARCH_4_ISSUE.with_shared_bus()
        cells = [(shared, None), (shared, CP_BASELINE)]
        priced = price(suite, "pegwit", cells, max_instructions=997)
        assert sorted(priced) == [0, 1]
        for pos, (a, codepack) in enumerate(cells):
            ref = simulate(program, a, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace,
                           max_instructions=997)
            assert priced[pos].to_dict() == ref.to_dict()


class TestCrossTraceGrid:
    """price_grid: one invocation prices cells spanning benchmarks."""

    def _benches(self, suite):
        return {name: (program, static, trace, image)
                for name, (program, static, image, trace)
                in suite.items()}

    def test_small_groups_batch_across_traces(self, suite):
        # Three cells per benchmark of one shape: below min_group=6
        # per benchmark, but the *global* group spans both traces, so
        # price_grid dissolves the decline that price_cells reports.
        cells3 = [(ARCH_8_ISSUE, None), (ARCH_8_ISSUE, CP_BASELINE),
                  (ARCH_8_ISSUE, CP_OPTIMIZED)]
        declines = {}
        per_bench = price(suite, "cc1", cells3, min_group=6,
                          declines=declines)
        assert per_bench == {}
        assert declines == {"group below min_group": 3}

        grid = [(bench, arch, cp) for bench in ("cc1", "pegwit")
                for arch, cp in cells3]
        declines = {}
        priced = vecreplay.price_grid(
            self._benches(suite), grid, max_instructions=5_000_000,
            min_group=6, declines=declines)
        assert declines == {}
        assert sorted(priced) == list(range(len(grid)))
        for pos, (bench, arch, codepack) in enumerate(grid):
            program, static, image, trace = suite[bench]
            ref = simulate(program, arch, codepack=codepack,
                           image=image if codepack else None,
                           static=static, replay=trace)
            assert priced[pos].to_dict() == ref.to_dict()

    def test_full_grid_zero_declines(self, suite, grid_cells):
        # The whole sweep grid -- every experiment's cells for both
        # benchmarks -- prices in one invocation with an empty decline
        # histogram at the default min_group.
        grid = [(bench, arch, cp) for bench, bcells in grid_cells.items()
                for arch, cp in bcells]
        declines = {}
        priced = vecreplay.price_grid(
            self._benches(suite), grid, max_instructions=5_000_000,
            declines=declines)
        assert declines == {}
        assert sorted(priced) == list(range(len(grid)))

    def test_decline_reasons_are_counted(self, suite):
        benches = self._benches(suite)
        grid = [("cc1", ARCH_4_ISSUE, None)]
        declines = {}
        out = vecreplay.price_grid(benches, grid,
                                   max_instructions=5_000_000,
                                   min_group=99, declines=declines)
        assert out == {}
        assert declines == {"group below min_group": 1}


class TestWorkbenchIntegration:
    def test_sweep_results_and_tables_identical(self):
        from repro.eval.tables import format_table
        from repro.eval.experiments import ALL_EXPERIMENTS

        names = ["table5", "table10"]
        benchmarks = ["pegwit"]
        wbs = {}
        for vec in (False, True):
            wb = Workbench(scale=SCALE, jobs=1, vec=vec)
            wb.prefetch(sweep_cells(names, wb=wb, benchmarks=benchmarks))
            wbs[vec] = wb
        scalar_wb, vec_wb = wbs[False], wbs[True]
        assert vec_wb.stats.vec_cells > 0
        assert set(vec_wb._results) == set(scalar_wb._results)
        for key, expected in scalar_wb._results.items():
            assert vec_wb._results[key].to_dict() == expected.to_dict()
        for name in names:
            exp = ALL_EXPERIMENTS[name]
            assert (format_table(exp(wb=vec_wb, benchmarks=benchmarks))
                    == format_table(exp(wb=scalar_wb,
                                        benchmarks=benchmarks)))

    def test_backend_stats_recorded(self):
        wb = Workbench(scale=SCALE, jobs=1, vec=True)
        wb.prefetch(sweep_cells(["table5", "table10"], wb=wb,
                                benchmarks=["pegwit"]))
        backends = set(wb.stats.backends.values())
        assert "vec" in backends


class TestProfileBuilder:
    """build_profile_vec vs the scalar walk, field for field."""

    FIELDS = ("fe_pos", "fe_flags", "fe_addr", "dmiss", "mp", "brk",
              "icache_accesses", "icache_misses", "dcache_accesses",
              "dcache_misses", "lookups", "mispredicts",
              "final_cur_line")

    @pytest.mark.parametrize("bench", ("cc1", "pegwit"))
    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_profiles_equal(self, suite, bench, arch):
        program, static, image, trace = suite[bench]
        ref = build_profile(static, trace, ARCHS[arch])
        got = vecreplay.build_profile_vec(static, trace, ARCHS[arch])
        assert got is not None
        for field in self.FIELDS:
            r, g = getattr(ref, field), getattr(got, field)
            if isinstance(r, int):
                assert g == r, (arch, field)
            else:
                assert bytes(bytearray(r)) == bytes(bytearray(g)), \
                    (arch, field)


def _reference_lru(lines, n_sets, assoc):
    """Independent dict-of-ordered-dict LRU model."""
    sets = {}
    hits = []
    for line in lines:
        s = line % n_sets
        cache_set = sets.setdefault(s, {})
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = True
            hits.append(True)
            continue
        hits.append(False)
        if len(cache_set) >= assoc:
            del cache_set[next(iter(cache_set))]
        cache_set[line] = True
    return hits


class TestHypothesisProfiles:
    """Scalar and vectorized cache/predictor state machines agree on
    random access streams and geometries."""

    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(st.integers(min_value=0, max_value=255),
                          max_size=200),
           set_bits=st.integers(min_value=0, max_value=4),
           assoc=st.sampled_from([1, 2, 4]))
    def test_lru_hits_match_reference(self, lines, set_bits, assoc):
        n_sets = 1 << set_bits
        got = vecreplay._lru_hits(np.array(lines, dtype=np.int64),
                                  n_sets, assoc)
        assert got.tolist() == _reference_lru(lines, n_sets, assoc)

    @settings(max_examples=60, deadline=None)
    @given(events=st.lists(st.tuples(
        st.integers(min_value=0, max_value=15),
        st.sampled_from([-1, 1])), max_size=200))
    def test_clamped_counter_scan_matches_loop(self, events):
        idx = np.array([e[0] for e in events], dtype=np.int64)
        steps = np.array([e[1] for e in events], dtype=np.int64)
        got = vecreplay._clamped_counter_scan(idx, steps)
        table = {}
        for i, (entry, step) in enumerate(events):
            state = table.get(entry, 2)
            assert got[i] == state, i
            table[entry] = min(3, max(0, state + step))


class TestHypothesisReplay:
    """Random truncation caps x bus sharing vs the scalar engines."""

    @settings(max_examples=20, deadline=None)
    @given(cap=st.integers(min_value=1, max_value=4000),
           shared=st.booleans(),
           arch_name=st.sampled_from(sorted(ARCHS)),
           mode=st.sampled_from(["native", "base", "opt"]))
    def test_random_cap_and_bus_exact(self, suite, cap, shared,
                                      arch_name, mode):
        program, static, image, trace = suite["pegwit"]
        arch = ARCHS[arch_name]
        if shared:
            arch = arch.with_shared_bus()
        codepack = {"native": None, "base": CP_BASELINE,
                    "opt": CP_OPTIMIZED}[mode]
        priced = price(suite, "pegwit", [(arch, codepack)],
                       max_instructions=cap)
        assert sorted(priced) == [0]
        ref = simulate(program, arch, codepack=codepack,
                       image=image if codepack else None, static=static,
                       replay=trace, max_instructions=cap)
        assert priced[0].to_dict() == ref.to_dict()


class TestColumnCache:
    def test_columns_memoised_and_versioned(self, suite):
        program, static, image, trace = suite["pegwit"]
        first = vecreplay.trace_columns(trace, static)
        assert vecreplay.trace_columns(trace, static) is first
        del trace._columns
        rebuilt = vecreplay.trace_columns(trace, static)
        assert rebuilt is not first
        assert rebuilt.n == first.n
        assert np.array_equal(rebuilt.addr, first.addr)
