"""Tests for the (optionally shared) memory channel."""

from repro.sim.config import ARCH_4_ISSUE, MemoryConfig
from repro.sim.memory import MemoryChannel


class TestUncontended:
    def test_matches_config_timing(self):
        config = MemoryConfig()
        channel = MemoryChannel(config, shared=False)
        assert channel.burst_arrivals(32, 0) == config.burst_arrivals(32, 0)
        assert channel.access_done(8, 5) == config.access_done(8, 5)

    def test_no_state_between_bursts(self):
        channel = MemoryChannel(MemoryConfig(), shared=False)
        channel.burst_arrivals(32, 0)
        # A second burst issued at the same time sees the same timing.
        assert channel.burst_arrivals(32, 0)[0] == 10

    def test_geometry_passthrough(self):
        channel = MemoryChannel(MemoryConfig(bus_bits=16))
        assert channel.bus_bytes == 2
        assert channel.bus_bits == 16
        assert channel.first_latency == 10
        assert channel.rate == 2


class TestShared:
    def test_overlapping_bursts_queue(self):
        channel = MemoryChannel(MemoryConfig(), shared=True)
        first = channel.burst_arrivals(32, 0)  # beats 10,12,14,16
        second = channel.burst_arrivals(32, 0)  # queued behind
        assert second[0] == first[-1] + 10
        assert channel.delayed == 1
        assert channel.delay_cycles == 16

    def test_idle_channel_adds_nothing(self):
        channel = MemoryChannel(MemoryConfig(), shared=True)
        channel.burst_arrivals(8, 0)  # done at 10
        beats = channel.burst_arrivals(8, 100)
        assert beats == [110]
        assert channel.delayed == 0

    def test_request_counters(self):
        channel = MemoryChannel(MemoryConfig(), shared=True)
        channel.access_done(8, 0)
        channel.access_done(8, 0)
        assert channel.requests == 2


class TestEndToEnd:
    def test_shared_bus_never_faster(self, cc1_small):
        from repro.sim import CodePackConfig, simulate
        idle = simulate(cc1_small, ARCH_4_ISSUE,
                        max_instructions=2_000_000)
        shared = simulate(cc1_small, ARCH_4_ISSUE.with_shared_bus(),
                          max_instructions=2_000_000)
        assert shared.cycles >= idle.cycles
        assert shared.output == idle.output

    def test_with_shared_bus_helper(self):
        derived = ARCH_4_ISSUE.with_shared_bus()
        assert derived.shared_memory_bus
        assert not ARCH_4_ISSUE.shared_memory_bus
        assert "sharedbus" in derived.name
