"""Detailed micro-behaviour tests for the timing models.

Each test builds a micro-program that isolates one structural feature
-- multiplier serialization, commit width, window pressure, load-use
delay -- and asserts its cycle-level effect (usually as a relative
comparison between two variants, which is robust to model constants).
"""

import dataclasses

from repro.isa.builder import AsmBuilder
from repro.isa.registers import T0, T1, T2, T3, T4, T5
from repro.sim import ARCH_1_ISSUE, ARCH_4_ISSUE, simulate
from repro.sim.ooo import _FuPool


def program_of(emit, n=500):
    b = AsmBuilder(name="micro")
    b.li(T0, 0)
    b.li(T1, n)
    b.label("loop")
    emit(b)
    b.addiu(T0, T0, 1)
    b.bne(T0, T1, "loop")
    b.halt()
    return b.build()


class TestFuPool:
    def test_single_unit_serializes(self):
        pool = _FuPool(1)
        assert pool.acquire(ready=0, busy_for=5) == 0
        assert pool.acquire(ready=0, busy_for=5) == 5
        assert pool.acquire(ready=20, busy_for=5) == 20

    def test_two_units_overlap(self):
        pool = _FuPool(2)
        assert pool.acquire(0, 5) == 0
        assert pool.acquire(0, 5) == 0
        assert pool.acquire(0, 5) == 5

    def test_picks_earliest_free(self):
        pool = _FuPool(2)
        pool.acquire(0, 10)
        pool.acquire(0, 2)
        assert pool.acquire(0, 1) == 2  # the unit free at t=2


class TestMultiplier:
    def test_multiplies_serialize_on_single_unit(self):
        def one_mult(b):
            b.mult(T2, T3)
            b.mflo(T4)

        def two_mults(b):
            b.mult(T2, T3)
            b.mflo(T4)
            b.mult(T4, T3)
            b.mflo(T5)

        single = simulate(program_of(one_mult), ARCH_4_ISSUE)
        double = simulate(program_of(two_mults), ARCH_4_ISSUE)
        # The second (dependent) multiply must wait for the first on
        # the single non-pipelined unit: clearly more than one extra
        # cycle per iteration.
        per_iter = (double.cycles - single.cycles) / 500
        assert per_iter >= 3

    def test_div_longer_than_mult(self):
        def with_mult(b):
            b.mult(T2, T3)
            b.mflo(T4)

        def with_div(b):
            b.div(T2, T3)
            b.mflo(T4)

        mult = simulate(program_of(with_mult), ARCH_4_ISSUE)
        div = simulate(program_of(with_div), ARCH_4_ISSUE)
        assert div.cycles > mult.cycles


class TestLoadUse:
    def test_dependent_load_slower_than_independent(self):
        def dependent(b):
            b.lw(T2, 0, T3)
            b.addu(T4, T2, T2)  # uses the load immediately

        def independent(b):
            b.lw(T2, 0, T3)
            b.addu(T4, T5, T5)  # no dependence

        dep = simulate(program_of(dependent), ARCH_1_ISSUE)
        ind = simulate(program_of(independent), ARCH_1_ISSUE)
        assert dep.cycles >= ind.cycles


class TestWindowPressure:
    def test_small_window_hurts_on_long_latency(self):
        # A D-cache-missing load followed by independent work: a large
        # window hides the latency, a tiny window cannot.
        def body(b):
            b.lw(T2, 0, T3)
            for _ in range(8):
                b.addu(T4, T5, T5)

        def build(stride):
            b = AsmBuilder(name="window")
            b.li(T0, 0)
            b.li(T1, 300)
            b.li(T3, 0x1060_0000)
            b.label("loop")
            body(b)
            b.addiu(T3, T3, stride)  # new line every time: misses
            b.addiu(T0, T0, 1)
            b.bne(T0, T1, "loop")
            b.halt()
            return b.build()

        tiny = dataclasses.replace(ARCH_4_ISSUE, ruu_size=4, name="tiny")
        big = dataclasses.replace(ARCH_4_ISSUE, ruu_size=64, name="big")
        prog = build(stride=64)
        small_window = simulate(prog, tiny)
        large_window = simulate(prog, big)
        assert large_window.cycles <= small_window.cycles


class TestCommitWidth:
    def test_narrow_commit_caps_ipc(self):
        def alu_block(b):
            for _ in range(6):
                b.addu(T2, T3, T4)

        narrow = dataclasses.replace(ARCH_4_ISSUE, issue_width=1,
                                     name="narrow-commit")
        wide = ARCH_4_ISSUE
        prog = program_of(alu_block)
        narrow_result = simulate(prog, narrow)
        wide_result = simulate(prog, wide)
        assert narrow_result.ipc <= 1.02
        assert wide_result.ipc > narrow_result.ipc


class TestFetchBandwidth:
    def test_wider_fetch_queue_helps_straightline(self):
        def alu_block(b):
            for _ in range(8):
                b.addu(T2, T3, T4)

        one_wide = dataclasses.replace(ARCH_4_ISSUE, fetch_queue=1,
                                       name="fq1")
        prog = program_of(alu_block)
        slow = simulate(prog, one_wide)
        fast = simulate(prog, ARCH_4_ISSUE)
        assert fast.cycles < slow.cycles


class TestInOrderScalarLimit:
    def test_cpi_never_below_one(self):
        def alu_block(b):
            for _ in range(4):
                b.addu(T2, T3, T4)

        result = simulate(program_of(alu_block), ARCH_1_ISSUE)
        assert result.cycles >= result.instructions
