"""Tests for the native next-line prefetcher."""

from repro.sim.cache import Cache
from repro.sim.config import ARCH_4_ISSUE, CacheConfig, MemoryConfig
from repro.sim.fetch import NativeMissPath
from tests.conftest import make_static_program


def make_path(**kwargs):
    return NativeMissPath(MemoryConfig(), 32, **kwargs)


class TestPrefetchPath:
    def test_sequential_miss_hits_buffer(self):
        path = make_path(prefetch_next=True)
        first = path.miss(0x400000, 0)
        second = path.miss(0x400020, first.fill_done + 10)
        assert path.prefetch_hits == 1
        # Buffer hit costs a transfer cycle, not a memory access.
        assert second.critical_ready <= first.fill_done + 11

    def test_nonsequential_miss_goes_to_memory(self):
        path = make_path(prefetch_next=True)
        path.miss(0x400000, 0)
        far = path.miss(0x400100, 100)
        assert path.prefetch_hits == 0
        assert far.critical_ready == 110

    def test_prefetch_in_flight_still_arriving(self):
        path = make_path(prefetch_next=True)
        first = path.miss(0x400000, 0)  # done 16; next line done ~32
        second = path.miss(0x400020, first.fill_done)
        # If requested before the prefetch finished streaming, the
        # words are available no earlier than their arrival.
        assert second.fill_done >= first.fill_done

    def test_disabled_by_default(self):
        path = make_path()
        path.miss(0x400000, 0)
        second = path.miss(0x400020, 50)
        assert second.critical_ready == 60  # full memory access
        assert path.prefetch_hits == 0

    def test_demand_timing_unchanged_by_prefetcher(self):
        plain = make_path().miss(0x400010, 0)
        prefetching = make_path(prefetch_next=True).miss(0x400010, 0)
        assert prefetching.critical_ready == plain.critical_ready
        assert prefetching.word_times == plain.word_times


class TestEndToEnd:
    def test_loop_chain_code_benefits(self):
        """NLP pays when compute gaps between line transitions let the
        prefetch run ahead (on bandwidth-bound straight-line streaming
        it cannot help: the front end consumes lines as fast as memory
        delivers them)."""
        from repro.isa.builder import AsmBuilder
        from repro.isa.registers import T0, T2
        from repro.sim import simulate

        b = AsmBuilder(name="loopchain")
        b.li(T2, 0)
        for k in range(600):
            b.li(T0, 6)
            label = "blk%d" % k
            b.label(label)
            b.addiu(T2, T2, 1)
            b.addiu(T0, T0, -1)
            b.bne(T0, 0, label)  # a short loop per line: compute gap
        b.halt()
        prog = b.build()
        native = simulate(prog, ARCH_4_ISSUE)
        prefetching = simulate(prog, ARCH_4_ISSUE, native_prefetch=True,
                               mode="native+nlp")
        assert prefetching.output == native.output
        assert prefetching.cycles < native.cycles * 0.9

    def test_bandwidth_bound_streaming_gains_nothing(self):
        """The complementary case: back-to-back line misses are paced
        by the memory stream, so the prefetcher cannot run ahead."""
        from repro.sim import simulate
        prog = make_static_program(4096)
        native = simulate(prog, ARCH_4_ISSUE)
        prefetching = simulate(prog, ARCH_4_ISSUE, native_prefetch=True,
                               mode="native+nlp")
        assert abs(prefetching.cycles - native.cycles) \
            <= native.cycles * 0.02

    def test_architecturally_transparent(self, cc1_small):
        from repro.sim import simulate
        native = simulate(cc1_small, ARCH_4_ISSUE,
                          max_instructions=2_000_000)
        prefetching = simulate(cc1_small, ARCH_4_ISSUE,
                               native_prefetch=True,
                               max_instructions=2_000_000)
        assert prefetching.output == native.output
        assert prefetching.cycles <= native.cycles
