"""The persisted trace format and the SHA-keyed trace cache.

:func:`save_trace` / :func:`load_trace` define a versioned, checksummed
binary container; anything short of a whole, current-version,
checksum-clean file must be rejected with :class:`TraceFormatError`.
:class:`TraceCache` layers content-addressed storage on top and must
invalidate on program change and format-version bumps by construction.
"""

import os
import struct

import pytest

from repro.isa.assembler import assemble
from repro.sim import replay as replay_mod
from repro.sim.machine import prepare
from repro.sim.replay import (
    TRACE_VERSION,
    TraceCache,
    TraceFormatError,
    load_trace,
    program_digest,
    record_trace,
    save_trace,
)
from repro.workloads.suite import build_benchmark

_MAGIC = replay_mod._MAGIC

SOURCE = """
.text 0x400000
    addiu $t0, $zero, 3
    lui $t2, 0x1000
loop:
    lw $t1, 0($t2)
    addiu $t1, $t1, 1
    sw $t1, 0($t2)
    addiu $t0, $t0, -1
    bne $t0, $zero, loop
    addiu $v0, $zero, 1
    lw $a0, 0($t2)
    syscall
    addiu $v0, $zero, 10
    syscall
.data 0x10000000
    .word 39
"""


@pytest.fixture(scope="module")
def program():
    return assemble(SOURCE)


@pytest.fixture(scope="module")
def trace(program):
    return record_trace(program, static=prepare(program))


def trace_state(t):
    return (t.n, list(t.span_start), list(t.span_len), bytes(t.takens),
            list(t.mem_addrs), list(t.out_pos), list(t.out_text),
            t.halted, t.exit_code, t.fault, t.max_instructions,
            t.text_base, t.program_sha)


class TestRoundTrip:
    def test_fields_survive(self, trace, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(trace, path)
        assert trace_state(load_trace(path)) == trace_state(trace)

    def test_benchmark_trace_survives(self, tmp_path):
        # A real workload: thousands of instructions, output events.
        program = build_benchmark("pegwit", 0.02)
        t = record_trace(program, static=prepare(program))
        path = str(tmp_path / "b.trace")
        save_trace(t, path)
        assert trace_state(load_trace(path)) == trace_state(t)

    def test_faulting_trace_survives(self, tmp_path):
        program = assemble(".text 0x400000\naddiu $t0, $zero, 1")
        t = record_trace(program, static=prepare(program))
        assert t.fault is not None
        path = str(tmp_path / "f.trace")
        save_trace(t, path)
        assert load_trace(path).fault == t.fault

    def test_save_creates_directories(self, trace, tmp_path):
        path = str(tmp_path / "a" / "b" / "t.trace")
        save_trace(trace, path)
        assert load_trace(path).n == trace.n


class TestRejection:
    def saved(self, trace, tmp_path):
        path = str(tmp_path / "t.trace")
        save_trace(trace, path)
        with open(path, "rb") as handle:
            return path, bytearray(handle.read())

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="unreadable"):
            load_trace(str(tmp_path / "absent.trace"))

    def test_bad_magic(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        raw[0] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(raw)
        with pytest.raises(TraceFormatError, match="not a trace file"):
            load_trace(path)

    def test_version_mismatch(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        struct.pack_into("<I", raw, len(_MAGIC), TRACE_VERSION + 1)
        with open(path, "wb") as handle:
            handle.write(raw)
        with pytest.raises(TraceFormatError, match="version"):
            load_trace(path)

    def test_truncated_header(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        with open(path, "wb") as handle:
            handle.write(raw[:len(_MAGIC) + 12])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace(path)

    def test_corrupt_header_json(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        raw[len(_MAGIC) + 8] = ord("!")  # first header byte: not JSON
        with open(path, "wb") as handle:
            handle.write(raw)
        with pytest.raises(TraceFormatError, match="corrupt"):
            load_trace(path)

    def test_truncated_payload(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        with open(path, "wb") as handle:
            handle.write(raw[:-1])
        with pytest.raises(TraceFormatError, match="expected"):
            load_trace(path)

    def test_corrupted_payload_byte(self, trace, tmp_path):
        path, raw = self.saved(trace, tmp_path)
        raw[-1] ^= 0x01  # length-preserving flip: only the checksum sees it
        with open(path, "wb") as handle:
            handle.write(raw)
        with pytest.raises(TraceFormatError, match="checksum"):
            load_trace(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        with open(path, "wb"):
            pass
        with pytest.raises(TraceFormatError, match="not a trace file"):
            load_trace(path)


class TestTraceCache:
    def test_miss_then_hit(self, program, trace, tmp_path):
        cache = TraceCache(str(tmp_path))
        assert cache.get(program, trace.max_instructions) is None
        cache.put(program, trace)
        got = cache.get(program, trace.max_instructions)
        assert got is not None and trace_state(got) == trace_state(trace)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_get_or_record(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))
        first = cache.get_or_record(program, static=prepare(program))
        again = cache.get_or_record(program)
        assert trace_state(first) == trace_state(again)
        assert cache.hits == 1  # second call served from disk

    def test_cap_is_part_of_the_key(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.get_or_record(program, max_instructions=5)
        assert cache.get(program, 6) is None

    def test_program_change_invalidates(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.get_or_record(program)
        other = assemble(".text 0x400000\naddiu $v0, $zero, 10\nsyscall")
        assert program_digest(other) != program_digest(program)
        assert cache.get(other, 5_000_000) is None

    def test_version_bump_invalidates(self, program, trace, tmp_path,
                                      monkeypatch):
        cache = TraceCache(str(tmp_path))
        cache.put(program, trace)
        monkeypatch.setattr(replay_mod, "TRACE_VERSION", TRACE_VERSION + 1)
        assert cache.get(program, trace.max_instructions) is None

    def test_corrupt_entry_is_a_miss(self, program, trace, tmp_path):
        cache = TraceCache(str(tmp_path))
        cache.put(program, trace)
        path = cache._path(cache.key(program, trace.max_instructions))
        with open(path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"garbage!")
        assert cache.get(program, trace.max_instructions) is None
        assert cache.misses == 1


class TestTraceCacheLimit:
    """The byte cap: mtime-LRU pruning after every store."""

    def _put(self, cache, program, cap, mtime):
        trace = record_trace(program, static=prepare(program),
                             max_instructions=cap)
        cache.put(program, trace)
        path = cache._path(cache.key(program, cap))
        os.utime(path, (mtime, mtime))
        return path

    def test_put_prunes_oldest_first(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))  # unbounded while seeding
        old = self._put(cache, program, 5, 1_000)
        mid = self._put(cache, program, 6, 2_000)
        cache.limit_bytes = os.path.getsize(mid)
        new = self._put(cache, program, 7, 3_000)
        assert os.path.exists(new)
        assert not os.path.exists(old) and not os.path.exists(mid)
        assert cache.pruned_files == 2
        assert cache.pruned_bytes > 0

    def test_get_refreshes_lru_rank(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))
        a = self._put(cache, program, 5, 1_000)
        b = self._put(cache, program, 6, 2_000)
        assert cache.get(program, 5) is not None  # touch: now newest
        cache.limit_bytes = os.path.getsize(a)
        assert cache.prune() == 1
        assert os.path.exists(a)
        assert not os.path.exists(b)

    def test_fresh_store_survives_alone_over_limit(self, program,
                                                   tmp_path):
        cache = TraceCache(str(tmp_path), limit_bytes=1)
        self._put(cache, program, 5, 1_000)
        assert cache.get(program, 5) is not None
        assert cache.pruned_files == 0

    def test_foreign_files_untouched(self, program, tmp_path):
        keepsake = tmp_path / "README.txt"
        keepsake.write_text("not a trace")
        cache = TraceCache(str(tmp_path), limit_bytes=0)
        self._put(cache, program, 5, 1_000)
        self._put(cache, program, 6, 2_000)
        assert keepsake.exists()
        assert not os.path.exists(cache._path(cache.key(program, 5)))

    def test_unbounded_never_prunes(self, program, tmp_path):
        cache = TraceCache(str(tmp_path))
        self._put(cache, program, 5, 1_000)
        assert cache.prune() == 0
        assert cache.pruned_files == 0

    def test_negative_limit_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="limit_bytes"):
            TraceCache(str(tmp_path), limit_bytes=-1)


def _hammer_trace_cache(root, rounds, offset):
    """Subprocess body for the concurrency stress test (module level
    so it pickles).  Hammers a shared, byte-limited cache directory:
    with ``limit_bytes=1`` every store prunes every other entry, so
    the sibling process's loads constantly race files being replaced
    or deleted.  Any anomaly is returned as a string (raising in a
    pool worker would only surface a pickled traceback)."""
    program = assemble(SOURCE)
    static = prepare(program)
    digest = program_digest(program)
    cache = TraceCache(root, limit_bytes=1)
    for i in range(rounds):
        cap = 3 + ((i + offset) % 4)
        trace = cache.get_or_record(program, static=static,
                                    max_instructions=cap)
        if trace.program_sha != digest:
            return "wrong program digest for cap %d" % cap
        if trace.max_instructions != cap:
            return "wrong cap: wanted %d, got %d" % (cap,
                                                     trace.max_instructions)
        again = cache.get(program, cap)
        if again is not None and trace_state(again) != trace_state(trace):
            return "reread mismatch for cap %d" % cap
    return None


class TestTraceCacheConcurrency:
    """Two processes sharing one cache directory must never observe a
    torn trace: stores are tmp+atomic-replace, loads treat vanished or
    partial files as misses, and pruning is best-effort."""

    def test_two_process_stress(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor
        root = str(tmp_path)
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_hammer_trace_cache, root, 40, k)
                       for k in range(2)]
            errors = [f.result(timeout=300) for f in futures]
        assert errors == [None, None]
        # Atomic stores never leak temp files into the directory.
        assert [n for n in os.listdir(root) if n.endswith(".tmp")] == []
