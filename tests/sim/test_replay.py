"""Differential suite: trace replay vs the execute-driven models.

:mod:`repro.sim.replay` promises cycle-exactness: recording a program's
functional trace once and replaying it under any timing configuration
must reproduce the execute-driven :func:`run_inorder` / :func:`run_ooo`
result bit-for-bit.  These tests hold it to that across issue widths,
CodePack modes, ablation knobs, instruction-budget truncation, miss
traces and architectural faults, and pin the compiled replay kernels
against the generic interpreting loop they were generated from.
"""

import dataclasses
from dataclasses import replace

import pytest

from repro.eval.experiments import CP_BASELINE, CP_OPTIMIZED
from repro.codepack.compressor import compress_program
from repro.isa.assembler import assemble
from repro.sim.branch import make_predictor
from repro.sim.cache import Cache
from repro.sim.config import ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE
from repro.sim.cpu import SimulationError
from repro.sim.fetch import FetchUnit, NativeMissPath
from repro.sim.machine import prepare, simulate
from repro.sim.memory import MemoryChannel
from repro.sim.replay import (
    TraceError,
    record_trace,
    replay_ooo,
)
from repro.sim.trace import MissTrace
from repro.workloads.suite import build_benchmark

SCALE = 0.02

ARCHS = {a.name: a for a in (ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE)}

CP_NOBUF = replace(CP_BASELINE, output_buffer=False)


@pytest.fixture(scope="module")
def suite():
    """Programs, predecode, image and recorded trace per benchmark."""
    out = {}
    for name in ("cc1", "pegwit", "mpeg2enc"):
        program = build_benchmark(name, SCALE)
        static = prepare(program)
        image = compress_program(program)
        trace = record_trace(program, static=static)
        out[name] = (program, static, image, trace)
    return out


def result_state(result):
    """Everything two equivalent runs must agree on."""
    d = result.to_dict()
    d.pop("mode")  # informational label, not simulated state
    return d


def both(suite, bench, arch, codepack=None, **kwargs):
    program, static, image, trace = suite[bench]
    image = image if codepack else None
    ref = simulate(program, arch, codepack=codepack, image=image,
                   static=static, **kwargs)
    got = simulate(program, arch, codepack=codepack, image=image,
                   static=static, replay=trace, **kwargs)
    return ref, got


class TestDifferentialSuite:
    @pytest.mark.parametrize("bench", ("cc1", "pegwit", "mpeg2enc"))
    @pytest.mark.parametrize("codepack", (None, CP_BASELINE, CP_OPTIMIZED),
                             ids=("native", "codepack", "optimized"))
    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_cycle_exact(self, suite, bench, codepack, arch):
        ref, got = both(suite, bench, ARCHS[arch], codepack=codepack)
        assert result_state(ref) == result_state(got)

    @pytest.mark.parametrize("arch", sorted(ARCHS))
    @pytest.mark.parametrize("cap", (1, 7, 997))
    def test_instruction_budget_truncation(self, suite, arch, cap):
        ref, got = both(suite, "cc1", ARCHS[arch], max_instructions=cap)
        assert ref.instructions == cap
        assert result_state(ref) == result_state(got)
        assert ref.extra["truncated"] and got.extra["truncated"]

    @pytest.mark.parametrize("arch", sorted(ARCHS))
    def test_shared_memory_bus(self, suite, arch):
        ref, got = both(suite, "pegwit", ARCHS[arch].with_shared_bus(),
                        codepack=CP_BASELINE)
        assert result_state(ref) == result_state(got)

    def test_no_output_buffer(self, suite):
        ref, got = both(suite, "cc1", ARCH_4_ISSUE, codepack=CP_NOBUF)
        assert result_state(ref) == result_state(got)

    def test_no_critical_word_first(self, suite):
        ref, got = both(suite, "cc1", ARCH_4_ISSUE,
                        critical_word_first=False)
        assert result_state(ref) == result_state(got)

    def test_native_prefetch(self, suite):
        ref, got = both(suite, "cc1", ARCH_4_ISSUE, native_prefetch=True)
        assert result_state(ref) == result_state(got)

    def test_replay_true_records_on_the_fly(self, suite):
        # replay=True (no pre-recorded trace) must behave like passing
        # the Trace object explicitly.
        program, static, _, trace = suite["pegwit"]
        ref = simulate(program, ARCH_4_ISSUE, static=static, replay=trace)
        got = simulate(program, ARCH_4_ISSUE, static=static, replay=True)
        assert result_state(ref) == result_state(got)

    def test_miss_trace_identical(self, suite):
        program, static, image, trace = suite["cc1"]
        ref_trace, got_trace = MissTrace(), MissTrace()
        simulate(program, ARCH_4_ISSUE, codepack=CP_BASELINE, image=image,
                 static=static, trace=ref_trace)
        simulate(program, ARCH_4_ISSUE, codepack=CP_BASELINE, image=image,
                 static=static, replay=trace, trace=got_trace)
        assert ref_trace.count == got_trace.count
        assert ([dataclasses.astuple(e) for e in ref_trace.events]
                == [dataclasses.astuple(e) for e in got_trace.events])


class TestCompiledKernel:
    """The per-trace generated OOO kernel vs the generic loop.

    The compiled kernel only runs for truncating caps (full replays go
    through the profile-driven stream kernel), so the comparison pins
    a mid-stream cap on every architecture.
    """

    def timing_state(self, suite, bench, arch, cap, compiled):
        program, static, image, trace = suite[bench]
        channel = MemoryChannel(arch.memory, shared=arch.shared_memory_bus)
        fetch_unit = FetchUnit(
            Cache(arch.icache),
            NativeMissPath(channel, arch.icache.line_bytes))
        dcache = Cache(arch.dcache)
        out = replay_ooo(static, trace, fetch_unit, dcache, channel,
                         make_predictor(arch.predictor), arch, cap,
                         compiled=compiled)
        return out + (fetch_unit.icache.stats.accesses,
                      fetch_unit.icache.stats.misses,
                      dcache.stats.accesses, dcache.stats.misses)

    @pytest.mark.parametrize("arch", ("4-issue", "8-issue"))
    @pytest.mark.parametrize("cap", (7, 997, 4999))
    def test_compiled_matches_generic(self, suite, arch, cap):
        arch = ARCHS[arch]
        fast = self.timing_state(suite, "pegwit", arch, cap, True)
        slow = self.timing_state(suite, "pegwit", arch, cap, False)
        assert fast == slow

    def test_generic_matches_execute(self, suite):
        # compiled=False is the oracle for the codegen; it must itself
        # match the execute-driven model on a truncating cap.
        program, static, _, trace = suite["pegwit"]
        ref = simulate(program, ARCH_4_ISSUE, static=static,
                       max_instructions=997)
        generic = self.timing_state(suite, "pegwit", ARCH_4_ISSUE, 997,
                                    False)
        assert generic[0] == ref.cycles
        assert generic[1] == ref.branch_lookups
        assert generic[2] == ref.branch_mispredicts

    def test_kernel_cached_on_trace(self, suite):
        _, _, _, trace = suite["pegwit"]
        self.timing_state(suite, "pegwit", ARCH_4_ISSUE, 997, True)
        cached = trace._kernel
        assert cached is not None
        self.timing_state(suite, "pegwit", ARCH_8_ISSUE, 997, True)
        assert trace._kernel is cached  # shared across architectures


FAULTS = {
    "pc_escape": ".text 0x400000\naddiu $t0, $zero, 1",
    "misaligned_load":
        ".text 0x400000\nli $t0, 0x10000001\nlw $t1, 0($t0)",
    "unknown_syscall": ".text 0x400000\naddiu $v0, $zero, 99\nsyscall",
}


class TestFaultExactness:
    @pytest.mark.parametrize("arch", ("1-issue", "4-issue"))
    @pytest.mark.parametrize("codepack", (None, CP_BASELINE),
                             ids=("native", "codepack"))
    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_fault_matches(self, fault, codepack, arch):
        program = assemble(FAULTS[fault])
        static = prepare(program)
        image = compress_program(program) if codepack else None
        trace = record_trace(program, static=static)
        assert trace.fault is not None or fault == "unknown_syscall"
        messages = []
        for replay in (None, trace):
            with pytest.raises(SimulationError) as err:
                simulate(program, ARCHS[arch], codepack=codepack,
                         image=image, static=static, replay=replay)
            messages.append(str(err.value))
        assert messages[0] == messages[1]

    def test_truncation_before_fault_is_clean(self):
        # A cap that stops short of the faulting instruction must not
        # raise -- exactly like the execute-driven model.
        program = assemble(FAULTS["misaligned_load"])
        static = prepare(program)
        trace = record_trace(program, static=static)
        cap = trace.n  # everything recorded before the fault
        ref = simulate(program, ARCH_1_ISSUE, static=static,
                       max_instructions=cap)
        got = simulate(program, ARCH_1_ISSUE, static=static, replay=trace,
                       max_instructions=cap)
        assert result_state(ref) == result_state(got)


class TestReplayContract:
    def test_rejects_pc_index(self, suite):
        program, static, _, _ = suite["pegwit"]
        pc_index = {st.addr: i for i, st in enumerate(static)}
        with pytest.raises(ValueError, match="fixed-width"):
            simulate(program, ARCH_1_ISSUE, pc_index=pc_index, replay=True)

    def test_rejects_foreign_trace(self, suite):
        program = suite["cc1"][0]
        trace = suite["pegwit"][3]
        with pytest.raises(TraceError, match="different program"):
            simulate(program, ARCH_1_ISSUE, replay=trace)

    def test_rejects_undersized_trace(self, suite):
        # A trace truncated by its own recording cap (no halt, no
        # fault) cannot answer a larger replay cap.
        program, static, _, _ = suite["pegwit"]
        short = record_trace(program, static=static, max_instructions=100)
        assert not short.halted and short.fault is None
        with pytest.raises(TraceError, match="cannot"):
            simulate(program, ARCH_4_ISSUE, static=static, replay=short,
                     max_instructions=200)

    def test_undersized_trace_replays_within_cap(self, suite):
        program, static, _, _ = suite["pegwit"]
        short = record_trace(program, static=static, max_instructions=100)
        ref = simulate(program, ARCH_4_ISSUE, static=static,
                       max_instructions=100)
        got = simulate(program, ARCH_4_ISSUE, static=static, replay=short,
                       max_instructions=100)
        assert result_state(ref) == result_state(got)

    def test_output_truncation_prefix(self, suite):
        # Syscall output under a truncating cap must be the exact
        # prefix the execute-driven run produces.
        program, static, _, trace = suite["mpeg2enc"]
        assert trace.out_pos, "fixture benchmark must produce output"
        cap = int(trace.out_pos[0]) + 1  # just past the first write
        ref, got = both(suite, "mpeg2enc", ARCH_1_ISSUE,
                        max_instructions=cap)
        assert ref.output == got.output
        assert ref.output  # non-trivial prefix
