"""Tests for miss tracing and latency analysis."""

from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate
from repro.sim.trace import (
    MissEvent,
    MissTrace,
    format_histogram,
    latency_histogram,
)
from repro.sim.fetch import LineFill
from tests.conftest import make_counting_program


def _fill(critical, done):
    return LineFill(0, [critical] * 8, critical, done)


class TestMissTrace:
    def test_records_events(self):
        trace = MissTrace()
        trace.record(0x400000, 100, _fill(110, 116))
        (event,) = trace.events
        assert event.critical_latency == 10
        assert event.fill_latency == 16
        assert trace.count == 1
        assert not trace.truncated

    def test_limit_truncates_but_counts(self):
        trace = MissTrace(limit=2)
        for i in range(5):
            trace.record(i, 0, _fill(10, 16))
        assert len(trace.events) == 2
        assert trace.count == 5
        assert trace.truncated

    def test_summary(self):
        trace = MissTrace()
        for latency in (10, 20, 30):
            trace.record(0, 0, _fill(latency, latency))
        summary = trace.summary()
        assert summary["min"] == 10
        assert summary["max"] == 30
        assert summary["mean"] == 20
        assert summary["median"] == 20

    def test_empty_summary(self):
        assert MissTrace().summary() == {"count": 0}


class TestHistogram:
    def test_bucketing(self):
        histogram = latency_histogram([1, 2, 5, 9, 10], bucket=4)
        assert histogram == {0: 2, 4: 1, 8: 2}

    def test_format_nonempty(self):
        text = format_histogram([10, 10, 12, 30], bucket=4)
        assert "#" in text
        assert "2" in text

    def test_format_empty(self):
        assert format_histogram([]) == "(no misses)"


class TestEndToEnd:
    def test_native_latencies_are_first_access(self):
        prog = make_counting_program(100)
        trace = MissTrace()
        simulate(prog, ARCH_4_ISSUE, trace=trace)
        assert trace.count >= 1
        # Every native miss is served critical-word-first at the
        # 10-cycle first-access latency.
        assert set(trace.critical_latencies()) == {10}

    def test_codepack_latency_population(self, cc1_small):
        trace = MissTrace()
        simulate(cc1_small, ARCH_4_ISSUE, codepack=CodePackConfig(),
                 trace=trace, max_instructions=2_000_000)
        latencies = trace.critical_latencies()
        # Buffer hits (1 cycle) and full index-miss paths (>20 cycles)
        # must both appear.
        assert min(latencies) <= 2
        assert max(latencies) >= 20

    def test_trace_count_matches_miss_stats(self, cc1_small):
        trace = MissTrace()
        result = simulate(cc1_small, ARCH_4_ISSUE, trace=trace,
                          max_instructions=2_000_000)
        assert trace.count == result.icache_misses

    def test_fill_latency_at_least_critical(self, cc1_small):
        trace = MissTrace()
        simulate(cc1_small, ARCH_4_ISSUE, codepack=CodePackConfig(),
                 trace=trace, max_instructions=2_000_000)
        for event in trace.events:
            assert event.fill_latency >= event.critical_latency
