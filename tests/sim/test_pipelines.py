"""Behavioural tests for the in-order and out-of-order timing models.

These do not pin exact cycle counts (the models are approximations);
they assert the *relationships* the paper's results depend on: wider
issue is faster, dependent chains serialise, cache misses cost cycles,
mispredictions cost cycles.
"""

from repro.isa.builder import AsmBuilder
from repro.isa.registers import A0, T0, T1, T2, T3, T4, T5, V0
from repro.sim import ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE, simulate
from tests.conftest import make_counting_program


def independent_chain_program(n=2000):
    """Blocks of independent ALU ops: ILP for wide machines to mine."""
    b = AsmBuilder(name="ilp")
    b.li(T0, 0)
    b.li(T1, n)
    b.label("loop")
    b.addiu(T2, T2, 1)
    b.addiu(T3, T3, 2)
    b.addiu(T4, T4, 3)
    b.addiu(T5, T5, 4)
    b.addiu(T0, T0, 1)
    b.bne(T0, T1, "loop")
    b.halt()
    return b.build()


def dependent_chain_program(n=2000):
    """A serial dependence chain: no ILP anywhere."""
    b = AsmBuilder(name="serial")
    b.li(T0, 0)
    b.li(T1, n)
    b.label("loop")
    b.addiu(T2, T2, 1)
    b.addiu(T2, T2, 1)
    b.addiu(T2, T2, 1)
    b.addiu(T2, T2, 1)
    b.addiu(T0, T0, 1)
    b.bne(T0, T1, "loop")
    b.halt()
    return b.build()


def pointer_chase_program(links=400, stride=1024):
    """Loads whose addresses defeat a small D-cache (cold misses)."""
    b = AsmBuilder(name="chase")
    base = 0x1040_0000
    for i in range(links):
        addr = base + i * stride
        nxt = base + (i + 1) * stride
        b.data_word(addr, nxt)
    b.li(T0, base)
    b.li(T1, links)
    b.li(T2, 0)
    b.label("loop")
    b.lw(T0, 0, T0)
    b.addiu(T2, T2, 1)
    b.bne(T2, T1, "loop")
    b.halt()
    return b.build()


def branchy_program(n=3000):
    """Data-dependent branches an LCG makes unpredictable."""
    b = AsmBuilder(name="branchy")
    b.li(T0, 12345)
    b.li(T1, 1103515245)
    b.li(T2, 0)
    b.li(T3, n)
    b.label("loop")
    b.mult(T0, T1)
    b.mflo(T0)
    b.addiu(T0, T0, 12345)
    b.srl(T4, T0, 16)
    b.andi(T4, T4, 1)
    b.beq(T4, 0, "skip")
    b.addiu(T5, T5, 1)
    b.label("skip")
    b.addiu(T2, T2, 1)
    b.bne(T2, T3, "loop")
    b.halt()
    return b.build()


class TestIssueWidthScaling:
    def test_wider_machines_are_faster_on_ilp(self):
        prog = independent_chain_program()
        one = simulate(prog, ARCH_1_ISSUE)
        four = simulate(prog, ARCH_4_ISSUE)
        eight = simulate(prog, ARCH_8_ISSUE)
        assert one.ipc <= four.ipc <= eight.ipc
        assert four.ipc > 1.2 * one.ipc

    def test_single_issue_ipc_at_most_one(self):
        result = simulate(independent_chain_program(), ARCH_1_ISSUE)
        assert result.ipc <= 1.0

    def test_dependent_chain_defeats_width(self):
        prog = dependent_chain_program()
        four = simulate(prog, ARCH_4_ISSUE)
        # A serial chain cannot exploit 4-wide issue.
        assert four.ipc < 1.6

    def test_ilp_beats_serial_on_wide_machine(self):
        ilp = simulate(independent_chain_program(), ARCH_4_ISSUE)
        serial = simulate(dependent_chain_program(), ARCH_4_ISSUE)
        assert ilp.ipc > serial.ipc


class TestMemoryEffects:
    def test_dcache_misses_cost_cycles(self):
        cold = simulate(pointer_chase_program(stride=1024), ARCH_4_ISSUE)
        warm = simulate(pointer_chase_program(stride=4), ARCH_4_ISSUE)
        assert cold.dcache_misses > warm.dcache_misses
        assert cold.ipc < warm.ipc

    def test_dcache_stats_populated(self):
        result = simulate(pointer_chase_program(), ARCH_4_ISSUE)
        assert result.dcache_accesses > 0


class TestBranchEffects:
    def test_mispredicts_recorded(self):
        result = simulate(branchy_program(), ARCH_4_ISSUE)
        assert result.branch_lookups > 0
        # The LCG-driven branch is essentially random: mispredict rate
        # should be substantial but below 100%.
        assert 0.05 < result.mispredict_rate < 0.9

    def test_predictable_loop_branch_learned(self):
        result = simulate(make_counting_program(500), ARCH_4_ISSUE)
        assert result.mispredict_rate < 0.1

    def test_mispredicts_cost_cycles(self):
        branchy = simulate(branchy_program(), ARCH_4_ISSUE)
        steady = simulate(make_counting_program(3000), ARCH_4_ISSUE)
        assert branchy.ipc < steady.ipc


class TestDeterminism:
    def test_same_run_same_cycles(self):
        prog = branchy_program()
        a = simulate(prog, ARCH_4_ISSUE)
        b = simulate(prog, ARCH_4_ISSUE)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_cycle_count_positive_and_bounded(self):
        result = simulate(make_counting_program(100), ARCH_8_ISSUE)
        assert result.instructions <= result.cycles * 8
        assert result.cycles >= result.instructions / 8
