"""Tests for the native fetch path and the fetch unit."""

from repro.sim.cache import Cache
from repro.sim.config import CacheConfig, MemoryConfig
from repro.sim.fetch import FetchUnit, NativeMissPath


def make_unit(line=32, size=1024, bus_bits=64):
    icache = Cache(CacheConfig(size, line, 2))
    path = NativeMissPath(MemoryConfig(bus_bits=bus_bits), line)
    return FetchUnit(icache, path), icache


class TestNativeMissPath:
    def test_critical_word_first(self):
        path = NativeMissPath(MemoryConfig(), 32)
        fill = path.miss(0x400010, now=0)  # fifth word of the line
        assert fill.critical_ready == 10  # paper Figure 2-a
        assert fill.fill_done == 16

    def test_word_order_wraps_around(self):
        path = NativeMissPath(MemoryConfig(), 32)
        fill = path.miss(0x400010, now=0)
        # Beat order: words 4-5 first (t=10), then 6-7, then wrap to 0-1,
        # 2-3 (t=14, 16).
        assert fill.word_times[4] == 10
        assert fill.word_times[6] == 12
        assert fill.word_times[0] == 14
        assert fill.word_times[2] == 16

    def test_first_word_miss(self):
        path = NativeMissPath(MemoryConfig(), 32)
        fill = path.miss(0x400000, now=0)
        assert fill.word_times == [10, 10, 12, 12, 14, 14, 16, 16]

    def test_narrow_bus_word_takes_two_beats(self):
        path = NativeMissPath(MemoryConfig(bus_bits=16), 32)
        fill = path.miss(0x400000, now=0)
        # Each 4-byte word needs two 2-byte beats; word 0 completes at
        # the second beat.
        assert fill.critical_ready == 12
        assert fill.fill_done == 10 + 15 * 2

    def test_now_offsets_everything(self):
        path = NativeMissPath(MemoryConfig(), 32)
        fill = path.miss(0x400000, now=100)
        assert fill.critical_ready == 110


class TestFetchUnit:
    def test_miss_then_hits(self):
        unit, icache = make_unit()
        ready = unit.fetch(0x400000, now=0)
        assert ready == 10
        assert icache.stats.misses == 1
        # Next word of the same line: no new cache access, available at
        # its beat arrival.
        assert unit.fetch(0x400004, now=10) == 10
        assert icache.stats.accesses == 1

    def test_line_transition_counts_access(self):
        unit, icache = make_unit()
        unit.fetch(0x400000, 0)
        unit.fetch(0x400020, 20)  # next line
        assert icache.stats.accesses == 2

    def test_within_line_waits_for_beat(self):
        unit, _ = make_unit()
        unit.fetch(0x400000, 0)
        # Word 7 arrives with the last beat at t=16.
        assert unit.fetch(0x40001C, 11) == 16

    def test_hit_after_fill_is_instant(self):
        unit, _ = make_unit()
        unit.fetch(0x400000, 0)
        unit.redirect()
        assert unit.fetch(0x400000, 50) == 50

    def test_redirect_recounts_access(self):
        unit, icache = make_unit()
        unit.fetch(0x400000, 0)
        unit.redirect()
        unit.fetch(0x400000, 20)
        assert icache.stats.accesses == 2
        assert icache.stats.misses == 1

    def test_refetch_during_fill_respects_word_time(self):
        unit, _ = make_unit()
        unit.fetch(0x400010, 0)  # critical word 4 at t=10
        unit.redirect()
        # Branch back into the same line while it is still arriving:
        # word 0 lands at t=14 and must not be available earlier.
        assert unit.fetch(0x400000, 11) == 14
