"""Tests for the SimResult record."""

import pytest

from repro.sim.results import SimResult


def make(instructions=1000, cycles=2000, **kwargs):
    defaults = dict(benchmark="b", arch="4-issue", mode="native",
                    instructions=instructions, cycles=cycles,
                    icache_accesses=100, icache_misses=10)
    defaults.update(kwargs)
    return SimResult(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make().ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert make(cycles=0).ipc == 0.0

    def test_miss_rate(self):
        assert make().icache_miss_rate == 0.1

    def test_miss_rate_no_accesses(self):
        assert make(icache_accesses=0, icache_misses=0) \
            .icache_miss_rate == 0.0

    def test_mispredict_rate(self):
        result = make(branch_lookups=100, branch_mispredicts=7)
        assert result.mispredict_rate == 0.07
        assert make().mispredict_rate == 0.0


class TestSpeedup:
    def test_speedup_over(self):
        fast = make(cycles=1000)
        slow = make(cycles=2000)
        assert fast.speedup_over(slow) == 2.0
        assert slow.speedup_over(fast) == 0.5

    def test_mismatched_work_rejected(self):
        with pytest.raises(ValueError):
            make(instructions=10).speedup_over(make(instructions=20))


class TestSummary:
    def test_summary_fields(self):
        text = make().summary()
        assert "b/4-issue/native" in text
        assert "IPC 0.500" in text
        assert "10.00%" in text
