"""Tests for the decompression-engine timing model.

The key fixture reconstructs the paper's Figure 2 worked example and
checks the engine reproduces its cycle counts exactly.
"""

import pytest

from repro.codepack.compressor import BlockInfo, CodePackImage, compress_words
from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME
from repro.codepack.dictionary import Dictionary
from repro.codepack.stats import CompositionStats
from repro.sim.codepack_engine import CodePackEngine, IndexCache
from repro.sim.config import CodePackConfig, IndexCacheConfig, MemoryConfig


def figure2_image():
    """One 16-instruction block arriving 2,3,3,3,3,2 per 64-bit beat."""
    end_bits = []
    for beat, count in enumerate((2, 3, 3, 3, 3, 2)):
        for i in range(count):
            end_bits.append(beat * 64 + (64 * (i + 1)) // count)
    block = BlockInfo(index=0, byte_offset=0, byte_length=48, is_raw=False,
                      n_instructions=16, inst_end_bits=tuple(end_bits))
    return CodePackImage(
        name="fig2", text_base=0, n_instructions=16,
        high_dict=Dictionary(HIGH_SCHEME, []),
        low_dict=Dictionary(LOW_SCHEME, []),
        index_entries=[], code_bytes=b"\x00" * 48, blocks=[block],
        stats=CompositionStats(), original_bytes=64)


def make_engine(config=None, image=None, memory=None):
    return CodePackEngine(image or figure2_image(),
                          memory or MemoryConfig(),
                          config or CodePackConfig(), line_bytes=32)


class TestFigure2:
    """The paper's worked example, cycle for cycle."""

    def test_baseline_critical_at_25(self):
        engine = make_engine(CodePackConfig())
        fill = engine.miss(16, now=0)  # fifth instruction
        assert fill.critical_ready == 25

    def test_optimized_critical_at_14(self):
        engine = make_engine(CodePackConfig(decode_rate=2,
                                            perfect_index=True))
        fill = engine.miss(16, now=0)
        assert fill.critical_ready == 14

    def test_index_hit_alone_saves_ten_cycles(self):
        engine = make_engine(CodePackConfig(perfect_index=True))
        fill = engine.miss(16, now=0)
        assert fill.critical_ready == 15  # 25 minus the index fetch

    def test_serial_decode_one_per_cycle(self):
        engine = make_engine(CodePackConfig(perfect_index=True))
        fill = engine.miss(0, now=0)
        # First beat arrives t=10 carrying 2 instructions: decoded at
        # 11, 12; next beat at 12 carries 3 more: 13, 14, 15...
        assert fill.word_times[:4] == [11, 12, 13, 14]

    def test_whole_block_always_decompressed(self):
        engine = make_engine(CodePackConfig())
        engine.miss(0, now=0)
        assert engine._buffered_block == 0
        assert len(engine._buffered_times) == 16


class TestOutputBuffer:
    def test_adjacent_line_served_from_buffer(self):
        engine = make_engine(CodePackConfig())
        first = engine.miss(0, now=0)
        # The second line of the block (instructions 8..15) is already
        # decompressed; a miss shortly after costs no memory access.
        second = engine.miss(32, now=first.fill_done)
        assert engine.stats.buffer_hits == 1
        assert engine.stats.blocks_fetched == 1
        assert second.critical_ready <= first.fill_done + 16

    def test_buffer_hit_after_decompression_is_one_cycle(self):
        engine = make_engine(CodePackConfig())
        engine.miss(0, now=0)
        late = engine.miss(32, now=1000)
        assert late.critical_ready == 1001

    def test_buffer_disabled(self):
        engine = make_engine(CodePackConfig(output_buffer=False))
        engine.miss(0, now=0)
        engine.miss(32, now=100)
        assert engine.stats.buffer_hits == 0
        assert engine.stats.blocks_fetched == 2

    def test_buffer_replaced_by_new_block(self):
        words = [0x24210001] * 48
        image = compress_words(words, text_base=0)
        engine = CodePackEngine(image, MemoryConfig(), CodePackConfig(),
                                line_bytes=32)
        engine.miss(0, now=0)  # block 0
        engine.miss(64 * 1, now=100)  # block 1 replaces the buffer
        engine.miss(32, now=200)  # block 0 again: not a buffer hit
        assert engine.stats.buffer_hits == 0
        assert engine.stats.blocks_fetched == 3


class TestIndexPath:
    def test_last_index_buffer(self):
        words = [0x24210001] * 64  # two groups
        image = compress_words(words, text_base=0)
        engine = CodePackEngine(image, MemoryConfig(),
                                CodePackConfig(output_buffer=False),
                                line_bytes=32)
        engine.miss(0, now=0)
        engine.miss(32, now=100)  # same group: buffered index
        assert engine.stats.index_fetches == 1
        engine.miss(128, now=200)  # next group
        assert engine.stats.index_fetches == 2

    def test_index_fetch_cost_is_one_access(self):
        engine = make_engine(CodePackConfig())
        with_index = engine.miss(0, now=0).critical_ready
        perfect = make_engine(CodePackConfig(perfect_index=True)) \
            .miss(0, now=0).critical_ready
        assert with_index - perfect == MemoryConfig().first_latency

    def test_index_fetch_on_narrow_bus_costs_two_beats(self):
        memory = MemoryConfig(bus_bits=16)
        baseline = make_engine(CodePackConfig(), memory=memory)
        perfect = make_engine(CodePackConfig(perfect_index=True),
                              memory=memory)
        delta = baseline.miss(0, 0).critical_ready \
            - perfect.miss(0, 0).critical_ready
        assert delta == memory.first_latency + memory.rate


class TestIndexCache:
    def test_hit_and_miss_counting(self):
        cache = IndexCache(IndexCacheConfig(lines=2, entries_per_line=1))
        assert not cache.access(0)
        assert cache.access(0)
        assert not cache.access(1)
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2

    def test_line_groups_share_entry(self):
        cache = IndexCache(IndexCacheConfig(lines=1, entries_per_line=4))
        cache.access(0)
        assert cache.access(3)  # same 4-entry line
        assert not cache.access(4)

    def test_lru_eviction(self):
        cache = IndexCache(IndexCacheConfig(lines=2, entries_per_line=1))
        cache.access(0)
        cache.access(1)
        cache.access(0)  # refresh 0
        cache.access(2)  # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_empty_stats_miss_rate(self):
        cache = IndexCache(IndexCacheConfig())
        assert cache.stats.miss_rate == 0.0

    def test_engine_uses_index_cache(self):
        words = [0x24210001] * 128
        image = compress_words(words, text_base=0)
        config = CodePackConfig(
            index_cache=IndexCacheConfig(lines=4, entries_per_line=1),
            output_buffer=False)
        engine = CodePackEngine(image, MemoryConfig(), config,
                                line_bytes=32)
        engine.miss(0, now=0)
        engine.miss(0, now=100)
        assert engine.stats.index_cache.accesses == 2
        assert engine.stats.index_cache.misses == 1


class TestDecodeRates:
    @pytest.mark.parametrize("rate", [1, 2, 4, 16])
    def test_higher_rate_never_slower(self, rate):
        base = make_engine(CodePackConfig(perfect_index=True))
        fast = make_engine(CodePackConfig(perfect_index=True,
                                          decode_rate=rate))
        slow_fill = base.miss(0, 0)
        fast_fill = fast.miss(0, 0)
        assert fast_fill.fill_done <= slow_fill.fill_done
        assert all(f <= s for f, s in zip(fast_fill.word_times,
                                          slow_fill.word_times))

    def test_rate16_bound_by_arrival(self):
        engine = make_engine(CodePackConfig(perfect_index=True,
                                            decode_rate=16))
        fill = engine.miss(0, 0)
        # Even infinitely wide decode waits for the bits: the requested
        # line's words are bound by their beat arrivals (last at t=14),
        # and the block's final instruction by the last beat at t=20.
        assert fill.word_times[0] == 11
        assert max(fill.word_times) == 15
        assert max(engine._buffered_times) == 21


class TestPartialBlocks:
    def test_final_partial_block(self):
        words = [0x24210001] * 20  # block 1 has 4 instructions
        image = compress_words(words, text_base=0)
        engine = CodePackEngine(image, MemoryConfig(), CodePackConfig(),
                                line_bytes=32)
        fill = engine.miss(16 * 4, now=0)
        assert fill.critical_ready > 0
        assert len(fill.word_times) == 8  # clamped to the line


class TestFunctionalDecode:
    """The engine's decode_block hook: timing model and functional
    decoder must agree on what the hardware hands the I-cache."""

    def test_decode_block_matches_program(self):
        from tests.conftest import random_word_program

        program = random_word_program(555, size=100)
        image = compress_words(program.text, name=program.name)
        engine = CodePackEngine(image, MemoryConfig(), CodePackConfig(),
                                line_bytes=32)
        decoded = []
        for block_index in range(image.n_blocks):
            decoded.extend(engine.decode_block(block_index))
        assert decoded == list(program.text)

    def test_dictword_engine_decodes_through_its_own_tables(self):
        from repro.schemes.dictword import DictWordEngine, compress_dictword
        from tests.conftest import random_word_program

        program = random_word_program(556, size=100)
        image = compress_dictword(program)
        engine = DictWordEngine(image, MemoryConfig(), CodePackConfig(),
                                line_bytes=32)
        decoded = []
        for block_index in range(image.n_blocks):
            decoded.extend(engine.decode_block(block_index))
        assert decoded == list(program.text)
