"""Architectural semantics tests for the functional core.

Each snippet runs to a halt and the test checks registers, memory or
the syscall output stream.  Register conventions in the snippets: $v0
is syscall code, $a0 the syscall argument.
"""

import pytest

from repro.isa.assembler import assemble
from repro.sim.cpu import (
    REG_HI,
    REG_LO,
    FunctionalCore,
    SimulationError,
    predecode,
)


def run(body, max_steps=100_000):
    """Assemble *body* followed by an exit syscall and run it."""
    source = ".text 0x400000\n" + body + """
        addiu $v0, $zero, 10
        syscall
    """
    core = FunctionalCore(assemble(source))
    core.run(max_instructions=max_steps)
    return core


def reg(core, name):
    from repro.isa.registers import reg_num
    return core.regs[reg_num(name)]


class TestAluOps:
    @pytest.mark.parametrize("body,register,expected", [
        ("li $t0, 7\nli $t1, 5\naddu $t2, $t0, $t1", "$t2", 12),
        ("li $t0, 7\nli $t1, 5\nsubu $t2, $t0, $t1", "$t2", 2),
        ("li $t0, 5\nli $t1, 7\nsubu $t2, $t0, $t1", "$t2", 0xFFFFFFFE),
        ("li $t0, 0xF0\nli $t1, 0x0F\nand $t2, $t0, $t1", "$t2", 0),
        ("li $t0, 0xF0\nli $t1, 0x0F\nor $t2, $t0, $t1", "$t2", 0xFF),
        ("li $t0, 0xFF\nli $t1, 0x0F\nxor $t2, $t0, $t1", "$t2", 0xF0),
        ("li $t0, 0\nli $t1, 0\nnor $t2, $t0, $t1", "$t2", 0xFFFFFFFF),
        ("addiu $t0, $zero, -1", "$t0", 0xFFFFFFFF),
        ("addi $t0, $zero, 100", "$t0", 100),
        ("ori $t0, $zero, 0xFFFF", "$t0", 0xFFFF),
        ("andi $t0, $zero, 0xFFFF", "$t0", 0),
        ("li $t0, 0xFF00\nxori $t1, $t0, 0x00FF", "$t1", 0xFFFF),
        ("lui $t0, 0x8000", "$t0", 0x80000000),
    ])
    def test_result(self, body, register, expected):
        assert reg(run(body), register) == expected

    def test_addu_wraps_32_bits(self):
        core = run("li $t0, 0xFFFFFFFF\nli $t1, 2\naddu $t2, $t0, $t1")
        assert reg(core, "$t2") == 1

    def test_writes_to_zero_ignored(self):
        core = run("li $t0, 7\naddu $zero, $t0, $t0")
        assert core.regs[0] == 0


class TestComparisons:
    @pytest.mark.parametrize("body,expected", [
        ("li $t0, 1\nli $t1, 2\nslt $t2, $t0, $t1", 1),
        ("li $t0, 2\nli $t1, 1\nslt $t2, $t0, $t1", 0),
        ("li $t0, -1\nli $t1, 1\nslt $t2, $t0, $t1", 1),  # signed
        ("li $t0, -1\nli $t1, 1\nsltu $t2, $t0, $t1", 0),  # unsigned
        ("li $t0, -5\nslti $t2, $t0, -4", 1),
        ("li $t0, 3\nslti $t2, $t0, -4", 0),
        ("li $t0, 3\nsltiu $t2, $t0, 10", 1),
        ("li $t0, -1\nsltiu $t2, $t0, 10", 0),
    ])
    def test_result(self, body, expected):
        assert reg(run(body), "$t2") == expected


class TestShifts:
    @pytest.mark.parametrize("body,expected", [
        ("li $t0, 1\nsll $t1, $t0, 4", 16),
        ("li $t0, 0x80000000\nsrl $t1, $t0, 31", 1),
        ("li $t0, 0x80000000\nsra $t1, $t0, 31", 0xFFFFFFFF),
        ("li $t0, 0x7FFFFFFF\nsra $t1, $t0, 1", 0x3FFFFFFF),
        ("li $t0, 1\nli $t2, 8\nsllv $t1, $t0, $t2", 256),
        ("li $t0, 256\nli $t2, 8\nsrlv $t1, $t0, $t2", 1),
        ("li $t0, -256\nli $t2, 4\nsrav $t1, $t0, $t2", 0xFFFFFFF0),
        # Variable shifts use only the low 5 bits of rs.
        ("li $t0, 1\nli $t2, 33\nsllv $t1, $t0, $t2", 2),
    ])
    def test_result(self, body, expected):
        assert reg(run(body), "$t1") == expected


class TestMultDiv:
    def test_mult_signed(self):
        core = run("li $t0, -3\nli $t1, 4\nmult $t0, $t1\n"
                   "mflo $t2\nmfhi $t3")
        assert reg(core, "$t2") == 0xFFFFFFF4  # -12
        assert reg(core, "$t3") == 0xFFFFFFFF

    def test_multu_large(self):
        core = run("li $t0, 0xFFFFFFFF\nli $t1, 2\nmultu $t0, $t1\n"
                   "mflo $t2\nmfhi $t3")
        assert reg(core, "$t2") == 0xFFFFFFFE
        assert reg(core, "$t3") == 1

    def test_div_truncates_toward_zero(self):
        core = run("li $t0, -7\nli $t1, 2\ndiv $t0, $t1\n"
                   "mflo $t2\nmfhi $t3")
        assert reg(core, "$t2") == 0xFFFFFFFD  # -3, not -4
        assert reg(core, "$t3") == 0xFFFFFFFF  # remainder -1

    def test_divu(self):
        core = run("li $t0, 7\nli $t1, 2\ndivu $t0, $t1\n"
                   "mflo $t2\nmfhi $t3")
        assert reg(core, "$t2") == 3
        assert reg(core, "$t3") == 1

    def test_div_by_zero_does_not_crash(self):
        core = run("li $t0, 7\nli $t1, 0\ndiv $t0, $t1\nmflo $t2")
        assert reg(core, "$t2") == 0xFFFFFFFF

    def test_hi_lo_virtual_registers(self):
        core = run("li $t0, 6\nli $t1, 7\nmult $t0, $t1")
        assert core.regs[REG_LO] == 42
        assert core.regs[REG_HI] == 0


class TestMemory:
    def test_word_store_load(self):
        core = run("""
            li $t0, 0x10000000
            li $t1, 0xdeadbeef
            sw $t1, 0($t0)
            lw $t2, 0($t0)
        """)
        assert reg(core, "$t2") == 0xDEADBEEF

    def test_byte_granularity_big_endian(self):
        core = run("""
            li $t0, 0x10000000
            li $t1, 0x11223344
            sw $t1, 0($t0)
            lbu $t2, 0($t0)
            lbu $t3, 3($t0)
        """)
        assert reg(core, "$t2") == 0x11
        assert reg(core, "$t3") == 0x44

    def test_lb_sign_extends(self):
        core = run("""
            li $t0, 0x10000000
            li $t1, 0x80
            sb $t1, 0($t0)
            lb $t2, 0($t0)
            lbu $t3, 0($t0)
        """)
        assert reg(core, "$t2") == 0xFFFFFF80
        assert reg(core, "$t3") == 0x80

    def test_halfword_ops(self):
        core = run("""
            li $t0, 0x10000000
            li $t1, 0x8001
            sh $t1, 2($t0)
            lh $t2, 2($t0)
            lhu $t3, 2($t0)
        """)
        assert reg(core, "$t2") == 0xFFFF8001
        assert reg(core, "$t3") == 0x8001

    def test_sb_preserves_other_bytes(self):
        core = run("""
            li $t0, 0x10000000
            li $t1, 0x11223344
            sw $t1, 0($t0)
            li $t2, 0xAA
            sb $t2, 1($t0)
            lw $t3, 0($t0)
        """)
        assert reg(core, "$t3") == 0x11AA3344

    def test_negative_offset(self):
        core = run("""
            li $t0, 0x10000010
            li $t1, 77
            sw $t1, -16($t0)
            lw $t2, -16($t0)
        """)
        assert reg(core, "$t2") == 77

    def test_misaligned_word_faults(self):
        with pytest.raises(SimulationError):
            run("li $t0, 0x10000001\nlw $t1, 0($t0)")

    def test_misaligned_half_faults(self):
        with pytest.raises(SimulationError):
            run("li $t0, 0x10000001\nlh $t1, 0($t0)")

    def test_uninitialised_memory_reads_zero(self):
        core = run("li $t0, 0x10005000\nlw $t1, 0($t0)")
        assert reg(core, "$t1") == 0

    def test_data_segment_initialised(self):
        source = """
        .data 0x10000000
        val: .word 1234
        .text 0x400000
        la $t0, val
        lw $t1, 0($t0)
        addiu $v0, $zero, 10
        syscall
        """
        core = FunctionalCore(assemble(source))
        core.run()
        assert reg(core, "$t1") == 1234


class TestControlFlow:
    def test_loop_count(self):
        core = run("""
            li $t0, 0
            li $t1, 10
        loop:
            addiu $t0, $t0, 1
            bne $t0, $t1, loop
        """)
        assert reg(core, "$t0") == 10

    @pytest.mark.parametrize("op,value,taken", [
        ("blez", -1, True), ("blez", 0, True), ("blez", 1, False),
        ("bgtz", -1, False), ("bgtz", 0, False), ("bgtz", 1, True),
        ("bltz", -1, True), ("bltz", 0, False),
        ("bgez", -1, False), ("bgez", 0, True),
    ])
    def test_single_operand_branches(self, op, value, taken):
        core = run("""
            li $t0, %d
            li $t2, 0
            %s $t0, target
            li $t2, 1
        target:
        """ % (value, op))
        assert reg(core, "$t2") == (0 if taken else 1)

    def test_jal_links(self):
        core = run("""
            jal func
            j done
        func:
            li $t0, 55
            jr $ra
        done:
        """)
        assert reg(core, "$t0") == 55

    def test_jalr_links_and_jumps(self):
        core = run("""
            la $t9, func
            jalr $ra, $t9
            j done
        func:
            li $t0, 66
            jr $ra
        done:
        """)
        assert reg(core, "$t0") == 66

    def test_pc_escape_faults(self):
        source = ".text 0x400000\naddiu $t0, $zero, 1"  # falls off the end
        core = FunctionalCore(assemble(source))
        with pytest.raises(SimulationError):
            core.run()


class TestSyscalls:
    def test_exit_code(self):
        source = """
        .text 0x400000
        addiu $a0, $zero, 3
        addiu $v0, $zero, 10
        syscall
        """
        core = FunctionalCore(assemble(source))
        core.run()
        assert core.halted and core.exit_code == 3

    def test_print_int_negative(self):
        core = run("li $a0, -5\naddiu $v0, $zero, 1\nsyscall")
        assert core.output == ["-5"]

    def test_print_char(self):
        core = run("li $a0, 65\naddiu $v0, $zero, 11\nsyscall")
        assert core.output == ["A"]

    def test_unknown_syscall_faults(self):
        with pytest.raises(SimulationError):
            run("addiu $v0, $zero, 99\nsyscall")

    def test_instruction_budget(self):
        source = ".text 0x400000\nself: j self"
        core = FunctionalCore(assemble(source))
        with pytest.raises(SimulationError):
            core.run(max_instructions=100)


class TestPredecode:
    def test_predecode_length(self):
        prog = assemble(".text 0x400000\nsyscall\nsyscall")
        assert len(predecode(prog)) == 2

    def test_undecodable_word_rejected(self):
        from repro.isa.program import Program
        prog = Program(text=[0xFC000000])  # opcode 0x3F: unassigned
        with pytest.raises(SimulationError):
            predecode(prog)

    def test_static_srcs_exclude_zero_register(self):
        prog = assemble(".text 0x400000\naddu $t0, $zero, $zero")
        (st,) = predecode(prog)
        assert st.srcs == ()

    def test_shared_static_across_cores(self):
        prog = assemble("""
        .text 0x400000
        li $t0, 9
        addiu $v0, $zero, 10
        syscall
        """)
        static = predecode(prog)
        a = FunctionalCore(prog, static=static)
        b = FunctionalCore(prog, static=static)
        a.run()
        b.run()
        assert reg(a, "$t0") == reg(b, "$t0") == 9
