"""Tests for the set-associative LRU cache."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.cache import Cache
from repro.sim.config import CacheConfig


def make_cache(size=256, line=32, assoc=2):
    return Cache(CacheConfig(size, line, assoc))


class TestBasics:
    def test_first_access_misses(self):
        cache = make_cache()
        assert not cache.access(0)
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same line
        assert not cache.access(32)  # next line

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5
        assert cache.stats.hits == 1

    def test_probe_is_silent(self):
        cache = make_cache()
        cache.access(0)
        before = cache.stats.accesses
        assert cache.probe(0)
        assert not cache.probe(4096)
        assert cache.stats.accesses == before

    def test_invalidate_all(self):
        cache = make_cache()
        cache.access(0)
        cache.invalidate_all()
        assert not cache.access(0)

    def test_empty_stats(self):
        assert make_cache().stats.miss_rate == 0.0


class TestLRU:
    def test_lru_eviction_order(self):
        # 2-way: sets = 256/(32*2) = 4; lines mapping to set 0 are
        # line numbers 0, 4, 8, ... i.e. addresses 0, 128, 256.
        cache = make_cache()
        cache.access(0)
        cache.access(128)
        cache.access(256)  # evicts line of addr 0
        assert not cache.access(0)

    def test_touch_refreshes_lru(self):
        cache = make_cache()
        cache.access(0)
        cache.access(128)
        cache.access(0)  # refresh: 128 becomes LRU
        cache.access(256)  # evicts 128
        assert cache.access(0)
        assert not cache.access(128)

    def test_direct_mapped(self):
        cache = make_cache(size=64, line=32, assoc=1)
        cache.access(0)
        cache.access(64)  # same set (2 sets), evicts
        assert not cache.access(0)

    def test_fully_associative(self):
        cache = make_cache(size=128, line=32, assoc=4)
        for addr in (0, 32, 64, 96):
            cache.access(addr)
        for addr in (0, 32, 64, 96):
            assert cache.access(addr)


class TestGeometry:
    def test_n_sets(self):
        assert CacheConfig(16 * 1024, 32, 2).n_sets == 256

    def test_line_addr(self):
        cache = make_cache()
        assert cache.line_addr(0) == 0
        assert cache.line_addr(33) == 1


@given(st.lists(st.integers(0, 4095), min_size=1, max_size=300))
def test_occupancy_never_exceeds_assoc(addresses):
    """No set ever holds more than `assoc` lines, and re-access of the
    most recent address always hits."""
    cache = make_cache(size=256, line=32, assoc=2)
    for addr in addresses:
        cache.access(addr)
        assert cache.access(addr)  # immediate re-access must hit
    for cache_set in cache._sets:
        assert len(cache_set) <= cache.assoc
    assert cache.stats.misses <= cache.stats.accesses
