"""Tests for the branch predictors."""

import pytest

from repro.sim.branch import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    make_predictor,
)
from repro.sim.config import BranchPredictorConfig


def train(predictor, pc, outcomes):
    correct = 0
    for taken in outcomes:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(64)
        correct = train(p, 0x400000, [True] * 20)
        assert correct >= 18  # warms up within a couple of updates

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(64)
        train(p, 0x400000, [False] * 4)
        assert p.predict(0x400000) is False

    def test_counters_saturate(self):
        p = BimodalPredictor(64)
        train(p, 0, [True] * 100)
        # One not-taken cannot flip a saturated counter.
        p.update(0, False)
        assert p.predict(0) is True

    def test_aliasing_by_table_size(self):
        p = BimodalPredictor(64)
        train(p, 0, [True] * 4)
        # pc 64*4 bytes later aliases to the same counter.
        assert p.predict(64 * 4) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(100)


class TestGShare:
    def test_learns_alternating_pattern(self):
        # Bimodal cannot learn strict alternation; gshare's history can.
        p = GSharePredictor(history_bits=8)
        pattern = [bool(i % 2) for i in range(400)]
        correct = train(p, 0x400000, pattern)
        assert correct > 350

    def test_history_advances(self):
        p = GSharePredictor(history_bits=4)
        p.update(0, True)
        assert p._history == 1
        p.update(0, False)
        assert p._history == 2


class TestHybrid:
    def test_beats_components_on_mixed_workload(self):
        hybrid = HybridPredictor(meta_entries=64)
        correct = train(hybrid, 0x400000, [True] * 50)
        assert correct >= 45

    def test_meta_picks_gshare_for_patterns(self):
        hybrid = HybridPredictor(meta_entries=64, history_bits=8)
        pattern = [bool(i % 2) for i in range(600)]
        correct = train(hybrid, 0x400000, pattern)
        assert correct > 400

    def test_meta_power_of_two_required(self):
        with pytest.raises(ValueError):
            HybridPredictor(meta_entries=100)


class TestFactory:
    def test_make_each_kind(self):
        assert isinstance(make_predictor(BranchPredictorConfig("bimode")),
                          BimodalPredictor)
        assert isinstance(make_predictor(BranchPredictorConfig("gshare")),
                          GSharePredictor)
        assert isinstance(make_predictor(BranchPredictorConfig("hybrid")),
                          HybridPredictor)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_predictor(BranchPredictorConfig("neural"))
