"""Tests for the main-memory timing model."""

from repro.sim.config import MemoryConfig


class TestBurstArrivals:
    def test_single_beat(self):
        mem = MemoryConfig(bus_bits=64, first_latency=10, rate=2)
        assert mem.burst_arrivals(8, start=0) == [10]

    def test_paper_native_line_fill(self):
        # 32-byte line over a 64-bit bus: 4 accesses at t=10,12,14,16
        # (paper Figure 2-a).
        mem = MemoryConfig()
        assert mem.burst_arrivals(32, start=0) == [10, 12, 14, 16]

    def test_misalignment_adds_beats(self):
        mem = MemoryConfig()
        # 8 bytes starting 4 bytes into a beat spans two beats.
        assert mem.burst_arrivals(8, start=0, align_offset=4) == [10, 12]

    def test_narrow_bus(self):
        mem = MemoryConfig(bus_bits=16)
        # A 4-byte read needs two 2-byte beats.
        assert mem.burst_arrivals(4, start=0) == [10, 12]

    def test_wide_bus(self):
        mem = MemoryConfig(bus_bits=128)
        assert mem.burst_arrivals(32, start=0) == [10, 12]

    def test_start_offsets_all_beats(self):
        mem = MemoryConfig()
        assert mem.burst_arrivals(16, start=100) == [110, 112]

    def test_access_done_is_last_beat(self):
        mem = MemoryConfig()
        assert mem.access_done(32, 0) == 16
        assert mem.access_done(4, 0) == 10


class TestGeometry:
    def test_bus_bytes(self):
        assert MemoryConfig(bus_bits=64).bus_bytes == 8
        assert MemoryConfig(bus_bits=16).bus_bytes == 2

    def test_latency_scaling(self):
        mem = MemoryConfig(first_latency=40, rate=8)
        assert mem.burst_arrivals(16, 0) == [40, 48]
