"""Differential suite: the batched in-order model vs the reference.

:mod:`repro.sim.blockexec` promises cycle-exactness against
:func:`repro.sim.inorder.run_inorder` driving ``FunctionalCore.step``.
These tests hold it to that across the benchmark suite, the CodePack
and native miss paths, every ablation knob of the in-order machine,
instruction-budget truncation, miss traces and architectural faults.
"""

import dataclasses

import pytest

from repro.eval.experiments import CP_BASELINE, CP_OPTIMIZED
from repro.isa.assembler import assemble
from repro.sim.blockexec import (
    BlockTable,
    get_block_table,
    run_inorder_blocks,
)
from repro.sim.config import ARCH_1_ISSUE, ARCH_4_ISSUE
from repro.sim.cpu import (
    EX_TERMINATORS,
    FunctionalCore,
    SimulationError,
    predecode,
)
from repro.sim.machine import prepare, simulate
from repro.sim.trace import MissTrace
from repro.workloads.suite import build_benchmark

SCALE = 0.02


@pytest.fixture(scope="module")
def suite():
    """Programs + predecoded text for a few contrasting benchmarks."""
    out = {}
    for name in ("cc1", "pegwit", "mpeg2enc"):
        program = build_benchmark(name, SCALE)
        out[name] = (program, prepare(program))
    return out


def result_state(result):
    """Everything two equivalent runs must agree on."""
    d = result.to_dict()
    d.pop("mode")  # informational label, not simulated state
    return d


def both(program, static, **kwargs):
    ref = simulate(program, ARCH_1_ISSUE, static=static, batched=False,
                   **kwargs)
    fast = simulate(program, ARCH_1_ISSUE, static=static, batched=True,
                    **kwargs)
    return ref, fast


class TestDifferentialSuite:
    @pytest.mark.parametrize("bench", ("cc1", "pegwit", "mpeg2enc"))
    @pytest.mark.parametrize("codepack", (None, CP_BASELINE, CP_OPTIMIZED),
                             ids=("native", "codepack", "optimized"))
    def test_cycle_exact(self, suite, bench, codepack):
        program, static = suite[bench]
        ref, fast = both(program, static, codepack=codepack)
        assert result_state(ref) == result_state(fast)

    def test_shared_memory_bus(self, suite):
        program, static = suite["cc1"]
        arch = ARCH_1_ISSUE.with_shared_bus()
        ref = simulate(program, arch, static=static, codepack=CP_BASELINE,
                       batched=False)
        fast = simulate(program, arch, static=static, codepack=CP_BASELINE,
                        batched=True)
        assert result_state(ref) == result_state(fast)

    def test_no_critical_word_first(self, suite):
        program, static = suite["cc1"]
        ref, fast = both(program, static, critical_word_first=False)
        assert result_state(ref) == result_state(fast)

    def test_native_prefetch(self, suite):
        program, static = suite["cc1"]
        ref, fast = both(program, static, native_prefetch=True)
        assert result_state(ref) == result_state(fast)

    @pytest.mark.parametrize("cap", (1, 7, 997))
    def test_instruction_budget_truncation(self, suite, cap):
        program, static = suite["cc1"]
        ref, fast = both(program, static, max_instructions=cap)
        assert ref.instructions == cap
        assert result_state(ref) == result_state(fast)
        assert ref.extra["truncated"] and fast.extra["truncated"]

    def test_miss_trace_identical(self, suite):
        program, static = suite["cc1"]
        ref_trace, fast_trace = MissTrace(), MissTrace()
        simulate(program, ARCH_1_ISSUE, static=static, codepack=CP_BASELINE,
                 batched=False, trace=ref_trace)
        simulate(program, ARCH_1_ISSUE, static=static, codepack=CP_BASELINE,
                 batched=True, trace=fast_trace)
        assert ref_trace.count == fast_trace.count
        assert ([dataclasses.astuple(e) for e in ref_trace.events]
                == [dataclasses.astuple(e) for e in fast_trace.events])

    def test_default_selects_batched_for_inorder(self, suite):
        # batched=None (the default) must route in-order SS32 runs
        # through the block model and agree with an explicit True.
        program, static = suite["pegwit"]
        auto = simulate(program, ARCH_1_ISSUE, static=static)
        forced = simulate(program, ARCH_1_ISSUE, static=static, batched=True)
        assert result_state(auto) == result_state(forced)


class TestFaultExactness:
    def fault_pair(self, source, **kwargs):
        program = assemble(source)
        static = prepare(program)
        states = []
        for batched in (False, True):
            with pytest.raises(SimulationError) as err:
                simulate(program, ARCH_1_ISSUE, static=static,
                         batched=batched, **kwargs)
            states.append(str(err.value))
        return states

    def test_pc_escape_fault_matches(self):
        ref, fast = self.fault_pair(
            ".text 0x400000\naddiu $t0, $zero, 1")  # falls off the end
        assert ref == fast

    def test_misaligned_load_fault_matches(self):
        ref, fast = self.fault_pair(
            ".text 0x400000\nli $t0, 0x10000001\nlw $t1, 0($t0)")
        assert ref == fast

    def test_unknown_syscall_fault_matches(self):
        ref, fast = self.fault_pair(
            ".text 0x400000\naddiu $v0, $zero, 99\nsyscall")
        assert ref == fast

    def test_fault_core_state_matches(self):
        # The faulting pc and retired-instruction count must match the
        # reference model exactly, mid-block.
        source = ".text 0x400000\nli $t0, 0x10000001\nlw $t1, 0($t0)"
        program = assemble(source)
        static = prepare(program)
        cores = []
        for batched in (False, True):
            from repro.sim.cache import Cache
            from repro.sim.branch import make_predictor
            from repro.sim.fetch import FetchUnit, NativeMissPath
            from repro.sim.inorder import run_inorder
            from repro.sim.memory import MemoryChannel

            arch = ARCH_1_ISSUE
            core = FunctionalCore(program, static=static)
            channel = MemoryChannel(arch.memory)
            fetch_unit = FetchUnit(
                Cache(arch.icache),
                NativeMissPath(channel, arch.icache.line_bytes))
            pipeline = run_inorder_blocks if batched else run_inorder
            with pytest.raises(SimulationError):
                pipeline(core, fetch_unit, Cache(arch.dcache), channel,
                         make_predictor(arch.predictor), arch, 1000)
            cores.append((core.pc, core.instret))
        assert cores[0] == cores[1]


class TestModelSelection:
    def test_batched_true_rejects_ooo(self, suite):
        program, static = suite["pegwit"]
        with pytest.raises(ValueError):
            simulate(program, ARCH_4_ISSUE, static=static, batched=True)

    def test_batched_true_rejects_pc_index(self, suite):
        program, static = suite["pegwit"]
        pc_index = {st.addr: i for i, st in enumerate(static)}
        with pytest.raises(ValueError):
            simulate(program, ARCH_1_ISSUE, batched=True, pc_index=pc_index)

    def test_run_inorder_blocks_rejects_pc_index(self, suite):
        program, static = suite["pegwit"]
        pc_index = {st.addr: i for i, st in enumerate(static)}
        core = FunctionalCore(program, pc_index=pc_index)
        with pytest.raises(ValueError):
            run_inorder_blocks(core, None, None, None, None, ARCH_1_ISSUE, 1)

    def test_ooo_archs_still_run(self, suite):
        # batched=None on an OOO machine silently uses the OOO model.
        program, static = suite["pegwit"]
        result = simulate(program, ARCH_4_ISSUE, static=static)
        assert result.instructions > 0
        assert not result.extra["truncated"]


class TestBlockTable:
    def test_cached_on_static_text(self, suite):
        _, static = suite["pegwit"]
        assert get_block_table(static) is get_block_table(static)

    def test_plain_list_not_cached_but_works(self, suite):
        _, static = suite["pegwit"]
        plain = list(static)
        a = get_block_table(plain)
        b = get_block_table(plain)
        assert a is not b
        assert a.next_term == b.next_term

    def test_next_term_marks_first_terminator(self):
        program = assemble("""
        .text 0x400000
            addiu $t0, $zero, 1
            addiu $t1, $zero, 2
            beq $t0, $t1, skip
            addiu $t2, $zero, 3
        skip:
            addiu $v0, $zero, 10
            syscall
        """)
        table = BlockTable(predecode(program))
        # beq at index 2, syscall at index 5 terminate their blocks.
        assert table.next_term == [2, 2, 2, 5, 5, 5]
        for i, term in enumerate(table.next_term):
            assert term >= i
            last = table.ops[term][0]
            assert last in EX_TERMINATORS or term == len(table.ops) - 1
