"""Tests for the configuration dataclasses."""

import pytest

from repro.sim.config import (
    ARCH_1_ISSUE,
    ARCH_4_ISSUE,
    ARCH_8_ISSUE,
    BASELINES,
    CacheConfig,
    CodePackConfig,
    IndexCacheConfig,
    KB,
    MemoryConfig,
)


class TestBaselinesMatchPaperTable2:
    def test_issue_widths(self):
        assert ARCH_1_ISSUE.issue_width == 1 and ARCH_1_ISSUE.in_order
        assert ARCH_4_ISSUE.issue_width == 4 and not ARCH_4_ISSUE.in_order
        assert ARCH_8_ISSUE.issue_width == 8 and not ARCH_8_ISSUE.in_order

    def test_windows(self):
        assert (ARCH_1_ISSUE.ruu_size, ARCH_4_ISSUE.ruu_size,
                ARCH_8_ISSUE.ruu_size) == (4, 16, 32)
        assert (ARCH_1_ISSUE.lsq_size, ARCH_4_ISSUE.lsq_size,
                ARCH_8_ISSUE.lsq_size) == (4, 8, 16)

    def test_function_units(self):
        assert (ARCH_4_ISSUE.n_alu, ARCH_4_ISSUE.n_mult,
                ARCH_4_ISSUE.n_memport) == (4, 1, 2)
        assert ARCH_8_ISSUE.n_alu == 8

    def test_predictors(self):
        assert ARCH_1_ISSUE.predictor.kind == "bimode"
        assert ARCH_4_ISSUE.predictor.kind == "gshare"
        assert ARCH_8_ISSUE.predictor.kind == "hybrid"

    def test_cache_scaling(self):
        assert ARCH_1_ISSUE.icache.size_bytes == 8 * KB
        assert ARCH_4_ISSUE.icache.size_bytes == 16 * KB
        assert ARCH_8_ISSUE.icache.size_bytes == 32 * KB
        for arch in BASELINES.values():
            assert arch.icache.line_bytes == 32
            assert arch.dcache.line_bytes == 16
            assert arch.icache.assoc == 2

    def test_memory_defaults(self):
        for arch in BASELINES.values():
            assert arch.memory == MemoryConfig(64, 10, 2)


class TestDerivationHelpers:
    def test_with_icache_only_changes_icache(self):
        derived = ARCH_4_ISSUE.with_icache(1 * KB)
        assert derived.icache.size_bytes == 1 * KB
        assert derived.icache.line_bytes == 32
        assert derived.dcache == ARCH_4_ISSUE.dcache
        assert derived.memory == ARCH_4_ISSUE.memory
        assert derived.name != ARCH_4_ISSUE.name

    def test_with_memory_partial_overrides(self):
        derived = ARCH_4_ISSUE.with_memory(bus_bits=16)
        assert derived.memory.bus_bits == 16
        assert derived.memory.first_latency == 10
        derived = ARCH_4_ISSUE.with_memory(first_latency=80, rate=16)
        assert derived.memory.bus_bits == 64
        assert derived.memory.first_latency == 80

    def test_derived_configs_are_hashable(self):
        {ARCH_4_ISSUE.with_icache(1 * KB): 1,
         ARCH_4_ISSUE.with_memory(bus_bits=16): 2}

    def test_baselines_unchanged_by_derivation(self):
        ARCH_4_ISSUE.with_icache(1 * KB)
        assert ARCH_4_ISSUE.icache.size_bytes == 16 * KB


class TestCacheConfig:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 32, 2)

    def test_n_sets(self):
        assert CacheConfig(8 * KB, 32, 2).n_sets == 128


class TestCodePackConfig:
    def test_factories(self):
        opt = CodePackConfig.optimized()
        assert opt.decode_rate == 2
        assert opt.index_cache == IndexCacheConfig(64, 4)
        assert CodePackConfig.with_decoders(16).decode_rate == 16
        ic = CodePackConfig.with_index_cache(16, 8)
        assert ic.index_cache.total_entries == 128

    def test_defaults_are_paper_baseline(self):
        base = CodePackConfig()
        assert base.decode_rate == 1
        assert base.index_cache is None
        assert not base.perfect_index
        assert base.output_buffer

    def test_hashable_for_workbench_keys(self):
        {CodePackConfig(): 1, CodePackConfig.optimized(): 2}

    def test_index_cache_total_entries(self):
        assert IndexCacheConfig(64, 4).total_entries == 256
