"""Directional paper claims, verified in-suite at test scale.

The full-scale numbers live in EXPERIMENTS.md; these tests keep the
*shape* of each claim under regression whenever the test suite runs,
independent of the benchmark harness.  One shared Workbench keeps the
cost to a few seconds of simulation.
"""

import pytest

from repro.eval.runner import Workbench
from repro.sim.config import ARCH_4_ISSUE, CodePackConfig, KB

BASELINE = CodePackConfig()
OPTIMIZED = CodePackConfig.optimized()


@pytest.fixture(scope="module")
def wb():
    return Workbench(scale=0.06)


class TestTable5Shape:
    """Overall performance claims (Section 5.2)."""

    def test_loss_bounds_hold(self, wb):
        # Paper: loss under 18% for 4-issue on every benchmark.
        for bench in ("cc1", "go", "perl", "vortex"):
            assert wb.speedup(bench, ARCH_4_ISSUE, BASELINE) > 0.82, bench

    def test_loop_kernels_unaffected(self, wb):
        for bench in ("mpeg2enc", "pegwit"):
            speedup = wb.speedup(bench, ARCH_4_ISSUE, BASELINE)
            assert abs(speedup - 1.0) < 0.02, bench


class TestSection53Shape:
    """Decompression-latency component claims."""

    def test_index_cache_recovers_most_loss(self, wb):
        for bench in ("cc1", "perl"):
            baseline = wb.speedup(bench, ARCH_4_ISSUE, BASELINE)
            indexed = wb.speedup(bench, ARCH_4_ISSUE,
                                 CodePackConfig.with_index_cache())
            assert indexed > baseline, bench
            assert indexed > 0.97, bench

    def test_two_decoders_get_most_of_the_rate_benefit(self, wb):
        bench = "cc1"
        one = wb.speedup(bench, ARCH_4_ISSUE, BASELINE)
        two = wb.speedup(bench, ARCH_4_ISSUE,
                         CodePackConfig.with_decoders(2))
        sixteen = wb.speedup(bench, ARCH_4_ISSUE,
                             CodePackConfig.with_decoders(16))
        assert two > one
        assert sixteen - two < (two - one)

    def test_combined_beats_either_alone(self, wb):
        bench = "vortex"
        combined = wb.speedup(bench, ARCH_4_ISSUE, OPTIMIZED)
        indexed = wb.speedup(bench, ARCH_4_ISSUE,
                             CodePackConfig.with_index_cache())
        decoded = wb.speedup(bench, ARCH_4_ISSUE,
                             CodePackConfig.with_decoders(2))
        assert combined >= max(indexed, decoded) - 0.02


class TestSection54Shape:
    """Architecture-sensitivity claims (one benchmark each, for cost)."""

    def test_cache_size_convergence(self, wb):
        bench = "go"
        gaps = []
        for size_kb in (1, 16, 64):
            arch = ARCH_4_ISSUE.with_icache(size_kb * KB)
            gaps.append(abs(1 - wb.run(bench, arch, BASELINE)
                            .speedup_over(wb.run(bench, arch))))
        assert gaps[0] > gaps[1] > gaps[2] * 0.8

    def test_optimized_beats_native_on_small_caches(self, wb):
        arch = ARCH_4_ISSUE.with_icache(1 * KB)
        for bench in ("cc1", "perl"):
            native = wb.run(bench, arch)
            optimized = wb.run(bench, arch, OPTIMIZED)
            assert optimized.speedup_over(native) > 1.0, bench

    def test_bus_width_trend(self, wb):
        bench = "vortex"
        narrow = ARCH_4_ISSUE.with_memory(bus_bits=16)
        wide = ARCH_4_ISSUE.with_memory(bus_bits=128)
        narrow_gain = wb.run(bench, narrow, BASELINE) \
            .speedup_over(wb.run(bench, narrow))
        wide_gain = wb.run(bench, wide, BASELINE) \
            .speedup_over(wb.run(bench, wide))
        assert narrow_gain > 1.0 > wide_gain

    def test_latency_trend(self, wb):
        bench = "go"
        fast = ARCH_4_ISSUE.with_memory(first_latency=5, rate=1)
        slow = ARCH_4_ISSUE.with_memory(first_latency=80, rate=16)
        fast_gain = wb.run(bench, fast, OPTIMIZED) \
            .speedup_over(wb.run(bench, fast))
        slow_gain = wb.run(bench, slow, OPTIMIZED) \
            .speedup_over(wb.run(bench, slow))
        assert slow_gain > fast_gain
        assert slow_gain > 1.0
