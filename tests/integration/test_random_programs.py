"""Property-based end-to-end testing with randomly generated programs.

Hypothesis builds small random (but always-halting) SS32 programs; for
each one we check the two system-level invariants every experiment
rests on:

1. the CodePack codec is lossless on real instruction streams, and
2. execution through the decompression engine is architecturally
   identical to native execution on every pipeline model.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codepack import compress_program, decompress_program
from repro.isa.builder import AsmBuilder
from repro.isa.registers import A0, V0
from repro.sim import ARCH_1_ISSUE, ARCH_4_ISSUE, CodePackConfig, simulate

TEMPS = list(range(8, 16)) + [2, 3, 5, 6, 7]  # t0-t7, v0/v1, a1-a3

reg = st.sampled_from(TEMPS)
imm = st.integers(-0x8000, 0x7FFF)
uimm = st.integers(0, 0xFFFF)
shamt = st.integers(0, 31)
mem_slot = st.integers(0, 63)


@st.composite
def straightline_op(draw):
    """One safe straight-line operation for the random program body."""
    kind = draw(st.sampled_from(
        ["rrr", "imm", "shift", "lui", "store", "load", "mult", "skip2"]))
    if kind == "rrr":
        return ("rrr", draw(st.sampled_from(
            ["addu", "subu", "and_", "or_", "xor", "nor", "slt", "sltu"])),
            draw(reg), draw(reg), draw(reg))
    if kind == "imm":
        return ("imm", draw(st.sampled_from(
            ["addiu", "slti"])), draw(reg), draw(reg), draw(imm))
    if kind == "shift":
        return ("shift", draw(st.sampled_from(["sll", "srl", "sra"])),
                draw(reg), draw(reg), draw(shamt))
    if kind == "lui":
        return ("lui", draw(reg), draw(uimm))
    if kind == "store":
        return ("store", draw(reg), draw(mem_slot))
    if kind == "load":
        return ("load", draw(reg), draw(mem_slot))
    if kind == "mult":
        return ("mult", draw(reg), draw(reg), draw(reg))
    return ("skip2", draw(reg), draw(reg))


def build_program(ops):
    """Straight-line body + a forward branch or two, then print & halt."""
    b = AsmBuilder(name="random")
    base = 0x1050_0000
    b.li(9, base)  # $t1 anchors the data region initially
    for i, op in enumerate(ops):
        if op[0] == "rrr":
            getattr(b, op[1])(op[2], op[3], op[4])
        elif op[0] == "imm":
            getattr(b, op[1])(op[2], op[3], op[4])
        elif op[0] == "shift":
            getattr(b, op[1])(op[2], op[3], op[4])
        elif op[0] == "lui":
            b.lui(op[1], op[2])
        elif op[0] == "store":
            b.li(8, base + 4 * op[2])
            b.sw(op[1], 0, 8)
        elif op[0] == "load":
            b.li(8, base + 4 * op[2])
            b.lw(op[1], 0, 8)
        elif op[0] == "mult":
            b.mult(op[1], op[2])
            b.mflo(op[3])
        elif op[0] == "skip2":
            label = "skip_%d" % i
            b.beq(op[1], op[2], label)
            b.addiu(op[1], op[1], 1)
            b.xor(op[2], op[2], op[1])
            b.label(label)
    # Print a digest of the register file so divergence is observable.
    for r in TEMPS:
        b.addu(A0, 0, r) if r == TEMPS[0] else b.addu(A0, A0, r)
    b.addiu(V0, 0, 1)
    b.syscall()
    b.halt()
    return b.build()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(straightline_op(), min_size=1, max_size=60))
def test_codec_lossless_on_random_programs(ops):
    program = build_program(ops)
    image = compress_program(program)
    assert decompress_program(image) == program.text


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(straightline_op(), min_size=1, max_size=40))
def test_execution_identical_native_vs_compressed(ops):
    program = build_program(ops)
    native = simulate(program, ARCH_4_ISSUE, max_instructions=50_000)
    packed = simulate(program, ARCH_4_ISSUE, codepack=CodePackConfig(),
                      max_instructions=50_000)
    assert native.output == packed.output
    assert native.instructions == packed.instructions
    assert native.exit_code == packed.exit_code


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(straightline_op(), min_size=1, max_size=40))
def test_inorder_and_ooo_agree_architecturally(ops):
    program = build_program(ops)
    one = simulate(program, ARCH_1_ISSUE, max_instructions=50_000)
    four = simulate(program, ARCH_4_ISSUE, max_instructions=50_000)
    assert one.output == four.output
    assert one.instructions == four.instructions
