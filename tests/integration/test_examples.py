"""Smoke tests: every shipped example must run end to end.

Examples are deliverables, not decoration; these tests execute each one
in-process (with reduced scales where the example accepts ``--scale``)
and sanity-check its output so the examples cannot silently rot.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv, capsys):
    """Execute an example as ``__main__`` with a patched argv."""
    saved_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "decompression_walkthrough.py",
            "embedded_design_space.py", "custom_workload.py",
            "scheme_shootout.py", "paper_tables.py",
            "miss_latency_profile.py"} <= names


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "compression" in out
    assert "speedup" in out
    assert "lossless round trip OK" in out


def test_decompression_walkthrough(capsys):
    out = run_example("decompression_walkthrough.py", [], capsys)
    assert "index table" in out
    assert "decoded block matches the original .text exactly." in out
    assert "Figure 2" in out


def test_custom_workload(capsys):
    out = run_example("custom_workload.py", [], capsys)
    assert "compression ratio" in out
    assert "2584" in out  # fib(18)


@pytest.mark.slow
def test_embedded_design_space(capsys):
    out = run_example("embedded_design_space.py",
                      ["--scale", "0.04"], capsys)
    assert "winner" in out
    assert "CodePack" in out


@pytest.mark.slow
def test_scheme_shootout(capsys):
    out = run_example("scheme_shootout.py",
                      ["--scale", "0.04", "--benchmark", "perl"], capsys)
    assert "CCRP" in out
    assert "speedup" in out


@pytest.mark.slow
def test_miss_latency_profile(capsys):
    out = run_example("miss_latency_profile.py",
                      ["--scale", "0.04"], capsys)
    assert "misses" in out
    assert "#" in out  # histogram bars


@pytest.mark.slow
def test_paper_tables(capsys):
    out = run_example("paper_tables.py",
                      ["--scale", "0.02", "--exhibits", "figure2",
                       "table3"], capsys)
    assert "Figure 2" in out
    assert "Table 3" in out
