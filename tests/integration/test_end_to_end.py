"""End-to-end integration: toolchain -> codec -> simulator.

These tests exercise the full stack the way the paper's experiments do,
asserting the system-level invariants every exhibit relies on.
"""

import pytest

from repro import (
    ARCH_1_ISSUE,
    ARCH_4_ISSUE,
    ARCH_8_ISSUE,
    CodePackConfig,
    compress_program,
    decompress_program,
    simulate,
)
from repro.sim.config import IndexCacheConfig

ARCHS = (ARCH_1_ISSUE, ARCH_4_ISSUE, ARCH_8_ISSUE)
CONFIGS = (
    None,
    CodePackConfig(),
    CodePackConfig.optimized(),
    CodePackConfig(perfect_index=True),
    CodePackConfig(decode_rate=16,
                   index_cache=IndexCacheConfig(16, 2)),
    CodePackConfig(output_buffer=False),
)


class TestArchitecturalEquivalence:
    """Same program, any machine, any decompressor: same answers."""

    @pytest.mark.parametrize("arch", ARCHS, ids=lambda a: a.name)
    def test_all_decompressors_agree(self, cc1_small, arch):
        reference = None
        for config in CONFIGS:
            result = simulate(cc1_small, arch, codepack=config,
                              max_instructions=2_000_000)
            key = (result.instructions, result.output, result.exit_code)
            if reference is None:
                reference = key
            assert key == reference, "config %r diverged" % (config,)

    def test_decompressed_text_is_what_executes(self, pegwit_small):
        image = compress_program(pegwit_small)
        assert decompress_program(image) == pegwit_small.text


class TestTimingSanity:
    def test_codepack_never_free(self, cc1_small):
        """With a cold index path and serial decode, baseline CodePack
        can never beat native on a benchmark with I-misses."""
        native = simulate(cc1_small, ARCH_4_ISSUE)
        packed = simulate(cc1_small, ARCH_4_ISSUE,
                          codepack=CodePackConfig())
        assert packed.cycles > native.cycles

    def test_optimizations_monotone(self, cc1_small):
        baseline = simulate(cc1_small, ARCH_4_ISSUE,
                            codepack=CodePackConfig())
        optimized = simulate(cc1_small, ARCH_4_ISSUE,
                             codepack=CodePackConfig.optimized())
        assert optimized.cycles <= baseline.cycles

    def test_output_buffer_helps(self, cc1_small):
        with_buf = simulate(cc1_small, ARCH_4_ISSUE,
                            codepack=CodePackConfig())
        without = simulate(cc1_small, ARCH_4_ISSUE,
                           codepack=CodePackConfig(output_buffer=False))
        assert with_buf.cycles <= without.cycles
        assert with_buf.engine.buffer_hits > 0
        assert without.engine.buffer_hits == 0

    def test_perfect_index_at_least_as_fast_as_cache(self, cc1_small):
        cached = simulate(cc1_small, ARCH_4_ISSUE,
                          codepack=CodePackConfig.with_index_cache())
        perfect = simulate(cc1_small, ARCH_4_ISSUE,
                           codepack=CodePackConfig(perfect_index=True))
        assert perfect.cycles <= cached.cycles

    def test_no_misses_means_no_penalty(self, small_suite):
        prog = small_suite["mpeg2enc"]
        native = simulate(prog, ARCH_4_ISSUE)
        packed = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig())
        assert abs(packed.cycles - native.cycles) / native.cycles < 0.01


class TestEngineAccounting:
    def test_engine_miss_count_matches_icache(self, cc1_small):
        result = simulate(cc1_small, ARCH_4_ISSUE,
                          codepack=CodePackConfig())
        assert result.engine.misses == result.icache_misses

    def test_compressed_bytes_fetched_reasonable(self, cc1_small):
        image = compress_program(cc1_small)
        result = simulate(cc1_small, ARCH_4_ISSUE,
                          codepack=CodePackConfig(), image=image)
        fetched = result.engine.compressed_bytes_fetched
        # Every fetched block is 16 instructions, compressed below 64B.
        assert fetched <= result.engine.blocks_fetched * 64
        assert fetched > 0

    def test_index_fetches_bounded_by_misses(self, cc1_small):
        result = simulate(cc1_small, ARCH_4_ISSUE,
                          codepack=CodePackConfig())
        assert result.engine.index_fetches <= result.engine.misses


class TestMemorySweepDirections:
    """The directional claims of Tables 11 and 12 on a small run."""

    def test_narrow_bus_favours_compression(self, cc1_small):
        def gap(bus_bits):
            arch = ARCH_4_ISSUE.with_memory(bus_bits=bus_bits)
            native = simulate(cc1_small, arch)
            packed = simulate(cc1_small, arch,
                              codepack=CodePackConfig.optimized())
            return packed.speedup_over(native)

        assert gap(16) > gap(128)

    def test_slow_memory_favours_compression(self, cc1_small):
        def gap(latency, rate):
            arch = ARCH_4_ISSUE.with_memory(first_latency=latency,
                                            rate=rate)
            native = simulate(cc1_small, arch)
            packed = simulate(cc1_small, arch,
                              codepack=CodePackConfig.optimized())
            return packed.speedup_over(native)

        assert gap(80, 16) > gap(5, 1)

    def test_large_cache_converges_to_native(self, cc1_small):
        def gap(size_kb):
            arch = ARCH_4_ISSUE.with_icache(size_kb * 1024)
            native = simulate(cc1_small, arch)
            packed = simulate(cc1_small, arch,
                              codepack=CodePackConfig())
            return abs(1 - packed.speedup_over(native))

        assert gap(64) < gap(1)
