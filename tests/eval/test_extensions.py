"""Tests for the extension experiments."""

import pytest

from repro.eval.extensions import (
    EXTENSION_EXPERIMENTS,
    compressed_fetch_traffic,
    dense_isa,
    scheme_comparison,
    software_decompression,
)
from repro.eval.runner import Workbench

BENCHES = ("pegwit", "cc1")


@pytest.fixture(scope="module")
def wb():
    return Workbench(scale=0.03)


class TestSchemeComparison:
    def test_structure_and_bands(self, wb):
        table = scheme_comparison(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            bench, cp_ratio, ccrp_ratio, dw_ratio = row[:4]
            cp_speed, ccrp_speed, dw_speed = row[4:]
            assert cp_ratio < ccrp_ratio  # CodePack always compresses best
            assert 0 < cp_speed <= 1.5 and 0 < ccrp_speed <= 1.5

    def test_ccrp_slowest_on_miss_heavy(self, wb):
        table = scheme_comparison(wb=wb, benchmarks=("cc1",))
        row = table.row_by_key("cc1")
        assert row[5] < row[4]  # CCRP speedup below CodePack's
        assert row[5] < row[6]

    def test_dictword_tracks_codepack(self, wb):
        table = scheme_comparison(wb=wb, benchmarks=("cc1",))
        row = table.row_by_key("cc1")
        assert abs(row[6] - row[4]) < 0.1


class TestSoftwareDecompression:
    def test_cost_monotonicity(self, wb):
        table = software_decompression(wb=wb, benchmarks=("cc1",),
                                       costs=(4, 16, 48))
        row = table.row_by_key("cc1")
        hardware, s4, s16, s48 = row[2:]
        assert hardware > s4 > s16 > s48

    def test_low_miss_code_barely_affected(self, wb):
        table = software_decompression(wb=wb, benchmarks=("pegwit",),
                                       costs=(16,))
        row = table.row_by_key("pegwit")
        # At this tiny test scale cold-start misses are inflated; at
        # full scale pegwit's software speedup is ~0.86.
        assert row[3] > 0.70  # software viable where misses are rare


class TestFetchTraffic:
    def test_compressed_traffic_lower(self, wb):
        table = compressed_fetch_traffic(wb=wb, benchmarks=("cc1",))
        row = table.row_by_key("cc1")
        assert row[5] < 1.0  # fewer bytes than native
        assert row[3] <= row[1]  # blocks fetched <= native misses

    def test_columns_consistent(self, wb):
        table = compressed_fetch_traffic(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            assert row[2] == row[1] * 32
            assert abs(row[5] - row[4] / row[2]) < 1e-9


class TestDenseIsa:
    def test_size_and_trade(self, wb):
        table = dense_isa(wb=wb, benchmarks=("cc1",))
        row = table.row_by_key("cc1")
        ss16_ratio, cp_ratio, extra = row[1:4]
        assert cp_ratio < ss16_ratio < 1.0
        assert extra >= 0.0
        # Near-ideal memory exposes the extra instructions.
        assert row[5] <= 1.01


class TestCompressionAnalysis:
    def test_bound_below_achieved(self, wb):
        from repro.eval.extensions import compression_analysis
        table = compression_analysis(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            bench, bound_bits, achieved_bits, eff, bound_r, achieved_r = row
            assert bound_bits <= achieved_bits + 1e-9, bench
            assert bound_r < achieved_r, bench
            assert 0 < eff <= 1.0, bench


class TestRegistry:
    def test_all_registered(self):
        assert set(EXTENSION_EXPERIMENTS) == {
            "scheme_comparison", "software_decompression",
            "compressed_fetch_traffic", "dense_isa",
            "compression_analysis"}
