"""Tests for the ``python -m repro.eval`` command line."""

import pytest

from repro.eval.__main__ import main, parse_size


class TestArgumentHandling:
    def test_unknown_exhibit_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])
        assert "unknown exhibits" in capsys.readouterr().err

    def test_single_static_exhibit(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Simulated architectures" in out
        assert "regenerated" in out

    def test_figure2_is_cheap_and_exact(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "25" in out and "14" in out

    def test_scale_and_benchmark_filters(self, capsys):
        assert main(["table3", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        out = capsys.readouterr().out
        assert "pegwit" in out
        assert "cc1" not in out

    def test_extension_by_name(self, capsys):
        assert main(["compression_analysis", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        assert "entropy" in capsys.readouterr().out

    def test_multiple_exhibits_share_workbench(self, capsys):
        assert main(["table3", "table4", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 4" in out


class TestSweepFlags:
    def test_parse_size(self):
        assert parse_size("65536") == 65536
        assert parse_size("8k") == 8 << 10
        assert parse_size("8M") == 8 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size(" 2K ") == 2048
        for bad in ("huge", "4.5M", "", "-1"):
            with pytest.raises(ValueError):
                parse_size(bad)

    def test_bad_trace_cache_limit_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--trace-cache-limit", "huge"])
        assert "byte size" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--jobs", "several"])
        assert "jobs" in capsys.readouterr().err

    def test_jobs_auto_accepted(self, capsys):
        assert main(["table2", "--jobs", "auto"]) == 0

    def test_no_vec_forces_scalar_backend(self, capsys):
        assert main(["table5", "--scale", "0.02", "--benchmarks",
                     "pegwit", "--no-vec", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "(0 vectorized)" in out
        assert "backend vec" not in out

    def test_stats_report_backends(self, capsys):
        pytest.importorskip("numpy")
        assert main(["table5", "table10", "--scale", "0.02",
                     "--benchmarks", "pegwit", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "backend vec" in out
