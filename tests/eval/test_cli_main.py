"""Tests for the ``python -m repro.eval`` command line."""

import pytest

from repro.eval.__main__ import main


class TestArgumentHandling:
    def test_unknown_exhibit_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table99"])
        assert "unknown exhibits" in capsys.readouterr().err

    def test_single_static_exhibit(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Simulated architectures" in out
        assert "regenerated" in out

    def test_figure2_is_cheap_and_exact(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "25" in out and "14" in out

    def test_scale_and_benchmark_filters(self, capsys):
        assert main(["table3", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        out = capsys.readouterr().out
        assert "pegwit" in out
        assert "cc1" not in out

    def test_extension_by_name(self, capsys):
        assert main(["compression_analysis", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        assert "entropy" in capsys.readouterr().out

    def test_multiple_exhibits_share_workbench(self, capsys):
        assert main(["table3", "table4", "--scale", "0.02",
                     "--benchmarks", "pegwit"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 4" in out
