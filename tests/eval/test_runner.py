"""Dedicated tests for the Workbench."""

import pytest

from repro.eval.runner import Workbench
from repro.sim.config import ARCH_1_ISSUE, ARCH_4_ISSUE, CodePackConfig


@pytest.fixture(scope="module")
def wb():
    return Workbench(scale=0.02)


class TestArtifactCaching:
    def test_images_cached(self, wb):
        assert wb.image("pegwit") is wb.image("pegwit")

    def test_static_cached(self, wb):
        assert wb.static("pegwit") is wb.static("pegwit")

    def test_distinct_benchmarks_distinct_artifacts(self, wb):
        assert wb.program("pegwit") is not wb.program("mpeg2enc")


class TestRunMemoisation:
    def test_keyed_by_arch(self, wb):
        a = wb.run("pegwit", ARCH_4_ISSUE)
        b = wb.run("pegwit", ARCH_1_ISSUE)
        assert a is not b
        assert a is wb.run("pegwit", ARCH_4_ISSUE)

    def test_keyed_by_codepack_config(self, wb):
        base = wb.run("pegwit", ARCH_4_ISSUE, CodePackConfig())
        optimized = wb.run("pegwit", ARCH_4_ISSUE,
                           CodePackConfig.optimized())
        assert base is not optimized
        assert base is wb.run("pegwit", ARCH_4_ISSUE, CodePackConfig())

    def test_derived_arch_configs_memoise(self, wb):
        arch = ARCH_4_ISSUE.with_icache(4096)
        a = wb.run("pegwit", arch)
        # An equal derived config (frozen dataclass) hits the cache.
        assert a is wb.run("pegwit", ARCH_4_ISSUE.with_icache(4096))


class TestHelpers:
    def test_benchmarks_default_is_suite(self, wb):
        assert set(wb.benchmarks()) == {
            "cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}

    def test_benchmarks_filter(self, wb):
        assert wb.benchmarks(("cc1",)) == ("cc1",)

    def test_speedup_consistent_with_runs(self, wb):
        config = CodePackConfig()
        speedup = wb.speedup("pegwit", ARCH_4_ISSUE, config)
        native = wb.run("pegwit", ARCH_4_ISSUE)
        packed = wb.run("pegwit", ARCH_4_ISSUE, config)
        assert speedup == pytest.approx(native.cycles / packed.cycles)

    def test_scale_changes_trip_count_not_layout(self):
        small = Workbench(scale=0.02).program("pegwit")
        smaller = Workbench(scale=0.01).program("pegwit")
        # Same static layout; only the trip-count immediate differs.
        assert len(small.text) == len(smaller.text)
        differing = sum(1 for a, b in zip(small.text, smaller.text)
                        if a != b)
        assert differing <= 2  # the lui/ori pair loading `iterations`
