"""Tests for the Markdown report generator."""

import pytest

from repro.eval.report import generate_report, main, table_to_markdown
from repro.eval.runner import Workbench
from repro.eval.tables import TableResult


def sample_table():
    return TableResult(
        exhibit="Table X", title="Sample",
        columns=["bench", "ratio"],
        rows=[["cc1", 0.605], ["go", None]],
        formats={1: "%.2f"},
        notes="a note")


class TestMarkdownRendering:
    def test_structure(self):
        text = table_to_markdown(sample_table())
        assert text.startswith("### Table X — Sample")
        assert "| bench | ratio |" in text
        assert "| cc1 | 0.60 |" in text
        assert "*a note*" in text

    def test_none_renders_dash(self):
        assert "| go | – |" in table_to_markdown(sample_table())

    def test_separator_row(self):
        lines = table_to_markdown(sample_table()).splitlines()
        assert lines[3] == "|---|---|"


class TestGeneration:
    @pytest.fixture(scope="class")
    def wb(self):
        return Workbench(scale=0.02)

    def test_small_document(self, wb):
        # Use only the cheap static exhibits via a custom run.
        from repro.eval.experiments import figure2, table3
        document = table_to_markdown(figure2()) \
            + table_to_markdown(table3(wb=wb, benchmarks=("pegwit",)))
        assert "Figure 2" in document
        assert "Table 3" in document

    def test_generate_report_extensions_only(self, wb):
        document = generate_report(
            include_paper=False, include_extensions=True,
            benchmarks=("pegwit",), wb=wb)
        assert "Extension A" in document
        assert "Extension E" in document

    def test_cli_writes_file(self, tmp_path, wb, monkeypatch):
        out = tmp_path / "report.md"
        # Patch Workbench so the CLI run is cheap.
        import repro.eval.report as report_module
        monkeypatch.setattr(report_module, "Workbench",
                            lambda scale: wb)
        assert main(["-o", str(out), "--no-paper", "--extensions",
                     "--benchmarks", "pegwit"]) == 0
        assert "Extension" in out.read_text()
