"""The scalar fallback: everything must work without NumPy.

NumPy is an optional accelerator (the ``perf`` extra).  A subprocess
with a shim that blocks ``import numpy`` proves the package imports,
the sweep completes through the scalar replay engines, and the cell
results are identical to the vectorized run -- the backends share memo
and cache keys precisely because they are cycle-exact.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.eval.experiments import sweep_cells
from repro.eval.runner import Workbench

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src")

SHIM = ('raise ImportError("numpy blocked by test shim")\n')

SCRIPT = r"""
import json
import repro  # the package must import without NumPy
from repro.sim import vecreplay
assert not vecreplay.available()
try:
    import numpy
except ImportError:
    pass
else:
    raise SystemExit("the shim failed: numpy is importable")
from repro.eval.experiments import sweep_cells
from repro.eval.runner import Workbench
wb = Workbench(scale=0.02, jobs=1)
assert wb.vec is False  # vec=None resolves to the scalar fallback
wb.prefetch(sweep_cells(["table5", "table10"], wb=wb,
                        benchmarks=["pegwit"]))
cells = [{"bench": key[0], "arch": key[1].name, "mode": result.mode,
          "result": result.to_dict()}
         for key, result in sorted(
             wb._results.items(),
             key=lambda kv: (kv[0][0], kv[0][1].name, str(kv[0][2])))]
print(json.dumps({"vec_cells": wb.stats.vec_cells, "cells": cells},
                 sort_keys=True))
"""


@pytest.fixture(scope="module")
def shim_env(tmp_path_factory):
    shim_dir = tmp_path_factory.mktemp("no_numpy_shim")
    (shim_dir / "numpy.py").write_text(SHIM)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(shim_dir), SRC])
    return env


@pytest.fixture(scope="module")
def no_numpy_payload(shim_env):
    proc = subprocess.run([sys.executable, "-c", SCRIPT],
                          capture_output=True, text=True, env=shim_env,
                          timeout=600)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_sweep_passes_without_numpy(no_numpy_payload):
    assert no_numpy_payload["vec_cells"] == 0
    assert no_numpy_payload["cells"]


def test_cell_json_identical_to_vectorized_run(no_numpy_payload):
    pytest.importorskip("numpy")
    wb = Workbench(scale=0.02, jobs=1, vec=True)
    wb.prefetch(sweep_cells(["table5", "table10"], wb=wb,
                            benchmarks=["pegwit"]))
    cells = [{"bench": key[0], "arch": key[1].name, "mode": result.mode,
              "result": result.to_dict()}
             for key, result in sorted(
                 wb._results.items(),
                 key=lambda kv: (kv[0][0], kv[0][1].name,
                                 str(kv[0][2])))]
    assert wb.stats.vec_cells > 0
    assert cells == no_numpy_payload["cells"]


def test_vec_flag_requires_numpy(shim_env):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.eval", "table2", "--vec"],
        capture_output=True, text=True, env=shim_env, timeout=120)
    assert proc.returncode != 0
    assert "NumPy" in proc.stderr


CODEC_SCRIPT = r"""
import hashlib
import json
from repro.codepack import batch, veccodec
assert not veccodec.available()
try:
    batch.use_vec(True)
except RuntimeError:
    pass
else:
    raise SystemExit("vec=True must raise without NumPy")
from tests.conftest import random_words
import random
rng = random.Random(31337)
programs = [random_words(rng, n, kind)
            for n, kind in ((0, "workload"), (17, "workload"),
                            (48, "zero_low"), (33, "incompressible"),
                            (64, "repetitive"))]
images = batch.compress_many(programs)  # vec=None -> scalar fallback
from repro.tools.container import dump_image
digests = [hashlib.sha256(dump_image(image)).hexdigest()
           for image in images]
words = batch.decompress_many(images)
assert words == programs
groups = batch.decode_groups_batch(
    [(image, group) for image in images for group in range(image.n_groups)])
group_digest = hashlib.sha256(
    repr([tuple(g) for g in groups]).encode()).hexdigest()
print(json.dumps({"cpk": digests, "groups": group_digest}))
"""


@pytest.fixture(scope="module")
def codec_shim_env(shim_env):
    env = dict(shim_env)
    # The script imports tests.conftest for the corpus generators.
    env["PYTHONPATH"] = os.pathsep.join(
        [env["PYTHONPATH"],
         os.path.join(SRC, os.pardir)])
    return env


def test_codepack_batch_identical_without_numpy(codec_shim_env):
    """`repro.codepack.batch` imports, compresses, and decodes on the
    scalar tier without NumPy -- and the `.cpk` bytes are identical to
    the vectorized kernels' output."""
    proc = subprocess.run([sys.executable, "-c", CODEC_SCRIPT],
                          capture_output=True, text=True,
                          env=codec_shim_env, timeout=600)
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)

    pytest.importorskip("numpy")
    import hashlib
    import random

    from repro.codepack import batch, veccodec
    from repro.tools.container import dump_image
    from tests.conftest import random_words

    assert veccodec.available()
    rng = random.Random(31337)
    programs = [random_words(rng, n, kind)
                for n, kind in ((0, "workload"), (17, "workload"),
                                (48, "zero_low"), (33, "incompressible"),
                                (64, "repetitive"))]
    images = batch.compress_many(programs, vec=True)
    digests = [hashlib.sha256(dump_image(image)).hexdigest()
               for image in images]
    assert digests == payload["cpk"]
    assert batch.decompress_many(images, vec=True) == programs
    groups = batch.decode_groups_batch(
        [(image, group) for image in images
         for group in range(image.n_groups)], vec=True)
    group_digest = hashlib.sha256(
        repr([tuple(g) for g in groups]).encode()).hexdigest()
    assert group_digest == payload["groups"]
