"""Tests for the experiment harness.

Full-scale experiments run for minutes; here every exhibit runs on a
tiny Workbench (two benchmarks, very short trip counts) and the tests
check structure plus the cheap exactness properties (Figure 2).
"""

import pytest

from repro.eval.experiments import (
    ALL_EXPERIMENTS,
    figure2,
    run_experiment,
    table2,
    table3,
    table4,
    table6,
    table9,
)
from repro.eval.runner import Workbench
from repro.eval.tables import TableResult

BENCHES = ("pegwit", "mpeg2enc")  # the two cheapest to simulate


@pytest.fixture(scope="module")
def wb():
    return Workbench(scale=0.02)


class TestFigure2:
    """The worked example must reproduce cycle-exactly."""

    def test_paper_numbers(self):
        table = figure2()
        by_model = {row[0]: row for row in table.rows}
        for row in table.rows:
            measured, paper = row[1], row[2]
            assert measured == paper, row[0]
        assert len(by_model) == 3


class TestStructure:
    def test_all_exhibits_registered(self):
        expected = {"table%d" % i for i in range(1, 13)} | {"figure2"}
        assert set(ALL_EXPERIMENTS) == expected

    def test_run_experiment_dispatch(self, wb):
        table = run_experiment("table3", wb=wb, benchmarks=BENCHES)
        assert isinstance(table, TableResult)
        assert table.exhibit == "Table 3"

    def test_table2_is_static(self):
        table = table2()
        assert [c for c in table.columns[1:]] \
            == ["1-issue", "4-issue", "8-issue"]
        assert table.row_by_key("RUU entries")[1:] == ["4", "16", "32"]


class TestSizeTables:
    def test_table3_ratio_consistency(self, wb):
        table = table3(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            bench, original, compressed, ratio, paper = row
            assert abs(ratio - compressed / original) < 1e-9
            assert 0 < ratio < 1

    def test_table4_fractions_sum_to_one(self, wb):
        table = table4(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            assert abs(sum(row[1:8]) - 1.0) < 1e-9

    def test_table4_total_matches_table3(self, wb):
        t3 = table3(wb=wb, benchmarks=BENCHES)
        t4 = table4(wb=wb, benchmarks=BENCHES)
        for bench in BENCHES:
            assert t3.row_by_key(bench)[2] == t4.row_by_key(bench)[8]


class TestPerformanceTables:
    def test_table9_columns_are_consistent(self, wb):
        table = table9(wb=wb, benchmarks=("pegwit",))
        row = table.row_by_key("pegwit")
        baseline, index, decompress, combined = row[1:]
        # Each optimization can only help relative to the baseline.
        assert index >= baseline - 1e-9
        assert decompress >= baseline - 1e-9
        assert combined >= max(index, decompress) - 0.02

    def test_table6_monotone_in_capacity(self, wb):
        table = table6(wb=wb, bench="pegwit")
        # More lines can only reduce the miss ratio, column-wise.
        for col in range(1, 5):
            values = [row[col] for row in table.rows]
            assert all(values[i] >= values[i + 1] - 0.05
                       for i in range(len(values) - 1))

    def test_speedups_are_positive(self, wb):
        table = table9(wb=wb, benchmarks=BENCHES)
        for row in table.rows:
            assert all(v > 0 for v in row[1:])


class TestWorkbench:
    def test_results_memoised(self, wb):
        from repro.sim.config import ARCH_4_ISSUE
        a = wb.run("pegwit", ARCH_4_ISSUE)
        b = wb.run("pegwit", ARCH_4_ISSUE)
        assert a is b

    def test_programs_built_once(self, wb):
        assert wb.program("pegwit") is wb.program("pegwit")

    def test_speedup_helper(self, wb):
        from repro.sim.config import ARCH_4_ISSUE, CodePackConfig
        value = wb.speedup("pegwit", ARCH_4_ISSUE, CodePackConfig())
        assert 0.5 < value < 1.5
