"""Tests for the sweep layer: cell keys, the persistent result cache,
deterministic partitioning and the parallel prefetch path."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro.eval.sweep as sweep
from repro.eval.runner import Workbench
from repro.eval.sweep import (
    ResultCache,
    cell_key,
    partition_cells,
    resolve_jobs,
    run_batches,
)
from repro.sim.codepack_engine import EngineStats, IndexCacheStats
from repro.sim.config import ARCH_1_ISSUE, ARCH_4_ISSUE, CodePackConfig
from repro.sim.results import SimResult

CP = CodePackConfig()
SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def make_result(**overrides):
    base = dict(
        benchmark="pegwit", arch="1-issue", mode="codepack",
        instructions=1000, cycles=2000, icache_accesses=200,
        icache_misses=20, dcache_accesses=50, dcache_misses=5,
        branch_lookups=80, branch_mispredicts=8,
        engine=EngineStats(misses=20, buffer_hits=3, index_fetches=17,
                           blocks_fetched=17, compressed_bytes_fetched=900,
                           index_cache=IndexCacheStats(accesses=20,
                                                       misses=17)),
        output="ok", exit_code=0, extra={"truncated": False})
    base.update(overrides)
    return SimResult(**base)


class TestCellKey:
    def key(self, **overrides):
        args = dict(bench="pegwit", arch=ARCH_1_ISSUE, codepack=CP,
                    scale=0.1, max_instructions=100_000)
        args.update(overrides)
        return cell_key(args["bench"], args["arch"], args["codepack"],
                        args["scale"], args["max_instructions"])

    def test_deterministic_within_process(self):
        assert self.key() == self.key()

    def test_native_vs_codepack_differ(self):
        assert self.key(codepack=None) != self.key()

    def test_arch_field_edit_changes_key(self):
        edited = dataclasses.replace(ARCH_1_ISSUE, mispredict_penalty=7)
        assert self.key(arch=edited) != self.key()

    def test_nested_arch_field_edit_changes_key(self):
        memory = dataclasses.replace(ARCH_1_ISSUE.memory, first_latency=11)
        edited = dataclasses.replace(ARCH_1_ISSUE, memory=memory)
        assert self.key(arch=edited) != self.key()

    def test_codepack_field_edit_changes_key(self):
        assert (self.key(codepack=CodePackConfig(decode_rate=2))
                != self.key())

    def test_scale_changes_key(self):
        assert self.key(scale=0.2) != self.key()

    def test_max_instructions_changes_key(self):
        assert self.key(max_instructions=50_000) != self.key()

    @pytest.mark.parametrize("version", ("CODEC_VERSION", "WORKLOAD_VERSION",
                                         "SIM_VERSION"))
    def test_version_bump_changes_key(self, monkeypatch, version):
        before = self.key()
        monkeypatch.setattr(sweep, version, getattr(sweep, version) + 1)
        assert self.key() != before

    def test_stable_across_hash_seeds(self):
        """The key must not depend on PYTHONHASHSEED (dict/set order)."""
        script = (
            "from repro.eval.sweep import cell_key\n"
            "from repro.sim.config import ARCH_1_ISSUE, CodePackConfig\n"
            "print(cell_key('pegwit', ARCH_1_ISSUE,"
            " CodePackConfig.optimized(), 0.1, 100000))\n")
        keys = []
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=SRC)
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            keys.append(out.stdout.strip())
        assert len(set(keys)) == 1
        assert keys[0] == TestCellKey().key(codepack=CodePackConfig
                                            .optimized())


class TestResultCache:
    def test_roundtrip_with_engine_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = make_result()
        assert cache.put("k" * 64, result)
        loaded = cache.get("k" * 64)
        assert loaded == result
        assert isinstance(loaded.engine, EngineStats)
        assert loaded.engine.index_cache.miss_rate == pytest.approx(0.85)

    def test_missing_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("absent") is None
        assert cache.misses == 1 and cache.corrupt == 0

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key1", make_result())
        with open(cache._path("key1"), "w") as handle:
            handle.write("{ not json")
        assert cache.get("key1") is None
        assert cache.corrupt == 1

    def test_truncated_entry_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key2", make_result())
        path = cache._path("key2")
        data = open(path).read()
        with open(path, "w") as handle:
            handle.write(data[:len(data) // 2])
        assert cache.get("key2") is None
        assert cache.corrupt == 1

    def test_format_version_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key3", make_result())
        path = cache._path("key3")
        entry = json.load(open(path))
        entry["format"] = 0
        json.dump(entry, open(path, "w"))
        assert cache.get("key3") is None

    def test_custom_engine_stats_not_stored(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        class Other:
            pass

        assert not cache.put("key4", make_result(engine=Other()))
        assert cache.get("key4") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key5", make_result())
        cache.put("key6", make_result())
        assert cache.clear() == 2
        assert cache.get("key5") is None


class TestSimResultSerialization:
    def test_roundtrip_without_engine(self):
        result = make_result(engine=None, mode="native")
        assert SimResult.from_dict(result.to_dict()) == result

    def test_roundtrip_preserves_extra(self):
        result = make_result(extra={"truncated": True, "note": "x"})
        assert SimResult.from_dict(result.to_dict()).extra == result.extra


class TestPartitioning:
    CELLS = [("a", 1, None), ("a", 2, None), ("b", 1, None),
             ("a", 3, None), ("b", 2, None), ("c", 1, None)]

    def test_groups_by_benchmark(self):
        batches = partition_cells(self.CELLS, 1)
        assert [[c[0] for c in b] for b in batches] == [
            ["a", "a", "a"], ["b", "b"], ["c"]]

    def test_deterministic(self):
        assert (partition_cells(self.CELLS, 4)
                == partition_cells(self.CELLS, 4))

    def test_splits_largest_until_jobs_filled(self):
        batches = partition_cells(self.CELLS, 4)
        assert len(batches) == 4
        flat = [cell for batch in batches for cell in batch]
        assert sorted(flat) == sorted(self.CELLS)
        # Splitting preserves per-benchmark cell order.
        a_cells = [c for c in flat if c[0] == "a"]
        assert a_cells == [c for c in self.CELLS if c[0] == "a"]

    def test_single_cells_cannot_split(self):
        batches = partition_cells([("a", 1, None)], 8)
        assert batches == [[("a", 1, None)]]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs("4") == 4
        assert resolve_jobs("auto") >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestVecPartitioning:
    """partition_cells_vec keeps (bench, kernel-group) units whole so
    a worker never prices half a column group."""

    CELLS = ([("a", ARCH_4_ISSUE, None)] * 4
             + [("a", ARCH_1_ISSUE, None)] * 2
             + [("b", ARCH_4_ISSUE, CP)] * 3
             + [("b", ARCH_1_ISSUE, CP)])

    @staticmethod
    def _unit_key(cell):
        from repro.sim.vecreplay import _group_key
        return (cell[0], _group_key(cell[1]))

    def test_units_stay_whole(self):
        batches = sweep.partition_cells_vec(self.CELLS, 3)
        placed = {}
        for pos, batch in enumerate(batches):
            for cell in batch:
                key = self._unit_key(cell)
                assert placed.setdefault(key, pos) == pos
        flat = [cell for batch in batches for cell in batch]
        assert sorted(flat, key=repr) == sorted(self.CELLS, key=repr)

    def test_deterministic(self):
        assert (sweep.partition_cells_vec(self.CELLS, 3)
                == sweep.partition_cells_vec(self.CELLS, 3))

    def test_balances_largest_first(self):
        # Unit sizes 4, 3, 2, 1 pack greedily into two batches of 5.
        batches = sweep.partition_cells_vec(self.CELLS, 2)
        assert len(batches) == 2
        assert sorted(len(b) for b in batches) == [5, 5]

    def test_jobs_one_is_single_batch(self):
        assert sweep.partition_cells_vec(self.CELLS, 1) == [self.CELLS]

    def test_empty(self):
        assert sweep.partition_cells_vec([], 4) == []


class TestWorkbenchCache:
    SCALE = 0.01

    def test_warm_cache_skips_simulation(self, tmp_path):
        cold = Workbench(scale=self.SCALE, cache=str(tmp_path))
        a = cold.run("pegwit", ARCH_1_ISSUE, CP)
        assert cold.stats.sim_runs == 1

        warm = Workbench(scale=self.SCALE, cache=str(tmp_path))
        b = warm.run("pegwit", ARCH_1_ISSUE, CP)
        assert warm.stats.sim_runs == 0
        assert warm.stats.cache_hits == 1
        assert b == a

    def test_version_bump_forces_rerun(self, tmp_path, monkeypatch):
        cold = Workbench(scale=self.SCALE, cache=str(tmp_path))
        cold.run("pegwit", ARCH_1_ISSUE)
        monkeypatch.setattr(sweep, "SIM_VERSION", sweep.SIM_VERSION + 1)
        warm = Workbench(scale=self.SCALE, cache=str(tmp_path))
        warm.run("pegwit", ARCH_1_ISSUE)
        assert warm.stats.sim_runs == 1  # stale entry never looked up

    def test_arch_edit_forces_rerun(self, tmp_path):
        wb = Workbench(scale=self.SCALE, cache=str(tmp_path))
        wb.run("pegwit", ARCH_1_ISSUE)
        edited = dataclasses.replace(ARCH_1_ISSUE, mispredict_penalty=9)
        wb.run("pegwit", edited)
        assert wb.stats.sim_runs == 2

    def test_corrupt_cache_forces_clean_rerun(self, tmp_path):
        cold = Workbench(scale=self.SCALE, cache=str(tmp_path))
        a = cold.run("pegwit", ARCH_1_ISSUE)
        for name in os.listdir(str(tmp_path)):
            path = os.path.join(str(tmp_path), name)
            if os.path.isdir(path):  # e.g. the traces/ subdirectory
                continue
            with open(path, "w") as handle:
                handle.write('{"format": 1, "result": {"benchm')
        warm = Workbench(scale=self.SCALE, cache=str(tmp_path))
        b = warm.run("pegwit", ARCH_1_ISSUE)
        assert warm.stats.sim_runs == 1
        assert warm.cache.corrupt == 1
        assert b == a  # the re-run replaced the corrupt entry correctly

    def test_scales_do_not_collide_in_shared_cache(self, tmp_path):
        wb1 = Workbench(scale=0.01, cache=str(tmp_path))
        wb2 = Workbench(scale=0.02, cache=str(tmp_path))
        a = wb1.run("pegwit", ARCH_1_ISSUE)
        b = wb2.run("pegwit", ARCH_1_ISSUE)
        assert wb2.stats.sim_runs == 1  # not served wb1's entry
        assert a.instructions != b.instructions

    def test_max_instructions_do_not_collide(self, tmp_path):
        wb1 = Workbench(scale=self.SCALE, cache=str(tmp_path),
                        max_instructions=500)
        wb2 = Workbench(scale=self.SCALE, cache=str(tmp_path),
                        max_instructions=700)
        assert wb1.run("pegwit", ARCH_1_ISSUE).instructions == 500
        assert wb2.run("pegwit", ARCH_1_ISSUE).instructions == 700


class TestWorkbenchMemoKeys:
    def test_memo_key_includes_max_instructions(self):
        # Changing the cap mid-life must not return the stale result.
        wb = Workbench(scale=0.01, max_instructions=500)
        truncated = wb.run("pegwit", ARCH_1_ISSUE)
        assert truncated.instructions == 500
        wb.max_instructions = 5_000_000
        full = wb.run("pegwit", ARCH_1_ISSUE)
        assert full.instructions > 500

    def test_memo_key_includes_scale(self):
        wb = Workbench(scale=0.01)
        small = wb.run("pegwit", ARCH_1_ISSUE)
        wb.scale = 0.02
        wb._programs.clear()
        wb._images.clear()
        wb._static.clear()
        bigger = wb.run("pegwit", ARCH_1_ISSUE)
        assert bigger.instructions > small.instructions


class TestParallelPrefetch:
    SCALE = 0.01
    CELLS = [("pegwit", ARCH_1_ISSUE, None),
             ("pegwit", ARCH_1_ISSUE, CP),
             ("mpeg2enc", ARCH_1_ISSUE, None),
             ("mpeg2enc", ARCH_1_ISSUE, CP)]

    def test_pool_matches_serial(self, tmp_path):
        serial = Workbench(scale=self.SCALE)
        parallel = Workbench(scale=self.SCALE, jobs=2,
                             cache=str(tmp_path))
        simulated = parallel.prefetch(self.CELLS)
        assert simulated == len(self.CELLS)
        assert parallel.stats.parallel_cells == len(self.CELLS)
        for bench, arch, cp in self.CELLS:
            assert (parallel.run(bench, arch, cp)
                    == serial.run(bench, arch, cp))
        # Prefetch memoised everything: run() did zero simulations.
        assert parallel.stats.sim_runs == 0

    def test_prefetch_writes_cache_in_parent(self, tmp_path):
        wb = Workbench(scale=self.SCALE, jobs=2, cache=str(tmp_path))
        wb.prefetch(self.CELLS[:2])
        assert wb.cache.stores == 2
        warm = Workbench(scale=self.SCALE, cache=str(tmp_path))
        warm.run("pegwit", ARCH_1_ISSUE, CP)
        assert warm.stats.sim_runs == 0

    def test_prefetch_serial_path(self):
        wb = Workbench(scale=self.SCALE)  # jobs=1
        assert wb.prefetch(self.CELLS[:2]) == 2
        # Vec-priced when NumPy is importable (min_group never gates
        # the sweep), scalar simulation runs otherwise.
        assert wb.stats.sim_runs + wb.stats.vec_cells == 2
        assert wb.prefetch(self.CELLS[:2]) == 0

    def test_run_batches_results_match_direct_simulation(self):
        results = run_batches(self.CELLS[:2], self.SCALE, 5_000_000, jobs=1)
        wb = Workbench(scale=self.SCALE)
        for cell, result in results.items():
            bench, arch, cp = cell
            assert result == wb.run(bench, arch, cp)

    def test_run_batches_small_batch_vec_prices(self):
        # The sweep passes min_group=1: even a two-cell batch prices
        # through the column kernels with an empty decline histogram,
        # so serial and partitioned runs report the same backend.
        pytest.importorskip("numpy")
        stats = sweep.SweepStats()
        results = run_batches(self.CELLS[:2], self.SCALE, 5_000_000,
                              jobs=1, stats=stats, replay=True)
        assert len(results) == 2
        assert stats.vec_declines == {}
        assert stats.vec_cells == 2

    def test_run_batches_counts_declines(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.sim import vecreplay

        def declining_price_grid(benches, cells, *, declines=None,
                                 **kwargs):
            if declines is not None:
                n = len(list(cells))
                declines["synthetic reason"] = (
                    declines.get("synthetic reason", 0) + n)
            return {}

        monkeypatch.setattr(vecreplay, "price_grid", declining_price_grid)
        stats = sweep.SweepStats()
        results = run_batches(self.CELLS[:2], self.SCALE, 5_000_000,
                              jobs=1, stats=stats, replay=True)
        # Declined cells still get served -- by scalar replay -- and
        # the histogram says why they missed the vec backend.
        assert len(results) == 2
        assert stats.vec_declines == {"synthetic reason": 2}
        assert stats.as_dict()["vec_declines"] == stats.vec_declines
        assert "vec declines" in stats.summary()


class TestCacheDirEnvOverride:
    """$REPRO_CACHE_DIR moves the default cache root; an explicit
    ``root`` (the CLI flag path) still wins."""

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert sweep.default_cache_dir() == sweep.DEFAULT_CACHE_DIR

    def test_env_overrides_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert sweep.default_cache_dir() == str(tmp_path / "env-cache")

    def test_empty_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert sweep.default_cache_dir() == sweep.DEFAULT_CACHE_DIR

    def test_result_cache_honours_env(self, monkeypatch, tmp_path):
        root = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        cache = ResultCache()
        assert cache.root == str(root)
        assert root.is_dir()  # created eagerly
        cache.put("cell", make_result())
        assert (root / "cell.json").is_file()
        assert ResultCache().get("cell") is not None

    def test_explicit_root_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        explicit = tmp_path / "explicit"
        cache = ResultCache(root=str(explicit))
        assert cache.root == str(explicit)
        cache.put("cell", make_result())
        assert (explicit / "cell.json").is_file()
        assert not (tmp_path / "env-cache" / "cell.json").exists()


class TestParseSize:
    def test_plain_and_suffixed(self):
        assert sweep.parse_size("65536") == 65536
        assert sweep.parse_size("8K") == 8 << 10
        assert sweep.parse_size("8k") == 8 << 10
        assert sweep.parse_size("2M") == 2 << 20
        assert sweep.parse_size("1G") == 1 << 30
        assert sweep.parse_size(" 4m ") == 4 << 20
        assert sweep.parse_size(0) == 0

    @pytest.mark.parametrize("bad", ["", "M", "1.5M", "8Q", "-1", "-2K"])
    def test_bad_values_rejected(self, bad):
        with pytest.raises(ValueError):
            sweep.parse_size(bad)

    def test_still_importable_from_historical_home(self):
        from repro.eval.__main__ import parse_size as from_main
        assert from_main is sweep.parse_size


class TestResultCachePrune:
    """PR 8: ``limit_bytes`` caps the cache, LRU entries (mtime order,
    refreshed by get()) pruned after each store."""

    def fill(self, cache, n, t0=1_000_000.0):
        """Store *n* entries with strictly increasing mtimes."""
        for i in range(n):
            key = "cell%02d" % i
            cache.put(key, make_result())
            os.utime(os.path.join(cache.root, key + ".json"),
                     (t0 + i, t0 + i))
        return [os.path.join(cache.root, "cell%02d.json" % i)
                for i in range(n)]

    def entry_size(self, tmp_path):
        # The key is embedded in the entry JSON, so the probe key must
        # be as long as the "cellNN" keys fill() writes.
        probe = ResultCache(str(tmp_path / "probe"))
        probe.put("cell99", make_result())
        return os.path.getsize(os.path.join(probe.root, "cell99.json"))

    def test_unlimited_cache_never_prunes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        paths = self.fill(cache, 5)
        assert cache.prune() == 0
        assert all(os.path.exists(p) for p in paths)
        assert cache.pruned_files == 0

    def test_negative_limit_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), limit_bytes=-1)

    def test_oldest_entries_pruned_first(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = ResultCache(str(tmp_path), limit_bytes=3 * size)
        paths = self.fill(cache, 5)
        # put() pruned after each store, so only the newest 3 remain.
        survivors = [p for p in paths if os.path.exists(p)]
        assert survivors == paths[2:]
        assert cache.pruned_files == 2
        assert cache.pruned_bytes == 2 * size
        assert cache.counters()["pruned_files"] == 2

    def test_get_refreshes_lru_position(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = ResultCache(str(tmp_path), limit_bytes=10 * size)
        paths = self.fill(cache, 3)
        assert cache.get("cell00") is not None  # touch the oldest
        cache.limit_bytes = 2 * size
        cache.prune()
        assert os.path.exists(paths[0])      # refreshed: survives
        assert not os.path.exists(paths[1])  # now the LRU: pruned
        assert os.path.exists(paths[2])

    def test_fresh_store_survives_even_alone_over_limit(self, tmp_path):
        cache = ResultCache(str(tmp_path), limit_bytes=1)
        self.fill(cache, 3)
        remaining = [n for n in os.listdir(cache.root)
                     if n.endswith(".json")]
        assert remaining == ["cell02.json"]

    def test_traces_subdir_not_governed(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = ResultCache(str(tmp_path), limit_bytes=2 * size)
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / "trace.json").write_text("{}")
        self.fill(cache, 4)
        assert (traces / "trace.json").exists()
        assert not (tmp_path / "cell00.json").exists()

    def test_non_json_files_untouched(self, tmp_path):
        size = self.entry_size(tmp_path)
        notes = tmp_path / "README.txt"
        notes.write_text("x" * 10_000)
        cache = ResultCache(str(tmp_path), limit_bytes=2 * size)
        self.fill(cache, 4)
        assert notes.exists()

    def test_pruned_entry_is_a_clean_miss(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = ResultCache(str(tmp_path), limit_bytes=2 * size)
        self.fill(cache, 4)
        assert cache.get("cell00") is None
        assert cache.get("cell03") is not None

    def test_workbench_threads_cache_limit_through(self, tmp_path):
        wb = Workbench(scale=0.02, cache=str(tmp_path),
                       cache_limit=4 << 20)
        assert wb.cache.limit_bytes == 4 << 20
        ready = ResultCache(str(tmp_path))
        wb2 = Workbench(scale=0.02, cache=ready, cache_limit=1 << 20)
        assert ready.limit_bytes == 1 << 20
        assert wb2.cache is ready
