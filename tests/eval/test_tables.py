"""Tests for table rendering."""

import pytest

from repro.eval.tables import TableResult, format_table


def sample():
    return TableResult(
        exhibit="Table X",
        title="Sample",
        columns=["bench", "ratio", "count"],
        rows=[["cc1", 0.605, 10], ["go", None, 20]],
        formats={1: "%.2f"},
        notes="anchor text")


class TestAccessors:
    def test_cell(self):
        assert sample().cell(0, "ratio") == 0.605

    def test_column_values(self):
        assert sample().column_values("count") == [10, 20]

    def test_row_by_key(self):
        assert sample().row_by_key("go")[2] == 20
        with pytest.raises(KeyError):
            sample().row_by_key("perl")


class TestFormatting:
    def test_header_and_rows_present(self):
        text = format_table(sample())
        assert "Table X: Sample" in text
        assert "bench" in text and "cc1" in text

    def test_float_format_applied(self):
        assert "0.60" in format_table(sample())
        assert "0.605" not in format_table(sample())

    def test_none_renders_dash(self):
        lines = format_table(sample()).splitlines()
        go_line = next(line for line in lines if line.startswith("go"))
        assert "-" in go_line

    def test_notes_rendered(self):
        assert "note: anchor text" in format_table(sample())

    def test_columns_aligned(self):
        lines = format_table(sample()).splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_no_notes_section_when_empty(self):
        table = sample()
        table.notes = ""
        assert "note:" not in format_table(table)


class TestCsv:
    def test_csv_structure(self):
        from repro.eval.tables import table_to_csv
        text = table_to_csv(sample())
        lines = text.strip().splitlines()
        assert lines[0] == "bench,ratio,count"
        assert lines[1] == "cc1,0.60,10"
        assert lines[2] == "go,,20"

    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.eval.__main__ import main
        assert main(["figure2", "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "figure2.csv"
        assert csv_file.exists()
        assert "critical ready" in csv_file.read_text()
