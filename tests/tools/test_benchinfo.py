"""The shared bench-provenance block every BENCH_*.json writer uses."""

import json

from repro.tools.benchinfo import provenance, stamp, write_report

EXPECTED_KEYS = {"timestamp_utc", "python", "implementation", "platform",
                 "cpu_count", "git_sha"}


class TestProvenance:
    def test_keys(self):
        info = provenance()
        assert set(info) == EXPECTED_KEYS
        assert info["cpu_count"] >= 1
        assert info["python"].count(".") == 2

    def test_stamp_keeps_payload(self):
        record = stamp({"bench": "x", "speedup": 2.0})
        assert record["bench"] == "x" and record["speedup"] == 2.0
        assert set(record["provenance"]) == EXPECTED_KEYS

    def test_json_serialisable(self):
        json.dumps(stamp({"n": 1}))


class TestWriteReport:
    def test_writes_and_merges(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_report(str(path), {"first": {"a": 1}})
        write_report(str(path), {"second": {"b": 2}})
        record = json.loads(path.read_text())
        assert record["first"] == {"a": 1}
        assert record["second"] == {"b": 2}
        assert set(record["provenance"]) == EXPECTED_KEYS

    def test_merge_false_replaces(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_report(str(path), {"first": 1})
        write_report(str(path), {"second": 2}, merge=False)
        record = json.loads(path.read_text())
        assert "first" not in record and record["second"] == 2

    def test_overwrites_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json{")
        record = write_report(str(path), {"ok": True})
        assert record["ok"] is True
        assert json.loads(path.read_text())["ok"] is True
