"""Tests for the command-line tools (invoked in-process)."""

import pytest

from repro.tools import asm, codepack, disasm, run
from repro.tools.container import load_program

SOURCE = """
.text 0x400000
main:
    li $t0, 0
    li $t1, 25
loop:
    addiu $t0, $t0, 1
    bne $t0, $t1, loop
    move $a0, $t0
    li $v0, 1
    syscall
    li $v0, 10
    syscall
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "demo.s"
    path.write_text(SOURCE)
    return path


@pytest.fixture()
def program_file(tmp_path, source_file):
    out = tmp_path / "demo.ss32"
    assert asm.main([str(source_file), "-o", str(out)]) == 0
    return out


@pytest.fixture()
def image_file(tmp_path, program_file):
    out = tmp_path / "demo.cpk"
    assert codepack.main(["compress", str(program_file),
                          "-o", str(out)]) == 0
    return out


class TestAsm:
    def test_assembles(self, program_file):
        program = load_program(program_file)
        assert program.name == "demo"
        assert len(program) == 13

    def test_symbol_map(self, tmp_path, source_file):
        out = tmp_path / "demo.ss32"
        map_file = tmp_path / "demo.map"
        assert asm.main([str(source_file), "-o", str(out),
                         "--map", str(map_file)]) == 0
        text = map_file.read_text()
        assert "main" in text and "loop" in text

    def test_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.s"
        bad.write_text("frobnicate $t0\n")
        assert asm.main([str(bad), "-o", str(tmp_path / "x.ss32")]) == 1
        assert "line 1" in capsys.readouterr().err

    def test_custom_name(self, tmp_path, source_file):
        out = tmp_path / "demo.ss32"
        asm.main([str(source_file), "-o", str(out), "--name", "zippy"])
        assert load_program(out).name == "zippy"


class TestDisasm:
    def test_lists_instructions(self, program_file, capsys):
        assert disasm.main([str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "main:" in out
        assert "addiu $t0, $t0, 1" in out

    def test_start_and_count(self, program_file, capsys):
        assert disasm.main([str(program_file), "--start", "0x400010",
                            "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") <= 4

    def test_no_symbols(self, program_file, capsys):
        disasm.main([str(program_file), "--no-symbols"])
        assert "main:" not in capsys.readouterr().out


class TestCodepackCli:
    def test_inspect(self, image_file, capsys):
        assert codepack.main(["inspect", str(image_file)]) == 0
        out = capsys.readouterr().out
        assert "compressed" in out
        assert "dictionaries" in out

    def test_verify_ok(self, program_file, image_file, capsys):
        assert codepack.main(["verify", str(program_file),
                              str(image_file)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, tmp_path, program_file,
                                       image_file, capsys):
        # Corrupt the compressed stream: swap a dictionary entry so
        # decoding yields different (but decodable) instructions.
        from repro.tools.container import load_image, save_image
        image = load_image(image_file)
        entries = list(image.high_dict.entries)
        entries[0] ^= 0x0004
        image.high_dict = type(image.high_dict)(image.high_scheme,
                                                entries)
        bad = tmp_path / "bad.cpk"
        save_image(bad, image)
        assert codepack.main(["verify", str(program_file),
                              str(bad)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestRun:
    def test_native_report(self, program_file, capsys):
        assert run.main([str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "program output: 25" in out

    def test_codepack_modes(self, program_file, capsys):
        assert run.main([str(program_file), "--codepack"]) == 0
        assert "decompressor" in capsys.readouterr().out
        assert run.main([str(program_file), "--optimized"]) == 0

    def test_compare(self, program_file, image_file, capsys):
        assert run.main([str(program_file), "--compare",
                         "--image", str(image_file)]) == 0
        out = capsys.readouterr().out
        assert "native" in out and "codepack" in out

    def test_arch_selection(self, program_file, capsys):
        assert run.main([str(program_file), "--arch", "1-issue"]) == 0
        assert "1-issue" in capsys.readouterr().out

    def test_replay_matches_execute(self, program_file, capsys):
        assert run.main([str(program_file)]) == 0
        executed = capsys.readouterr().out
        assert run.main([str(program_file), "--replay"]) == 0
        assert capsys.readouterr().out == executed

    def test_trace_cache_implies_replay(self, tmp_path, program_file,
                                        capsys):
        cache_dir = tmp_path / "traces"
        assert run.main([str(program_file),
                         "--trace-cache", str(cache_dir)]) == 0
        first = capsys.readouterr().out
        assert list(cache_dir.glob("*.trace"))  # trace persisted
        assert run.main([str(program_file), "--codepack",
                         "--trace-cache", str(cache_dir)]) == 0
        assert "decompressor" in capsys.readouterr().out
        # --no-replay wins over the cache directory.
        assert run.main([str(program_file), "--no-replay",
                         "--trace-cache", str(cache_dir)]) == 0
        assert capsys.readouterr().out == first

    def test_compare_replay(self, program_file, image_file, capsys):
        assert run.main([str(program_file), "--compare",
                         "--image", str(image_file)]) == 0
        executed = capsys.readouterr().out
        assert run.main([str(program_file), "--compare", "--replay",
                         "--image", str(image_file)]) == 0
        assert capsys.readouterr().out == executed


class TestDensify:
    def test_translates_and_verifies(self, tmp_path, program_file,
                                     capsys):
        from repro.tools import densify
        out = tmp_path / "demo.ss16"
        assert densify.main([str(program_file), "-o", str(out),
                             "--verify"]) == 0
        text = capsys.readouterr().out
        assert "size ratio" in text
        assert "decode back exactly" in text
        assert out.stat().st_size > 0

    def test_output_smaller_than_input_text(self, tmp_path,
                                            program_file):
        from repro.tools import densify
        from repro.tools.container import load_program
        out = tmp_path / "demo.ss16"
        densify.main([str(program_file), "-o", str(out)])
        assert out.stat().st_size \
            <= load_program(program_file).text_size
