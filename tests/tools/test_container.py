"""Tests for the on-disk containers."""

import pytest

from repro.codepack.compressor import compress_program
from repro.tools.container import (
    ContainerError,
    load_image,
    load_program,
    save_image,
    save_program,
)
from tests.conftest import make_counting_program, make_memory_program


class TestProgramContainer:
    def test_roundtrip(self, tmp_path):
        prog = make_memory_program()
        path = tmp_path / "prog.ss32"
        save_program(path, prog)
        loaded = load_program(path)
        assert loaded.text == prog.text
        assert loaded.text_base == prog.text_base
        assert loaded.entry == prog.entry
        assert loaded.data == prog.data
        assert loaded.symbols == prog.symbols
        assert loaded.name == prog.name

    def test_loaded_program_runs_identically(self, tmp_path):
        from repro.sim import ARCH_1_ISSUE, simulate
        prog = make_counting_program(200)
        path = tmp_path / "prog.ss32"
        save_program(path, prog)
        original = simulate(prog, ARCH_1_ISSUE)
        reloaded = simulate(load_program(path), ARCH_1_ISSUE)
        assert reloaded.output == original.output
        assert reloaded.cycles == original.cycles

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.ss32"
        path.write_bytes(b"NOTSS32\0" + b"\0" * 64)
        with pytest.raises(ContainerError):
            load_program(path)

    def test_truncated_rejected(self, tmp_path):
        prog = make_counting_program(50)
        path = tmp_path / "prog.ss32"
        save_program(path, prog)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(ContainerError):
            load_program(path)

    def test_bad_version_rejected(self, tmp_path):
        prog = make_counting_program(5)
        path = tmp_path / "prog.ss32"
        save_program(path, prog)
        data = bytearray(path.read_bytes())
        data[8] = 99  # version byte
        path.write_bytes(bytes(data))
        with pytest.raises(ContainerError):
            load_program(path)


class TestImageContainer:
    def test_roundtrip(self, tmp_path, pegwit_small):
        image = compress_program(pegwit_small)
        path = tmp_path / "prog.cpk"
        save_image(path, image)
        loaded = load_image(path)
        assert loaded.code_bytes == image.code_bytes
        assert loaded.index_entries == image.index_entries
        assert loaded.high_dict.entries == image.high_dict.entries
        assert loaded.low_dict.entries == image.low_dict.entries
        assert loaded.blocks == image.blocks
        assert loaded.stats == image.stats
        assert loaded.compression_ratio == image.compression_ratio
        assert loaded.block_instructions == image.block_instructions
        assert loaded.group_blocks == image.group_blocks

    def test_loaded_image_decompresses(self, tmp_path):
        from repro.codepack.decompressor import decompress_program
        prog = make_memory_program()
        image = compress_program(prog)
        path = tmp_path / "prog.cpk"
        save_image(path, image)
        assert decompress_program(load_image(path)) == prog.text

    def test_loaded_image_simulates_identically(self, tmp_path):
        from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate
        prog = make_counting_program(300)
        image = compress_program(prog)
        path = tmp_path / "prog.cpk"
        save_image(path, image)
        a = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig(),
                     image=image)
        b = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig(),
                     image=load_image(path))
        assert a.cycles == b.cycles

    def test_wrong_container_type_rejected(self, tmp_path):
        prog = make_counting_program(5)
        path = tmp_path / "prog.ss32"
        save_program(path, prog)
        with pytest.raises(ContainerError):
            load_image(path)
