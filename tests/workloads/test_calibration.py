"""Tests for the calibration utilities."""

import pytest

from repro.workloads.calibration import (
    Measurement,
    check_suite,
    measure,
    tune_cold_threshold,
)
from repro.workloads.generators import CallHeavyParams


class TestMeasurement:
    def test_measure_basic(self, pegwit_small):
        m = measure(pegwit_small)
        assert m.name == "pegwit"
        assert m.text_bytes == pegwit_small.text_size
        assert 0 < m.compression_ratio < 1
        assert 0 <= m.miss_rate < 1
        assert m.instructions > 0

    def test_within_both_targets(self):
        m = Measurement("x", 1000, 0.60, 0.2, 0.05, 1000)
        assert m.within(0.06, 0.61)
        assert not m.within(0.10, 0.61)
        assert not m.within(0.06, 0.70)

    def test_within_miss_target_optional(self):
        m = Measurement("x", 1000, 0.60, 0.2, 0.05, 1000)
        assert m.within(None, 0.61)


class TestSuiteCheck:
    def test_kernels_hit_targets_at_small_scale(self):
        # The loop kernels' metrics are stable even at tiny scale.
        results = check_suite(scale=0.05, names=("mpeg2enc", "pegwit"),
                              miss_tol=0.02, ratio_tol=0.06)
        for name, (measurement, ok) in results.items():
            assert ok, (name, measurement)

    def test_returns_all_requested(self):
        results = check_suite(scale=0.02, names=("pegwit",))
        assert set(results) == {"pegwit"}


class TestTuning:
    def test_bisection_converges(self):
        params = CallHeavyParams(n_funcs=256, hot_funcs=32,
                                 cold_threshold=0, iterations=800,
                                 body_min=8, body_max=16, seed=3)
        tuned, measurement = tune_cold_threshold(
            params, target_miss=0.05, tolerance=0.01, max_steps=6,
            name="tune-test")
        assert abs(measurement.miss_rate - 0.05) < 0.03
        assert 0 <= tuned.cold_threshold <= 256

    def test_monotonicity_assumption_holds(self):
        """More cold calls means more I-misses (the bisection's
        premise)."""
        import dataclasses
        base = CallHeavyParams(n_funcs=256, hot_funcs=32,
                               cold_threshold=8, iterations=800,
                               body_min=8, body_max=16, seed=3)
        low = measure(_build(base))
        high = measure(_build(dataclasses.replace(base,
                                                  cold_threshold=128)))
        assert high.miss_rate > low.miss_rate


def _build(params):
    from repro.workloads.generators import build_call_heavy
    return build_call_heavy("mono-test", params)
