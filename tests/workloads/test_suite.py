"""Tests for the six-benchmark suite."""

import pytest

from repro.codepack.compressor import compress_program
from repro.codepack.decompressor import decompress_program
from repro.sim import ARCH_4_ISSUE, simulate
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    SUITE,
    build_benchmark,
    build_suite,
)


class TestSuiteDefinition:
    def test_all_six_paper_benchmarks_present(self):
        assert set(BENCHMARK_NAMES) \
            == {"cc1", "go", "mpeg2enc", "pegwit", "perl", "vortex"}

    def test_specs_carry_paper_numbers(self):
        for name in BENCHMARK_NAMES:
            spec = SUITE[name]
            assert 0.5 < spec.paper_compression_ratio < 0.7
            assert spec.paper_miss_rate is None \
                or 0 <= spec.paper_miss_rate < 0.1
            assert spec.description

    def test_build_suite_returns_all(self, small_suite):
        assert set(small_suite) == set(BENCHMARK_NAMES)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_benchmark("gcc")


class TestPrograms:
    def test_determinism(self):
        a = build_benchmark("perl", scale=0.02)
        b = build_benchmark("perl", scale=0.02)
        assert a.text == b.text

    def test_scale_changes_dynamic_not_static(self):
        small = build_benchmark("go", scale=0.02)
        big = build_benchmark("go", scale=0.04)
        assert small.text_size == big.text_size

    def test_names_match(self, small_suite):
        for name, prog in small_suite.items():
            assert prog.name == name

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_halts(self, small_suite, name):
        result = simulate(small_suite[name], ARCH_4_ISSUE,
                          max_instructions=2_000_000)
        assert not result.extra["truncated"]
        assert result.output


class TestCompressionProperties:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_roundtrip(self, small_suite, name):
        prog = small_suite[name]
        image = compress_program(prog)
        assert decompress_program(image) == prog.text

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_ratio_in_paper_band(self, small_suite, name):
        """The suite must compress like the paper's binaries: 54-66%."""
        image = compress_program(small_suite[name])
        assert 0.50 <= image.compression_ratio <= 0.68, \
            "%s ratio %.3f outside the calibrated band" \
            % (name, image.compression_ratio)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_raw_fraction_in_paper_band(self, small_suite, name):
        """Paper Table 4: 14-25% of the compressed image is raw bits."""
        stats = compress_program(small_suite[name]).stats
        raw = stats.fractions()["raw_bits"]
        assert 0.10 <= raw <= 0.30, "%s raw fraction %.3f" % (name, raw)


class TestCacheBehaviourShape:
    """Relative I-miss ordering must match paper Table 1."""

    def test_call_heavy_miss_more_than_kernels(self, small_suite):
        rates = {name: simulate(prog, ARCH_4_ISSUE,
                                max_instructions=2_000_000).icache_miss_rate
                 for name, prog in small_suite.items()}
        for heavy in ("cc1", "go", "perl", "vortex"):
            for kernel in ("mpeg2enc", "pegwit"):
                assert rates[heavy] > rates[kernel] * 5

    def test_kernels_essentially_never_miss(self, small_suite):
        for name in ("mpeg2enc", "pegwit"):
            result = simulate(small_suite[name], ARCH_4_ISSUE,
                              max_instructions=2_000_000)
            assert result.icache_miss_rate < 0.02
