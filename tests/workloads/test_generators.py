"""Tests for the synthetic program generators."""

import pytest

from repro.sim.cpu import FunctionalCore
from repro.workloads.generators import (
    CallHeavyParams,
    TABLE_BASE,
    build_call_heavy,
    build_crypto_kernel,
    build_media_kernel,
)

SMALL = CallHeavyParams(n_funcs=32, hot_funcs=8, cold_threshold=64,
                        iterations=200, body_min=6, body_max=12, seed=5)


class TestParams:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            CallHeavyParams(n_funcs=1000)
        with pytest.raises(ValueError):
            CallHeavyParams(hot_funcs=48)

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            CallHeavyParams(cold_threshold=300)

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            CallHeavyParams(reg_profile="mystery")

    def test_cold_window_power_of_two(self):
        with pytest.raises(ValueError):
            CallHeavyParams(cold_window=3)


class TestCallHeavy:
    def test_determinism(self):
        a = build_call_heavy("x", SMALL)
        b = build_call_heavy("x", SMALL)
        assert a.text == b.text
        assert a.data == b.data

    def test_different_seed_different_program(self):
        import dataclasses
        other = dataclasses.replace(SMALL, seed=6)
        assert build_call_heavy("x", SMALL).text \
            != build_call_heavy("x", other).text

    def test_runs_to_completion(self):
        prog = build_call_heavy("x", SMALL)
        core = FunctionalCore(prog)
        core.run(max_instructions=500_000)
        assert core.halted
        assert core.output  # prints the checksum

    def test_dispatch_table_points_at_functions(self):
        prog = build_call_heavy("x", SMALL)
        for i in range(SMALL.n_funcs):
            addr = 0
            for k in range(4):
                addr = (addr << 8) | prog.data[TABLE_BASE + 4 * i + k]
            assert addr == prog.symbols["fn_%d" % i]
            assert prog.contains_text(addr)

    def test_stack_discipline(self):
        """$sp must return to its initial value after every call; if a
        generated function corrupted the stack the run would fault or
        the final $sp would drift."""
        prog = build_call_heavy("x", SMALL)
        core = FunctionalCore(prog)
        initial_sp = core.regs[29]
        core.run(max_instructions=500_000)
        assert core.regs[29] == initial_sp

    def test_footprint_scales_with_n_funcs(self):
        import dataclasses
        small = build_call_heavy("s", SMALL)
        big = build_call_heavy(
            "b", dataclasses.replace(SMALL, n_funcs=128))
        assert big.text_size > 2 * small.text_size

    def test_windowed_variant_builds_and_runs(self):
        import dataclasses
        params = dataclasses.replace(SMALL, cold_window=8)
        core = FunctionalCore(build_call_heavy("w", params))
        core.run(max_instructions=500_000)
        assert core.halted


class TestMediaKernel:
    def test_runs_and_prints_checksum(self):
        prog = build_media_kernel(iterations=5, dead_funcs=4)
        core = FunctionalCore(prog)
        core.run(max_instructions=100_000)
        assert core.halted
        assert core.output

    def test_checksum_depends_on_iterations(self):
        one = build_media_kernel(iterations=1, dead_funcs=0)
        two = build_media_kernel(iterations=2, dead_funcs=0)
        a, b = FunctionalCore(one), FunctionalCore(two)
        a.run(max_instructions=100_000)
        b.run(max_instructions=100_000)
        assert a.output != b.output

    def test_dead_library_grows_text_only(self):
        lean = build_media_kernel(iterations=3, dead_funcs=0)
        fat = build_media_kernel(iterations=3, dead_funcs=50)
        assert fat.text_size > lean.text_size
        a, b = FunctionalCore(lean), FunctionalCore(fat)
        a.run(max_instructions=100_000)
        b.run(max_instructions=100_000)
        assert a.output == b.output
        assert a.instret == b.instret


class TestCryptoKernel:
    def test_runs_to_completion(self):
        prog = build_crypto_kernel(iterations=600, cold_funcs=8,
                                   excursion_mask=63, dead_funcs=4)
        core = FunctionalCore(prog)
        core.run(max_instructions=200_000)
        assert core.halted

    def test_excursions_execute_cold_code(self):
        prog = build_crypto_kernel(iterations=600, cold_funcs=8,
                                   excursion_mask=63, dead_funcs=0)
        core = FunctionalCore(prog)
        core.run(max_instructions=200_000)
        # At least one excursion must have jumped through the table.
        visited = set()
        pcs = core.instret
        assert pcs > 600 * 20 * 0.5 or True  # sanity on dynamic length
        # Re-run tracking fn entry addresses.
        fn_addrs = {prog.symbols["fn_%d" % i] for i in range(8)}
        core2 = FunctionalCore(prog)
        while not core2.halted:
            if core2.pc in fn_addrs:
                visited.add(core2.pc)
            core2.step()
        assert visited

    def test_determinism(self):
        a = build_crypto_kernel(iterations=100, dead_funcs=2)
        b = build_crypto_kernel(iterations=100, dead_funcs=2)
        assert a.text == b.text
