"""Tests for composition accounting."""

import pytest

from repro.codepack.stats import CompositionStats


class TestTotals:
    def test_total_bits(self):
        stats = CompositionStats(index_table_bits=32, dictionary_bits=64,
                                 compressed_tag_bits=10,
                                 dictionary_index_bits=20, raw_tag_bits=3,
                                 raw_bits=16, pad_bits=7)
        assert stats.total_bits == 152
        assert stats.total_bytes == 19

    def test_unaligned_total_rejected(self):
        with pytest.raises(ValueError):
            CompositionStats(raw_bits=3).total_bytes

    def test_empty_fractions(self):
        assert all(v == 0.0
                   for v in CompositionStats().fractions().values())

    def test_fractions_sum_to_one(self):
        stats = CompositionStats(index_table_bits=10, raw_bits=30)
        assert abs(sum(stats.fractions().values()) - 1.0) < 1e-12


class TestMerge:
    def test_merged_adds_fieldwise(self):
        a = CompositionStats(raw_bits=8, pad_bits=1)
        b = CompositionStats(raw_bits=8, compressed_tag_bits=4)
        merged = a.merged(b)
        assert merged.raw_bits == 16
        assert merged.pad_bits == 1
        assert merged.compressed_tag_bits == 4

    def test_merge_does_not_mutate(self):
        a = CompositionStats(raw_bits=8)
        a.merged(CompositionStats(raw_bits=8))
        assert a.raw_bits == 8


class TestRow:
    def test_as_row_order_matches_table4(self):
        stats = CompositionStats(index_table_bits=8, dictionary_bits=8,
                                 compressed_tag_bits=8,
                                 dictionary_index_bits=8, raw_tag_bits=8,
                                 raw_bits=8, pad_bits=8)
        row = stats.as_row()
        assert len(row) == 8
        assert all(abs(f - 1.0 / 7) < 1e-12 for f in row[:7])
        assert row[7] == 7
