"""Tests for the CodePack encoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.compressor import (
    BLOCK_INSTRUCTIONS,
    GROUP_BLOCKS,
    GROUP_INSTRUCTIONS,
    compress_program,
    compress_words,
)
from repro.codepack.decompressor import decompress_program
from tests.conftest import make_counting_program

WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestBlockGeometry:
    def test_block_count(self):
        image = compress_words([0] * 40)
        assert image.n_blocks == 3
        assert [b.n_instructions for b in image.blocks] == [16, 16, 8]

    def test_blocks_byte_aligned_and_contiguous(self):
        image = compress_words(list(range(100, 164)))
        offset = 0
        for block in image.blocks:
            assert block.byte_offset == offset
            offset += block.byte_length
        assert offset == len(image.code_bytes)

    def test_inst_end_bits_monotonic_and_within_block(self):
        image = compress_words(list(range(200, 264)))
        for block in image.blocks:
            ends = block.inst_end_bits
            assert len(ends) == block.n_instructions
            assert all(ends[i] < ends[i + 1] for i in range(len(ends) - 1))
            assert ends[-1] <= block.bit_length

    def test_group_count(self):
        image = compress_words([0] * (GROUP_INSTRUCTIONS * 3 + 1))
        assert image.n_groups == 4  # three full groups + one for the tail


class TestIndexEntries:
    def test_entries_locate_blocks(self):
        image = compress_words(list(range(0x1000, 0x1000 + 96)))
        for group, entry in enumerate(image.index_entries):
            first = image.blocks[group * GROUP_BLOCKS]
            assert entry.block1_base == first.byte_offset
            if group * GROUP_BLOCKS + 1 < image.n_blocks:
                second = image.blocks[group * GROUP_BLOCKS + 1]
                assert entry.block2_base == second.byte_offset

    def test_raw_flags_match_blocks(self):
        # Random-looking words compress badly and trigger raw escapes.
        words = [(i * 2654435761) & 0xFFFFFFFF for i in range(64)]
        image = compress_words(words)
        for block in image.blocks:
            entry = image.index_entries[block.index // GROUP_BLOCKS]
            flag = entry.block1_raw if block.index % GROUP_BLOCKS == 0 \
                else entry.block2_raw
            assert flag == block.is_raw


class TestRawEscape:
    def test_incompressible_block_stored_raw(self):
        words = [(i * 2654435761 + 12345) & 0xFFFFFFFF for i in range(16)]
        image = compress_words(words)
        block = image.blocks[0]
        assert block.is_raw
        assert block.byte_length == 16 * 4
        assert block.inst_end_bits == tuple(32 * (i + 1) for i in range(16))

    def test_compressible_block_not_raw(self):
        image = compress_words([0x12340000] * 16)
        assert not image.blocks[0].is_raw
        assert image.blocks[0].byte_length < 64


class TestSizeAccounting:
    def test_stats_sum_to_image_size(self):
        prog = make_counting_program()
        image = compress_program(prog)
        stats = image.stats
        code_bits = len(image.code_bytes) * 8
        accounted_code = (stats.compressed_tag_bits
                          + stats.dictionary_index_bits
                          + stats.raw_tag_bits + stats.raw_bits
                          + stats.pad_bits)
        assert accounted_code == code_bits
        assert stats.index_table_bits == image.n_groups * 32
        assert stats.total_bytes == image.compressed_bytes

    def test_fractions_sum_to_one(self):
        image = compress_program(make_counting_program())
        assert abs(sum(image.stats.fractions().values()) - 1.0) < 1e-9

    def test_compression_ratio_definition(self):
        image = compress_program(make_counting_program())
        assert image.compression_ratio \
            == image.compressed_bytes / image.original_bytes

    def test_repetitive_code_compresses_well(self):
        words = [0x24210001, 0x24420002, 0x00851021] * 200
        image = compress_words(words)
        assert image.compression_ratio < 0.55


class TestAddressMapping:
    def test_block_of_address(self):
        image = compress_words([0] * 48, text_base=0x400000)
        assert image.block_of_address(0x400000) == 0
        assert image.block_of_address(0x400000 + 16 * 4) == 1
        assert image.block_of_address(0x400000 + 47 * 4) == 2

    def test_block_of_address_out_of_range(self):
        image = compress_words([0] * 16, text_base=0x400000)
        with pytest.raises(IndexError):
            image.block_of_address(0x400000 + 16 * 4)

    def test_group_of_address(self):
        image = compress_words([0] * 64, text_base=0)
        assert image.group_of_address(0) == 0
        assert image.group_of_address(32 * 4) == 1

    def test_slot_in_block(self):
        image = compress_words([0] * 32, text_base=0x400000)
        assert image.slot_in_block(0x400000) == 0
        assert image.slot_in_block(0x400000 + 4 * 17) == 1

    def test_block_base_address(self):
        image = compress_words([0] * 32, text_base=0x400000)
        assert image.block_base_address(1) \
            == 0x400000 + BLOCK_INSTRUCTIONS * 4


@settings(max_examples=50, deadline=None)
@given(st.lists(WORD, min_size=1, max_size=200))
def test_roundtrip_arbitrary_words(words):
    """Compression followed by decompression is the identity."""
    image = compress_words(words)
    assert decompress_program(image) == words


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from([0x24210001, 0x8FBF002C, 0x00851021,
                                 0x3C081010, 0xAFBF002C, 0x03E00008]),
                min_size=1, max_size=300))
def test_roundtrip_repetitive_words(words):
    """Highly repetitive (dictionary-heavy) streams also round-trip."""
    image = compress_words(words)
    assert decompress_program(image) == words
    assert image.n_instructions == len(words)


class TestPrebuiltDictionaries:
    def test_generic_dictionaries_roundtrip(self):
        """Compression with a foreign program's dictionaries is still
        lossless (missing symbols fall back to raw escapes)."""
        from repro.codepack.dictionary import build_dictionaries
        donor = [0x24210001, 0x8FBF002C, 0x00851021] * 50
        target = [0x3C081234, 0x35080042, 0x24210001] * 40
        high, low = build_dictionaries(donor)
        image = compress_words(target, high_dict=high, low_dict=low)
        assert decompress_program(image) == target

    def test_adaptation_never_loses(self):
        """Per-program dictionaries compress at least as well as any
        fixed donor dictionary (paper S3.1's load-time adaptation)."""
        from repro.codepack.dictionary import build_dictionaries
        donor = [0x24210001, 0x00851021] * 100
        target = [0x3C081234 + i % 7 for i in range(200)]
        high, low = build_dictionaries(donor)
        own = compress_words(target)
        generic = compress_words(target, high_dict=high, low_dict=low)
        assert own.compression_ratio <= generic.compression_ratio + 1e-9

    def test_partial_override(self):
        from repro.codepack.dictionary import build_dictionaries
        words = [0x24210001] * 40
        high, _ = build_dictionaries(words)
        image = compress_words(words, high_dict=high)  # low auto-built
        assert decompress_program(image) == words
