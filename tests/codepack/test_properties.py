"""Property-based round-trip tests for the CodePack codec.

Hypothesis drives arbitrary instruction streams through the fast
compressor and both decoders.  The invariants:

* compress -> decompress is the identity on any word list;
* the fast path is bit-exact against the reference on any word list
  (the generalized form of the seeded differential sweep);
* geometry holds for block counts that are not multiples of the
  16-instruction block or 32-instruction group.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.compressor import (
    BLOCK_INSTRUCTIONS,
    GROUP_INSTRUCTIONS,
    compress_words,
)
from repro.codepack.decompressor import decompress_block, decompress_program
from repro.codepack.reference import (
    compress_words_reference,
    decompress_program_reference,
)

word = st.integers(min_value=0, max_value=0xFFFFFFFF)
#: All-zero low halves: the paper's dominant low symbol / zero escape.
zero_low_word = st.builds(lambda high: high << 16,
                          st.integers(min_value=0, max_value=0xFFFF))

word_lists = st.lists(word, max_size=150)
zero_low_lists = st.lists(zero_low_word, max_size=150)
#: Tiny alphabet: everything dictionary-compressed.
repetitive_lists = st.lists(st.sampled_from(
    [0x00000000, 0x8C820000, 0x24420001, 0xAFBF0014]), max_size=150)


@settings(max_examples=60, deadline=None)
@given(words=word_lists)
def test_roundtrip_arbitrary_words(words):
    image = compress_words(words)
    assert decompress_program(image) == words


@settings(max_examples=40, deadline=None)
@given(words=word_lists)
def test_fast_matches_reference(words):
    fast = compress_words(words)
    ref = compress_words_reference(words)
    assert fast.code_bytes == ref.code_bytes
    assert fast.index_entries == ref.index_entries
    assert fast.stats == ref.stats
    assert fast.blocks == ref.blocks
    assert decompress_program_reference(ref) == words


@settings(max_examples=40, deadline=None)
@given(words=zero_low_lists)
def test_roundtrip_all_zero_low_halves(words):
    image = compress_words(words)
    assert decompress_program(image) == words
    # Every low half costs the 2-bit zero tag; none may be raw bits
    # unless whole blocks fell back to raw.
    if not any(block.is_raw for block in image.blocks):
        assert image.stats.raw_bits % 16 == 0


@settings(max_examples=40, deadline=None)
@given(words=repetitive_lists)
def test_roundtrip_repetitive_words(words):
    image = compress_words(words)
    assert decompress_program(image) == words


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=0, max_value=3 * GROUP_INSTRUCTIONS + 5),
       seed=st.integers(min_value=0, max_value=2**16))
def test_geometry_off_boundary_block_counts(n, seed):
    """Block counts that are NOT multiples of 16/32 keep exact
    geometry: block sizes, group count, instruction partition."""
    import random

    rng = random.Random(seed)
    words = [rng.getrandbits(32) for _ in range(n)]
    image = compress_words(words)
    expected_blocks = -(-n // BLOCK_INSTRUCTIONS)
    assert image.n_blocks == expected_blocks
    assert image.n_groups == -(-expected_blocks // image.group_blocks)
    assert sum(b.n_instructions for b in image.blocks) == n
    if n % BLOCK_INSTRUCTIONS:
        assert image.blocks[-1].n_instructions == n % BLOCK_INSTRUCTIONS
    decoded = []
    for i in range(image.n_blocks):
        decoded.extend(decompress_block(image, i))
    assert decoded == words


@settings(max_examples=30, deadline=None)
@given(words=st.lists(word, min_size=BLOCK_INSTRUCTIONS,
                      max_size=2 * GROUP_INSTRUCTIONS))
def test_all_raw_blocks_roundtrip(words):
    """Uniformly random words rarely compress; whole-block raw escapes
    must round-trip and keep native geometry."""
    image = compress_words(words)
    assert decompress_program(image) == words
    for block in image.blocks:
        if block.is_raw:
            assert block.byte_length == 4 * block.n_instructions
            assert block.inst_end_bits == tuple(
                32 * (i + 1) for i in range(block.n_instructions))
