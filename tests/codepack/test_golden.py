"""Golden bitstream regression tests.

``tests/codepack/golden/*.json`` pin the exact compressed artifacts --
code bytes, index table, and composition stats -- of a set of fixed
programs.  Any change to the bitstream layout, dictionary construction,
codeword allocation, or stat accounting shows up here as a byte-for-byte
diff, separating "intentional format change" (regenerate the fixtures,
review the diff) from "accidental corruption" (fix the codec).

Every implementation tier is held to the same goldens: the scalar fast
path, the per-bit reference, and (when NumPy is importable) the
vectorized kernels -- including the fused shared-dictionary batch path,
which ``golden/batch_shared.json`` pins program-by-program.  A drift in
any one tier's bytes fails here by name.

Regenerate after an intentional format change with::

    PYTHONPATH=src:. python tests/codepack/test_golden.py
"""

import json
import pathlib

import pytest

from repro.codepack import veccodec
from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.dictionary import build_dictionaries
from repro.codepack.reference import compress_words_reference

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

STAT_FIELDS = (
    "index_table_bits",
    "dictionary_bits",
    "compressed_tag_bits",
    "dictionary_index_bits",
    "raw_tag_bits",
    "raw_bits",
    "pad_bits",
)


def golden_programs():
    """The pinned inputs: deterministic word lists of varied shape."""
    from tests.conftest import (
        make_counting_program,
        make_static_program,
        random_words,
    )
    import random

    programs = {
        "counting": make_counting_program().text,
        "static100": make_static_program(100).text,
        # Mid-group tail: 3 blocks = 1.5 groups.
        "tail48minus1": random_words(random.Random(101), 47, "workload"),
        "zero_low": random_words(random.Random(202), 80, "zero_low"),
        "incompressible": random_words(random.Random(303), 64,
                                       "incompressible"),
        "empty": [],
    }
    return programs


def image_record(image):
    return {
        "code_hex": image.code_bytes.hex(),
        "index_entries": [[e.block1_base, e.block2_offset,
                           e.block1_raw, e.block2_raw]
                          for e in image.index_entries],
        "stats": {f: getattr(image.stats, f) for f in STAT_FIELDS},
        "n_instructions": image.n_instructions,
        "high_dict": list(image.high_dict.entries),
        "low_dict": list(image.low_dict.entries),
        "blocks": [[b.byte_offset, b.byte_length, b.is_raw,
                    b.n_instructions] for b in image.blocks],
    }


def batch_shared_programs():
    """The fused-batch fixture inputs: ragged programs, one dictionary.

    The shapes are chosen to exercise the fused kernel's span handling
    in one batch: an empty program, a sub-block tail, exact block and
    group multiples, a mid-group tail, and an incompressible stretch
    that forces whole-block raw escapes.
    """
    from tests.conftest import random_words
    import random

    rng = random.Random(404)
    programs = [
        [],
        random_words(rng, 7, "workload"),
        random_words(rng, 16, "zero_low"),
        random_words(rng, 32, "incompressible"),
        random_words(rng, 47, "workload"),
        random_words(rng, 3, "repetitive"),
    ]
    donor = [word for program in programs for word in program]
    return programs, build_dictionaries(donor)


def _implementations(words, name, high_dict=None, low_dict=None):
    """Every tier's compression of *words*, labelled."""
    kwargs = {"name": name, "high_dict": high_dict, "low_dict": low_dict}
    impls = [("fast", compress_words(words, **kwargs)),
             ("reference", compress_words_reference(words, **kwargs))]
    if veccodec.available():
        impls.append(("veccodec",
                      veccodec.compress_words_vec(words, **kwargs)))
    return impls


@pytest.mark.parametrize("name", sorted(golden_programs()))
def test_golden_bitstream(name):
    path = GOLDEN_DIR / ("%s.json" % name)
    golden = json.loads(path.read_text())
    words = golden["words"]
    assert golden_programs()[name] == words, \
        "golden input drifted; regenerate fixtures"

    for label, image in _implementations(words, name):
        record = image_record(image)
        for key, expected in golden["image"].items():
            assert record[key] == expected, \
                "%s path diverged from golden %s: %s" % (label, name, key)
        assert decompress_program(image) == words
        if veccodec.available():
            assert veccodec.decompress_program_vec(image) == words


def test_golden_batch_shared_dictionary():
    """The fused batch path is pinned program-by-program.

    Each program's image must match its committed record whether it was
    compressed alone (any tier) or as part of the single fused
    shared-dictionary kernel pass.
    """
    golden = json.loads((GOLDEN_DIR / "batch_shared.json").read_text())
    programs, (high_dict, low_dict) = batch_shared_programs()
    assert [list(p) for p in programs] == golden["programs"], \
        "golden input drifted; regenerate fixtures"

    per_program = []
    for i, words in enumerate(programs):
        per_program.append(
            _implementations(words, "batch%d" % i,
                             high_dict=high_dict, low_dict=low_dict))
    if veccodec.available():
        fused = veccodec.compress_many_vec(programs, high_dict=high_dict,
                                           low_dict=low_dict)
        for i, image in enumerate(fused):
            per_program[i].append(("veccodec-fused", image))

    for i, impls in enumerate(per_program):
        expected = golden["images"][i]
        for label, image in impls:
            assert image_record(image) == expected, \
                "%s diverged from golden batch program %d" % (label, i)


def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, words in golden_programs().items():
        image = compress_words(words, name=name)
        ref = compress_words_reference(words, name=name)
        record = image_record(image)
        assert record == image_record(ref), "fast != reference during regen"
        path = GOLDEN_DIR / ("%s.json" % name)
        path.write_text(json.dumps({"words": words, "image": record},
                                   indent=1) + "\n")
        print("wrote", path)

    programs, (high_dict, low_dict) = batch_shared_programs()
    records = []
    for i, words in enumerate(programs):
        image = compress_words(words, name="batch%d" % i,
                               high_dict=high_dict, low_dict=low_dict)
        ref = compress_words_reference(words, name="batch%d" % i,
                                       high_dict=high_dict,
                                       low_dict=low_dict)
        record = image_record(image)
        assert record == image_record(ref), "fast != reference during regen"
        records.append(record)
    path = GOLDEN_DIR / "batch_shared.json"
    path.write_text(json.dumps(
        {"programs": [list(p) for p in programs], "images": records},
        indent=1) + "\n")
    print("wrote", path)


if __name__ == "__main__":
    regenerate()
