"""Golden bitstream regression tests.

``tests/codepack/golden/*.json`` pin the exact compressed artifacts --
code bytes, index table, and composition stats -- of a set of fixed
programs.  Any change to the bitstream layout, dictionary construction,
codeword allocation, or stat accounting shows up here as a byte-for-byte
diff, separating "intentional format change" (regenerate the fixtures,
review the diff) from "accidental corruption" (fix the codec).

Regenerate after an intentional format change with::

    PYTHONPATH=src:. python tests/codepack/test_golden.py
"""

import json
import pathlib

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.reference import compress_words_reference

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

STAT_FIELDS = (
    "index_table_bits",
    "dictionary_bits",
    "compressed_tag_bits",
    "dictionary_index_bits",
    "raw_tag_bits",
    "raw_bits",
    "pad_bits",
)


def golden_programs():
    """The pinned inputs: deterministic word lists of varied shape."""
    from tests.conftest import (
        make_counting_program,
        make_static_program,
        random_words,
    )
    import random

    programs = {
        "counting": make_counting_program().text,
        "static100": make_static_program(100).text,
        # Mid-group tail: 3 blocks = 1.5 groups.
        "tail48minus1": random_words(random.Random(101), 47, "workload"),
        "zero_low": random_words(random.Random(202), 80, "zero_low"),
        "incompressible": random_words(random.Random(303), 64,
                                       "incompressible"),
        "empty": [],
    }
    return programs


def image_record(image):
    return {
        "code_hex": image.code_bytes.hex(),
        "index_entries": [[e.block1_base, e.block2_offset,
                           e.block1_raw, e.block2_raw]
                          for e in image.index_entries],
        "stats": {f: getattr(image.stats, f) for f in STAT_FIELDS},
        "n_instructions": image.n_instructions,
        "high_dict": list(image.high_dict.entries),
        "low_dict": list(image.low_dict.entries),
        "blocks": [[b.byte_offset, b.byte_length, b.is_raw,
                    b.n_instructions] for b in image.blocks],
    }


@pytest.mark.parametrize("name", sorted(golden_programs()))
def test_golden_bitstream(name):
    path = GOLDEN_DIR / ("%s.json" % name)
    golden = json.loads(path.read_text())
    words = golden["words"]
    assert golden_programs()[name] == words, \
        "golden input drifted; regenerate fixtures"

    for label, image in (("fast", compress_words(words, name=name)),
                         ("reference",
                          compress_words_reference(words, name=name))):
        record = image_record(image)
        for key, expected in golden["image"].items():
            assert record[key] == expected, \
                "%s path diverged from golden %s: %s" % (label, name, key)
        assert decompress_program(image) == words


def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, words in golden_programs().items():
        image = compress_words(words, name=name)
        ref = compress_words_reference(words, name=name)
        record = image_record(image)
        assert record == image_record(ref), "fast != reference during regen"
        path = GOLDEN_DIR / ("%s.json" % name)
        path.write_text(json.dumps({"words": words, "image": record},
                                   indent=1) + "\n")
        print("wrote", path)


if __name__ == "__main__":
    regenerate()
