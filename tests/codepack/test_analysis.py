"""Tests for the entropy/coverage analysis module."""

import math
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codepack.analysis import (
    coverage_report,
    entropy_report,
    format_entropy_report,
    shannon_entropy,
)
from repro.codepack.compressor import compress_program
from tests.conftest import make_counting_program


class TestShannonEntropy:
    def test_uniform_distribution(self):
        hist = {i: 1 for i in range(8)}
        assert shannon_entropy(hist) == pytest.approx(3.0)

    def test_single_symbol_is_zero(self):
        assert shannon_entropy({42: 100}) == 0.0

    def test_empty_is_zero(self):
        assert shannon_entropy({}) == 0.0

    def test_biased_coin(self):
        hist = {0: 3, 1: 1}
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert shannon_entropy(hist) == pytest.approx(expected)

    @given(st.dictionaries(st.integers(0, 1000), st.integers(1, 100),
                           min_size=1, max_size=64))
    def test_bounds(self, hist):
        entropy = shannon_entropy(hist)
        assert 0.0 <= entropy <= math.log2(len(hist)) + 1e-9


class TestEntropyReport:
    @pytest.fixture(scope="class")
    def report(self, cc1_small):
        image = compress_program(cc1_small)
        return entropy_report(cc1_small, image)

    def test_achieved_above_bound(self, report):
        """No symbol coder beats the zeroth-order entropy."""
        assert report.achieved_bits_per_instruction \
            >= report.bound_bits_per_instruction - 1e-9

    def test_efficiency_in_unit_interval(self, report):
        assert 0.0 < report.coding_efficiency <= 1.0

    def test_codepack_reasonably_efficient(self, report):
        """The tagged scheme should land within ~65-100% of entropy."""
        assert report.coding_efficiency > 0.60

    def test_bound_ratio_below_achieved_ratio(self, report, cc1_small):
        image = compress_program(cc1_small)
        assert report.bound_ratio < image.compression_ratio

    def test_formatting(self, report):
        text = format_entropy_report(report)
        assert "bits/instruction" in text
        assert "entropy" in text


class TestCoverage:
    @pytest.fixture(scope="class")
    def artifacts(self, cc1_small):
        image = compress_program(cc1_small)
        return cc1_small, image, coverage_report(cc1_small, image)

    def test_occurrences_account_for_every_symbol(self, artifacts):
        program, image, report = artifacts
        for stream in ("high", "low"):
            total = sum(row.occurrences for row in report[stream])
            assert total == len(program.text)

    def test_bits_match_image_stats(self, artifacts):
        """Sum of class bits equals the compressor's own accounting
        (modulo raw-escaped whole blocks, absent in this program)."""
        program, image, report = artifacts
        if any(block.is_raw for block in image.blocks):
            pytest.skip("raw blocks break per-symbol accounting")
        stats = image.stats
        total_bits = sum(row.total_bits
                         for stream in report.values() for row in stream)
        assert total_bits == (stats.compressed_tag_bits
                              + stats.dictionary_index_bits
                              + stats.raw_tag_bits + stats.raw_bits)

    def test_low_stream_has_zero_escape(self, artifacts):
        _, _, report = artifacts
        labels = [row.label for row in report["low"]]
        assert any("zero escape" in label for label in labels)
        assert not any("zero escape" in row.label
                       for row in report["high"])

    def test_raw_class_present_in_both(self, artifacts):
        _, _, report = artifacts
        for stream in ("high", "low"):
            assert "raw escape" in report[stream][-1].label

    def test_fraction_helper(self, artifacts):
        _, _, report = artifacts
        fractions = [row.fraction_of(len(artifacts[0].text))
                     for row in report["low"]]
        assert abs(sum(fractions) - 1.0) < 1e-9

    def test_counting_program_zero_heavy(self):
        # lui-heavy code has many zero low halfwords.
        prog = make_counting_program(10)
        image = compress_program(prog)
        report = coverage_report(prog, image)
        zero_row = report["low"][0]
        assert "zero escape" in zero_row.label
        assert zero_row.occurrences > 0
