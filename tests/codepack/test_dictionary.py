"""Tests for dictionary construction."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME
from repro.codepack.dictionary import (
    DICTIONARY_ENTRY_BITS,
    DICTIONARY_HEADER_BITS,
    Dictionary,
    build_dictionaries,
    build_dictionary,
    halfword_histograms,
)


class TestHistogram:
    def test_counts_both_halves(self):
        high, low = halfword_histograms([0x11112222, 0x11113333])
        assert high[0x1111] == 2
        assert low[0x2222] == 1
        assert low[0x3333] == 1


class TestDictionaryObject:
    def test_slot_lookup(self):
        d = Dictionary(HIGH_SCHEME, [10, 20, 30])
        assert d.slot(20) == 1
        assert d.slot(99) is None
        assert d.value(2) == 30
        assert 10 in d and 99 not in d
        assert len(d) == 3

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ValueError):
            Dictionary(HIGH_SCHEME, [1, 1])

    def test_zero_banned_from_low_dictionary(self):
        with pytest.raises(ValueError):
            Dictionary(LOW_SCHEME, [0])
        Dictionary(HIGH_SCHEME, [0])  # fine for the high stream

    def test_over_capacity_rejected(self):
        entries = list(range(HIGH_SCHEME.dictionary_capacity + 1))
        with pytest.raises(ValueError):
            Dictionary(HIGH_SCHEME, entries)

    def test_storage_bits(self):
        d = Dictionary(HIGH_SCHEME, [1, 2])
        assert d.storage_bits \
            == DICTIONARY_HEADER_BITS + 2 * DICTIONARY_ENTRY_BITS


class TestBuild:
    def test_most_frequent_gets_smallest_slot(self):
        hist = Counter({5: 100, 6: 50, 7: 10})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert d.entries[:3] == [5, 6, 7]

    def test_ties_broken_by_value(self):
        hist = Counter({9: 10, 3: 10, 7: 10})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert d.entries[:3] == [3, 7, 9]

    def test_zero_never_admitted_to_low(self):
        hist = Counter({0: 10_000, 1: 5})
        d = build_dictionary(LOW_SCHEME, hist)
        assert 0 not in d

    def test_singletons_left_raw(self):
        # One occurrence saves at most 19-6=13 bits but costs a 16-bit
        # dictionary slot: not profitable.
        hist = Counter({v: 1 for v in range(100)})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert len(d) == 0

    def test_frequent_values_admitted(self):
        hist = Counter({v: 50 for v in range(10)})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert len(d) == 10

    def test_admission_is_profitable_only(self):
        # Entry 80+ of the low scheme costs 11 bits encoded; with count
        # c the saving is c*(19-11)=8c which must exceed 16 bits.
        hist = Counter({v: 1000 for v in range(1, 81)})
        hist[999] = 2  # 8*2 = 16 == 16: not strictly profitable
        d = build_dictionary(LOW_SCHEME, hist)
        assert 999 not in d

    def test_build_pair(self):
        words = [0x34120000, 0x34120004] * 10
        high, low = build_dictionaries(words)
        assert high.slot(0x3412) is not None
        assert low.slot(0x0004) is not None
        assert low.slot(0x0000) is None  # zero is the tag-only escape


@given(st.dictionaries(st.integers(1, 0xFFFF), st.integers(1, 1000),
                       max_size=600))
def test_build_never_exceeds_capacity_or_misorders(hist):
    d = build_dictionary(LOW_SCHEME, Counter(hist))
    assert len(d) <= LOW_SCHEME.dictionary_capacity
    # Entry order must be non-increasing in count (shortest codewords go
    # to the most frequent values).
    counts = [hist[v] for v in d.entries]
    assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))
    assert 0 not in d


class TestBincountParity:
    """The NumPy bincount tier must be invisible: identical histograms
    and byte-identical compressed containers versus the scalar path."""

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=400))
    def test_histograms_match_reference(self, words):
        high, low = halfword_histograms(words)
        assert high == Counter((w >> 16) & 0xFFFF for w in words)
        assert low == Counter(w & 0xFFFF for w in words)

    def test_numpy_tier_is_active_when_available(self):
        numpy = pytest.importorskip("numpy")
        from repro.codepack import dictionary as mod
        assert mod._np is numpy

    def test_container_byte_identical_without_numpy(self, tmp_path):
        """A no-NumPy subprocess (import shim) compresses the same
        program to the very same container bytes -- the vectorized
        histogram cannot leak into the artifact."""
        pytest.importorskip("numpy")
        import os
        import subprocess
        import sys

        from repro.codepack.compressor import compress_words
        from repro.tools.container import dump_image

        script = (
            "import hashlib, random, sys\n"
            "try:\n"
            "    import numpy\n"
            "except ImportError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('shim failed: numpy importable')\n"
            "from repro.codepack import dictionary as mod\n"
            "assert mod._np is None\n"
            "from repro.codepack.compressor import compress_words\n"
            "from repro.tools.container import dump_image\n"
            "rng = random.Random(4321)\n"
            "words = [rng.randrange(2**32) for _ in range(3000)]\n"
            "words += [0x34120004] * 500\n"
            "blob = dump_image(compress_words(words, name='parity'))\n"
            "sys.stdout.write(hashlib.sha256(blob).hexdigest())\n"
        )
        shim_dir = tmp_path / "shim"
        shim_dir.mkdir()
        (shim_dir / "numpy.py").write_text(
            "raise ImportError('numpy blocked by test shim')\n")
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(shim_dir), src])
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr

        import hashlib
        import random
        rng = random.Random(4321)
        words = [rng.randrange(2**32) for _ in range(3000)]
        words += [0x34120004] * 500
        blob = dump_image(compress_words(words, name="parity"))
        assert hashlib.sha256(blob).hexdigest() == proc.stdout.strip()


class TestRankingParity:
    """PR 8: build_dictionaries ranks candidates with a stable argsort
    over the bincount histogram.  The ordering -- and therefore the
    admitted entries -- must be byte-identical to the heapq reference
    path, including under heavy ties and zero-exclusion."""

    def skewed_words(self, rng, n):
        """A worst-case mix: uniform noise, heavy ties, zero halves."""
        words = [rng.randrange(2**32) for _ in range(n)]
        # Ties: many distinct values sharing one count, so ordering
        # hinges entirely on the value tie-break.
        for value in rng.sample(range(1, 0x8000), 64):
            words += [value << 16 | value] * 3
        words += [0x00000000] * rng.randrange(8)          # zero halves
        words += [0x0000FFFF, 0xFFFF0000] * rng.randrange(4)
        return words

    def test_vectorized_ranking_matches_reference(self):
        pytest.importorskip("numpy")
        import random

        from repro.codepack.dictionary import (
            _pack_words,
            _ranked_candidates,
            _ranked_vectorized,
            _split_halves,
        )

        rng = random.Random(97)
        for trial in range(25):
            words = self.skewed_words(rng, rng.randrange(1, 2000))
            high, low = _split_halves(_pack_words(words))
            high_hist, low_hist = halfword_histograms(words)
            assert _ranked_vectorized(HIGH_SCHEME, high) == \
                _ranked_candidates(HIGH_SCHEME, high_hist)
            assert _ranked_vectorized(LOW_SCHEME, low) == \
                _ranked_candidates(LOW_SCHEME, low_hist)

    def test_build_dictionaries_identical_to_histogram_path(self):
        pytest.importorskip("numpy")
        import random

        rng = random.Random(55)
        for trial in range(10):
            words = self.skewed_words(rng, rng.randrange(0, 1500))
            vec_high, vec_low = build_dictionaries(words)
            high_hist, low_hist = halfword_histograms(words)
            ref_high = build_dictionary(HIGH_SCHEME, high_hist)
            ref_low = build_dictionary(LOW_SCHEME, low_hist)
            assert vec_high.entries == ref_high.entries
            assert vec_low.entries == ref_low.entries

    def test_build_dictionaries_without_numpy_subprocess(self, tmp_path):
        """The scalar fallback admits the same entries: a no-NumPy
        subprocess builds dictionaries for the same words and reports
        identical entry tuples."""
        pytest.importorskip("numpy")
        import json
        import os
        import subprocess
        import sys

        script = (
            "import json, random, sys\n"
            "try:\n"
            "    import numpy\n"
            "except ImportError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('shim failed: numpy importable')\n"
            "from repro.codepack.dictionary import build_dictionaries\n"
            "rng = random.Random(1889)\n"
            "words = [rng.randrange(2**32) for _ in range(2500)]\n"
            "words += [0x00010001] * 40 + [0] * 7\n"
            "high, low = build_dictionaries(words)\n"
            "sys.stdout.write(json.dumps([list(high.entries),\n"
            "                             list(low.entries)]))\n"
        )
        shim_dir = tmp_path / "shim"
        shim_dir.mkdir()
        (shim_dir / "numpy.py").write_text(
            "raise ImportError('numpy blocked by test shim')\n")
        src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           os.pardir, os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join([str(shim_dir), src])
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr
        scalar_high, scalar_low = json.loads(proc.stdout)

        import random
        rng = random.Random(1889)
        words = [rng.randrange(2**32) for _ in range(2500)]
        words += [0x00010001] * 40 + [0] * 7
        high, low = build_dictionaries(words)
        assert list(high.entries) == scalar_high
        assert list(low.entries) == scalar_low
