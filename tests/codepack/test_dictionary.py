"""Tests for dictionary construction."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME
from repro.codepack.dictionary import (
    DICTIONARY_ENTRY_BITS,
    DICTIONARY_HEADER_BITS,
    Dictionary,
    build_dictionaries,
    build_dictionary,
    halfword_histograms,
)


class TestHistogram:
    def test_counts_both_halves(self):
        high, low = halfword_histograms([0x11112222, 0x11113333])
        assert high[0x1111] == 2
        assert low[0x2222] == 1
        assert low[0x3333] == 1


class TestDictionaryObject:
    def test_slot_lookup(self):
        d = Dictionary(HIGH_SCHEME, [10, 20, 30])
        assert d.slot(20) == 1
        assert d.slot(99) is None
        assert d.value(2) == 30
        assert 10 in d and 99 not in d
        assert len(d) == 3

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ValueError):
            Dictionary(HIGH_SCHEME, [1, 1])

    def test_zero_banned_from_low_dictionary(self):
        with pytest.raises(ValueError):
            Dictionary(LOW_SCHEME, [0])
        Dictionary(HIGH_SCHEME, [0])  # fine for the high stream

    def test_over_capacity_rejected(self):
        entries = list(range(HIGH_SCHEME.dictionary_capacity + 1))
        with pytest.raises(ValueError):
            Dictionary(HIGH_SCHEME, entries)

    def test_storage_bits(self):
        d = Dictionary(HIGH_SCHEME, [1, 2])
        assert d.storage_bits \
            == DICTIONARY_HEADER_BITS + 2 * DICTIONARY_ENTRY_BITS


class TestBuild:
    def test_most_frequent_gets_smallest_slot(self):
        hist = Counter({5: 100, 6: 50, 7: 10})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert d.entries[:3] == [5, 6, 7]

    def test_ties_broken_by_value(self):
        hist = Counter({9: 10, 3: 10, 7: 10})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert d.entries[:3] == [3, 7, 9]

    def test_zero_never_admitted_to_low(self):
        hist = Counter({0: 10_000, 1: 5})
        d = build_dictionary(LOW_SCHEME, hist)
        assert 0 not in d

    def test_singletons_left_raw(self):
        # One occurrence saves at most 19-6=13 bits but costs a 16-bit
        # dictionary slot: not profitable.
        hist = Counter({v: 1 for v in range(100)})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert len(d) == 0

    def test_frequent_values_admitted(self):
        hist = Counter({v: 50 for v in range(10)})
        d = build_dictionary(HIGH_SCHEME, hist)
        assert len(d) == 10

    def test_admission_is_profitable_only(self):
        # Entry 80+ of the low scheme costs 11 bits encoded; with count
        # c the saving is c*(19-11)=8c which must exceed 16 bits.
        hist = Counter({v: 1000 for v in range(1, 81)})
        hist[999] = 2  # 8*2 = 16 == 16: not strictly profitable
        d = build_dictionary(LOW_SCHEME, hist)
        assert 999 not in d

    def test_build_pair(self):
        words = [0x34120000, 0x34120004] * 10
        high, low = build_dictionaries(words)
        assert high.slot(0x3412) is not None
        assert low.slot(0x0004) is not None
        assert low.slot(0x0000) is None  # zero is the tag-only escape


@given(st.dictionaries(st.integers(1, 0xFFFF), st.integers(1, 1000),
                       max_size=600))
def test_build_never_exceeds_capacity_or_misorders(hist):
    d = build_dictionary(LOW_SCHEME, Counter(hist))
    assert len(d) <= LOW_SCHEME.dictionary_capacity
    # Entry order must be non-increasing in count (shortest codewords go
    # to the most frequent values).
    counts = [hist[v] for v in d.entries]
    assert all(counts[i] >= counts[i + 1] for i in range(len(counts) - 1))
    assert 0 not in d
