"""Three-way differential harness for the vectorized codec kernels.

:mod:`repro.codepack.veccodec` is the third codec tier; its contract is
the same as the fast path's, one level up: **byte-identical** compressed
images and **word-identical** decodes against both
:mod:`repro.codepack.reference` (the per-bit oracle) and
:mod:`repro.codepack.fastcodec` (the scalar table-driven tier), on every
input -- the full workload corpus, adversarial shapes (mid-group tails,
zero-instruction programs, empty images, single-codeword groups,
max-length raw escapes), Hypothesis-generated programs, ragged batches,
and a checked-in regression corpus pinned by container digest.  Error
behaviour must match too: malformed bitstreams raise the same exception
types with the same messages through either tier.
"""

import dataclasses
import hashlib
import json
import pathlib
import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack import batch, veccodec
from repro.codepack.compressor import compress_program, compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.dictionary import build_dictionaries
from repro.codepack.reference import (
    compress_program_reference,
    compress_words_reference,
    decompress_program_reference,
)
from repro.codepack.veccodec import (
    compress_many_vec,
    compress_words_vec,
    decode_block_sets_vec,
    decompress_many_vec,
    decompress_program_vec,
)
from repro.tools.container import dump_image

from tests.codepack.test_differential import assert_images_identical
from tests.conftest import (
    WORD_DISTRIBUTIONS,
    make_word_program,
    random_word_program,
    random_words,
)

CORPUS_PATH = pathlib.Path(__file__).parent / "veccodec_corpus.json"


def assert_three_way(words, **kwargs):
    """All three tiers emit the same image; all three decode it back."""
    words = list(words)
    vec = compress_words_vec(words, **kwargs)
    fast = compress_words(words, **kwargs)
    ref = compress_words_reference(words, **kwargs)
    assert_images_identical(vec, fast)
    assert_images_identical(vec, ref)
    assert decompress_program_vec(vec) == words
    assert decompress_program(fast) == words
    assert decompress_program_reference(ref) == words
    return vec


class TestRandomizedDifferential:
    """Seeded fuzz sweep, all three tiers."""

    @pytest.mark.parametrize("chunk", range(4))
    def test_random_programs_bit_exact(self, chunk):
        for i in range(30):
            program = random_word_program(chunk * 30 + i + 50_000)
            assert_three_way(program.text, name=program.name)

    @pytest.mark.parametrize("kind", WORD_DISTRIBUTIONS)
    def test_each_distribution_at_block_boundaries(self, kind):
        rng = random.Random(hash(kind) & 0xFFFF)
        for size in (0, 1, 15, 16, 17, 31, 32, 33, 47, 48, 49, 64, 65):
            assert_three_way(random_words(rng, size, kind))


class TestWorkloadDifferential:
    """The six paper benchmarks through the vector kernels."""

    def test_benchmark_programs_bit_exact(self, small_suite):
        for name, program in small_suite.items():
            vec = compress_words_vec(program.text, name=program.name,
                                     text_base=program.text_base)
            fast = compress_program(program)
            ref = compress_program_reference(program)
            assert_images_identical(vec, fast)
            assert_images_identical(vec, ref)
            assert decompress_program_vec(vec) == list(program.text)

    def test_counting_program_bit_exact(self, counting_program):
        assert_three_way(counting_program.text)

    def test_memory_program_bit_exact(self, memory_program):
        assert_three_way(memory_program.text)


class TestAdversarialShapes:
    """The geometry and escape edges the kernels must not round off."""

    def test_zero_instruction_program(self):
        image = assert_three_way([])
        assert image.code_bytes == b""
        assert decompress_many_vec([image]) == [[]]

    def test_empty_image_inside_batch(self):
        progs = [[], random_words(random.Random(1), 20, "workload"), []]
        images = [compress_words(p) for p in progs]
        assert decompress_many_vec(images) == progs

    def test_single_codeword_groups(self):
        words = random_words(random.Random(2), 9, "workload")
        assert_three_way(words, block_instructions=1, group_blocks=1)

    def test_mid_group_tails(self):
        rng = random.Random(3)
        for size in (17, 33, 47, 63):
            assert_three_way(random_words(rng, size, "workload"))

    def test_max_length_escapes_stay_packed(self):
        # 12 dictionary hits keep the block under the raw threshold, so
        # the 19-bit (3-bit tag + 16-bit literal) escapes in both
        # halves are packed, not absorbed into a whole-block raw.
        words = [0x24420001] * 12 + [0xABCD1234, 0x5678EF01,
                                     0x13579BDF, 0x2468ACE0]
        image = assert_three_way(words)
        assert not any(block.is_raw for block in image.blocks)
        assert image.stats.raw_tag_bits > 0

    def test_whole_block_raw_escapes(self):
        words = random_words(random.Random(4), 48, "incompressible")
        image = assert_three_way(words)
        assert any(block.is_raw for block in image.blocks)

    @pytest.mark.parametrize("block_instructions", [1, 4, 16, 32])
    @pytest.mark.parametrize("group_blocks", [1, 2, 4])
    def test_ablation_geometry(self, block_instructions, group_blocks):
        rng = random.Random(block_instructions * 10 + group_blocks)
        for size in (0, 1, block_instructions,
                     block_instructions * group_blocks + 1, 100):
            assert_three_way(random_words(rng, size, "workload"),
                             block_instructions=block_instructions,
                             group_blocks=group_blocks)

    @pytest.mark.parametrize("group_blocks", [1, 2, 3, 4])
    @pytest.mark.parametrize("n_blocks", [1, 2, 3, 7, 8, 9])
    def test_index_entries_vec_matches_scalar(self, group_blocks,
                                              n_blocks):
        # The vectorized index builder against the shared scalar oracle
        # over synthetic geometries: ragged tails, raw flags in both
        # slots, single-block groups.
        import numpy as np

        from repro.codepack.compressor import BlockInfo
        from repro.codepack.reference import build_index_entries
        from repro.codepack.veccodec import _index_entries_vec

        rng = random.Random(group_blocks * 100 + n_blocks)
        lengths = [rng.randrange(1, 70) for _ in range(n_blocks)]
        offsets = [sum(lengths[:i]) for i in range(n_blocks)]
        raws = [rng.random() < 0.4 for _ in range(n_blocks)]
        blocks = [BlockInfo(index=i, byte_offset=offsets[i],
                            byte_length=lengths[i], is_raw=raws[i],
                            n_instructions=4, inst_end_bits=())
                  for i in range(n_blocks)]
        assert _index_entries_vec(
            np.asarray(offsets, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
            np.asarray(raws, dtype=bool), group_blocks,
        ) == build_index_entries(blocks, group_blocks)


class TestBatchKernels:
    """The multi-program entry points: fused encode, one-pass decode."""

    def ragged_programs(self):
        rng = random.Random(5)
        sizes = (0, 1, 16, 17, 150, 3, 64, 0, 33)
        return [random_words(rng, n, kind)
                for n, kind in zip(sizes, (WORD_DISTRIBUTIONS * 3))]

    def test_fused_shared_dictionary_batch(self):
        progs = self.ragged_programs()
        pool = [w for p in progs for w in p]
        high_dict, low_dict = build_dictionaries(pool)
        fused = compress_many_vec(progs, high_dict=high_dict,
                                  low_dict=low_dict)
        for program, image in zip(progs, fused):
            scalar = compress_words(program, high_dict=high_dict,
                                    low_dict=low_dict)
            assert_images_identical(image, scalar)

    def test_per_program_dictionary_batch(self):
        progs = self.ragged_programs()
        for program, image in zip(progs, compress_many_vec(progs)):
            assert_images_identical(image, compress_words(program))

    def test_batch_of_one(self):
        words = random_words(random.Random(6), 40, "workload")
        [image] = compress_many_vec([words])
        assert_images_identical(image, compress_words(words))
        assert decompress_many_vec([image]) == [words]

    def test_decompress_many_matches_scalar(self):
        progs = self.ragged_programs()
        images = [compress_words(p) for p in progs]
        assert decompress_many_vec(images) == progs
        assert decompress_many_vec(images) == \
            batch.decompress_many(images, vec=False)

    def test_batch_entry_points_route_identically(self):
        progs = self.ragged_programs()
        vec_images = batch.compress_many(progs, vec=True)
        scalar_images = batch.compress_many(progs, vec=False)
        for vec_image, scalar_image in zip(vec_images, scalar_images):
            assert_images_identical(vec_image, scalar_image)
        assert batch.decompress_many(vec_images, vec=True) == \
            batch.decompress_many(scalar_images, vec=False)

    def test_decode_groups_batch_parity(self):
        progs = self.ragged_programs()
        images = [compress_words(p) for p in progs if p]
        requests = [(image, group) for image in images
                    for group in range(image.n_groups)]
        vec = batch.decode_groups_batch(requests, vec=True)
        scalar = batch.decode_groups_batch(requests, vec=False)
        assert vec == scalar
        assert all(isinstance(words, tuple) for words in vec)

    def test_decode_block_sets_mixed_images(self):
        a = compress_words(random_words(random.Random(7), 90, "workload"))
        b = compress_words(random_words(random.Random(8), 50, "zero_low"))
        c = compress_words(random_words(random.Random(9), 48,
                                        "incompressible"))
        requests = [(a, range(a.n_blocks)), (c, range(c.n_blocks)),
                    (b, range(b.n_blocks)), (a, [0]), (c, [0, 1])]
        results = decode_block_sets_vec(requests)
        from repro.codepack.decompressor import decompress_block
        for (image, indices), words in zip(requests, results):
            expected = []
            for index in indices:
                expected.extend(decompress_block(image, index))
            assert words == expected


class TestErrorParity:
    """Malformed streams raise identical errors through either tier."""

    def _image(self):
        return compress_words(
            random_words(random.Random(10), 120, "workload"))

    @staticmethod
    def _error(func, *args):
        try:
            func(*args)
        except Exception as exc:
            return type(exc), str(exc)
        return None

    def test_truncated_stream(self):
        image = self._image()
        for cut in (0, 1, len(image.code_bytes) // 2):
            bad = dataclasses.replace(image, code_bytes=image.code_bytes[:cut])
            assert self._error(decompress_program_vec, bad) == \
                self._error(decompress_program, bad) != None  # noqa: E711

    def test_foreign_undersized_dictionary(self):
        image = self._image()
        high, low = build_dictionaries(
            random_words(random.Random(11), 6, "repetitive"))
        bad = dataclasses.replace(image, high_dict=high, low_dict=low)
        assert self._error(decompress_program_vec, bad) == \
            self._error(decompress_program, bad) != None  # noqa: E711

    def test_corrupt_group_is_isolated_in_batch(self):
        good = self._image()
        bad = dataclasses.replace(
            good, code_bytes=good.code_bytes[:len(good.code_bytes) // 3])
        results = batch.decode_groups_batch(
            [(good, 0), (bad, good.n_groups - 1), (good, 1)], vec=True)
        scalar = batch.decode_groups_batch(
            [(good, 0), (bad, good.n_groups - 1), (good, 1)], vec=False)
        assert results[0] == scalar[0]
        assert results[2] == scalar[2]
        assert isinstance(results[1], Exception)
        assert (type(results[1]), str(results[1])) == \
            (type(scalar[1]), str(scalar[1]))


class TestRegressionCorpus:
    """The checked-in corpus: cross-impl equality plus digest pinning."""

    def cases(self):
        return json.loads(CORPUS_PATH.read_text())

    def test_corpus_cases_three_way(self):
        for case in self.cases():
            image = assert_three_way(
                case["words"],
                block_instructions=case["block_instructions"],
                group_blocks=case["group_blocks"])
            digest = hashlib.sha256(dump_image(image)).hexdigest()
            assert digest == case["cpk_sha256"], \
                "corpus case %r drifted" % case["name"]

    def test_corpus_covers_the_adversarial_shapes(self):
        names = {case["name"] for case in self.cases()}
        assert {"empty", "mid-group-tail-17", "single-codeword-group",
                "whole-block-raw", "max-length-escape-both-halves"} <= names


word = st.integers(min_value=0, max_value=0xFFFFFFFF)
word_lists = st.lists(word, max_size=120)


@settings(max_examples=50, deadline=None)
@given(words=word_lists)
def test_hypothesis_roundtrip_vec(words):
    image = compress_words_vec(words)
    assert decompress_program_vec(image) == words


@settings(max_examples=40, deadline=None)
@given(words=word_lists)
def test_hypothesis_three_way_equivalence(words):
    assert_three_way(words)


@settings(max_examples=25, deadline=None)
@given(words=word_lists,
       block_instructions=st.sampled_from([1, 4, 16, 32]),
       group_blocks=st.sampled_from([1, 2, 4]))
def test_hypothesis_geometry_equivalence(words, block_instructions,
                                         group_blocks):
    assert_three_way(words, block_instructions=block_instructions,
                     group_blocks=group_blocks)


@settings(max_examples=25, deadline=None)
@given(batch_programs=st.lists(st.lists(word, max_size=40), max_size=6),
       dict_seed=st.integers(min_value=0, max_value=2**16))
def test_hypothesis_ragged_batches(batch_programs, dict_seed):
    """Batches of any raggedness (including empty programs and a batch
    of one) match the scalar tier, with and without shared dicts."""
    images = compress_many_vec(batch_programs)
    for program, image in zip(batch_programs, images):
        assert_images_identical(image, compress_words(program))
    assert decompress_many_vec(images) == batch_programs

    donor = random_words(random.Random(dict_seed), 60, "workload")
    high_dict, low_dict = build_dictionaries(donor)
    fused = compress_many_vec(batch_programs, high_dict=high_dict,
                              low_dict=low_dict)
    for program, image in zip(batch_programs, fused):
        assert_images_identical(
            image, compress_words(program, high_dict=high_dict,
                                  low_dict=low_dict))


@settings(max_examples=25, deadline=None)
@given(entries=st.integers(min_value=0, max_value=300),
       seed=st.integers(min_value=0, max_value=2**16))
def test_hypothesis_dictionary_sizes(entries, seed):
    """Dictionaries of any fill level (empty through overflowing every
    size class) drive identical codewords through all tiers."""
    rng = random.Random(seed)
    donor = [rng.getrandbits(32) for _ in range(entries)]
    high_dict, low_dict = build_dictionaries(donor)
    words = random_words(rng, 50, "workload")
    assert_three_way(words, high_dict=high_dict, low_dict=low_dict)
