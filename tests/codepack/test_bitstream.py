"""Unit and property tests for MSB-first bit I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codepack.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_msb_first_packing(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b00011, 5)
        assert w.to_bytes() == bytes([0b10100011])

    def test_zero_width_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0

    def test_rejects_value_too_wide(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_rejects_negative(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 4)
        with pytest.raises(ValueError):
            w.write(0, -1)

    def test_pad_to_byte(self):
        w = BitWriter()
        w.write(1, 3)
        assert w.pad_to_byte() == 5
        assert w.bit_length == 8
        assert w.pad_to_byte() == 0

    def test_to_bytes_requires_alignment(self):
        w = BitWriter()
        w.write(1, 3)
        with pytest.raises(ValueError):
            w.to_bytes()


class TestBitReader:
    def test_reads_across_byte_boundaries(self):
        r = BitReader(bytes([0b10100011, 0b11000000]))
        assert r.read(3) == 0b101
        assert r.read(7) == 0b0001111

    def test_offset_start(self):
        r = BitReader(bytes([0xFF, 0x0F]), bit_offset=8)
        assert r.read(4) == 0

    def test_peek_does_not_consume(self):
        r = BitReader(bytes([0b10110000]))
        assert r.peek(4) == 0b1011
        assert r.read(4) == 0b1011

    def test_eof(self):
        r = BitReader(b"\x00")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_zero_width_read(self):
        r = BitReader(b"")
        assert r.read(0) == 0

    def test_skip_to_byte(self):
        r = BitReader(bytes([0xFF, 0x80]))
        r.read(3)
        r.skip_to_byte()
        assert r.position == 8
        assert r.read(1) == 1

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read(5)
        assert r.bits_remaining == 11


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=24),
                          st.integers(min_value=0)),
                min_size=0, max_size=60))
def test_write_read_roundtrip(fields):
    """Any sequence of (width, value) fields round-trips bit-exactly."""
    fields = [(w, v & ((1 << w) - 1)) for w, v in fields]
    writer = BitWriter()
    for width, value in fields:
        writer.write(value, width)
    writer.pad_to_byte()
    reader = BitReader(writer.to_bytes())
    for width, value in fields:
        assert reader.read(width) == value
