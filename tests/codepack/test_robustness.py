"""Robustness: the decoder must fail loudly, never wrongly, on garbage.

A hardware decompressor faces whatever bytes the memory system hands
it; the software model must either decode (any bit pattern that happens
to be a valid codeword stream) or raise a typed error -- never crash
with an unrelated exception or loop forever.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME
from repro.codepack.compressor import BlockInfo, CodePackImage, compress_words
from repro.codepack.decompressor import DecompressionError, decompress_block
from repro.codepack.dictionary import Dictionary
from repro.codepack.stats import CompositionStats


def image_over(data, n_instructions=4, high_entries=(), low_entries=()):
    """Wrap raw bytes as a single compressed block."""
    block = BlockInfo(index=0, byte_offset=0, byte_length=len(data),
                      is_raw=False, n_instructions=n_instructions,
                      inst_end_bits=tuple(range(8, 8 * (n_instructions + 1),
                                                8)))
    return CodePackImage(
        name="fuzz", text_base=0, n_instructions=n_instructions,
        high_dict=Dictionary(HIGH_SCHEME, list(high_entries)),
        low_dict=Dictionary(LOW_SCHEME, list(low_entries)),
        index_entries=[], code_bytes=bytes(data), blocks=[block],
        stats=CompositionStats(), original_bytes=4 * n_instructions)


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=1, max_size=64),
       st.integers(min_value=1, max_value=8))
def test_garbage_bytes_never_crash(data, count):
    """Random bytes either decode or raise typed errors."""
    image = image_over(data, n_instructions=count)
    try:
        words = decompress_block(image, 0)
    except (DecompressionError, EOFError):
        return
    assert len(words) == count
    assert all(0 <= word < (1 << 32) for word in words)


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=4, max_size=64),
       st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40,
                unique=True),
       st.lists(st.integers(1, 0xFFFF), min_size=1, max_size=40,
                unique=True))
def test_garbage_with_populated_dictionaries(data, high, low):
    image = image_over(data, n_instructions=4, high_entries=high,
                       low_entries=low)
    try:
        words = decompress_block(image, 0)
    except (DecompressionError, EOFError):
        return
    assert len(words) == 4


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=64),
       st.integers(0, 200), st.integers(0, 7))
def test_bitflip_corruption_detected_or_decoded(words, byte_pos, bit):
    """Flipping one bit of a real image never escapes the error types."""
    image = compress_words(words)
    if not image.code_bytes:
        return
    data = bytearray(image.code_bytes)
    data[byte_pos % len(data)] ^= 1 << bit
    image.code_bytes = bytes(data)
    try:
        from repro.codepack.decompressor import decompress_program
        decoded = decompress_program(image)
        assert len(decoded) == len(words)
    except (DecompressionError, EOFError):
        pass


class TestAdversarialStreams:
    def test_all_ones_stream(self):
        # 0b111... parses as raw escapes; must decode or raise cleanly.
        image = image_over(b"\xff" * 40, n_instructions=4)
        try:
            words = decompress_block(image, 0)
            assert len(words) == 4
        except (DecompressionError, EOFError):
            pass

    def test_all_zero_stream_decodes_with_dictionary(self):
        # 0b00... = high class-A slot 0 + low zero escape, repeated.
        image = image_over(b"\x00" * 16, n_instructions=4,
                           high_entries=[0x1234])
        words = decompress_block(image, 0)
        assert words == [0x12340000] * 4

    def test_all_zero_stream_fails_without_dictionary(self):
        image = image_over(b"\x00" * 16, n_instructions=4)
        with pytest.raises(DecompressionError):
            decompress_block(image, 0)

    def test_truncated_stream_raises_eof(self):
        image = image_over(b"\xff", n_instructions=4)
        with pytest.raises((EOFError, DecompressionError)):
            decompress_block(image, 0)
