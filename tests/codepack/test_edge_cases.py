"""Regression tests for the index-table and framing edge cases.

Three historically easy-to-break spots, pinned here for both codec
paths:

* a ``.text`` section ending mid-compression-group (odd block count):
  the tail group's entry must record the lone block's length so
  ``block2_base`` points one past the end of the code region;
* the zero-instruction program: empty image, no blocks, no index
  entries, decodes to nothing;
* the index-entry count: exactly ``ceil(blocks / group_blocks)`` --
  neither a phantom entry for a just-completed final group nor a
  missing entry for a dangling tail block.
"""

import random

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.reference import compress_words_reference

from tests.conftest import random_words

BOTH_PATHS = [compress_words, compress_words_reference]


@pytest.mark.parametrize("compress", BOTH_PATHS)
class TestMidGroupTail:
    def test_odd_block_count_gets_tail_entry(self, compress):
        # 3 blocks -> 2 groups; the second group holds one block.
        words = random_words(random.Random(1), 48 - 8, "workload")
        image = compress(words)
        assert image.n_blocks == 3
        assert image.n_groups == 2
        tail = image.index_entries[-1]
        last_block = image.blocks[-1]
        assert tail.block1_base == last_block.byte_offset
        # The lone block's length stands in for the second offset, so
        # block2_base is one past the end of the code region.
        assert tail.block2_offset == last_block.byte_length
        assert tail.block2_base == len(image.code_bytes)
        assert not tail.block2_raw
        assert decompress_program(image) == words

    def test_even_block_count_has_no_phantom_entry(self, compress):
        words = random_words(random.Random(2), 64, "workload")
        image = compress(words)
        assert image.n_blocks == 4
        assert image.n_groups == 2  # not 3
        assert decompress_program(image) == words

    def test_partial_final_block(self, compress):
        # 33 instructions: two full blocks plus a 1-instruction block.
        words = random_words(random.Random(3), 33, "workload")
        image = compress(words)
        assert image.n_blocks == 3
        assert image.blocks[-1].n_instructions == 1
        assert image.n_groups == 2
        assert decompress_program(image) == words


@pytest.mark.parametrize("compress", BOTH_PATHS)
class TestZeroInstructionProgram:
    def test_empty_program(self, compress):
        image = compress([])
        assert image.n_instructions == 0
        assert image.n_blocks == 0
        assert image.n_groups == 0
        assert image.code_bytes == b""
        assert image.index_entries == []
        assert image.compression_ratio == 1.0  # not ZeroDivisionError
        assert decompress_program(image) == []

    def test_empty_program_stats(self, compress):
        image = compress([])
        assert image.stats.index_table_bits == 0
        assert image.stats.compressed_tag_bits == 0
        assert image.stats.raw_bits == 0
        # Dictionaries still carry their fixed headers.
        assert image.stats.dictionary_bits == \
            image.high_dict.storage_bits + image.low_dict.storage_bits


@pytest.mark.parametrize("compress", BOTH_PATHS)
def test_entry_count_never_off_by_one(compress):
    """ceil(blocks / group_blocks) entries for every size around the
    block and group boundaries."""
    rng = random.Random(4)
    for n in list(range(0, 70)) + [15 * 16, 15 * 16 + 1]:
        words = random_words(rng, n, "workload")
        image = compress(words)
        expected_blocks = -(-n // 16)
        assert image.n_blocks == expected_blocks, n
        assert image.n_groups == -(-expected_blocks // 2), n
        assert decompress_program(image) == words


def test_empty_programs_for_comparison_schemes():
    """The zero-instruction edge case holds for the scheme codecs too
    (CCRP used to crash building a Huffman code over no symbols)."""
    from repro.schemes.ccrp import compress_ccrp, decompress_ccrp
    from repro.schemes.dictword import compress_dictword, decompress_dictword

    from tests.conftest import make_word_program

    program = make_word_program([], name="empty")
    dict_image = compress_dictword(program)
    assert decompress_dictword(dict_image) == []
    ccrp_image = compress_ccrp(program)
    assert decompress_ccrp(ccrp_image) == b""
    assert ccrp_image.lines == []
    # Ratio on zero original bytes reports 1.0 instead of dividing by zero.
    assert dict_image.compression_ratio == 1.0
    assert ccrp_image.compression_ratio == 1.0
