"""Tests for the batch compression/decompression API."""

import pytest

from repro.codepack.batch import (
    _map_maybe_parallel,
    compress_many,
    compress_words_parallel,
    decompress_many,
)
from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import DecompressionError

from tests.conftest import make_word_program, random_word_program


def _image_key(image):
    return (image.code_bytes, tuple(image.index_entries), image.stats,
            tuple(image.blocks))


@pytest.fixture(scope="module")
def fuzz_programs():
    return [random_word_program(seed + 20_000) for seed in range(12)]


class TestMapMaybeParallel:
    def test_sequential_fallbacks(self):
        for max_workers in (None, 0, 1):
            assert _map_maybe_parallel(lambda x: x * 2, [1, 2, 3],
                                       max_workers) == [2, 4, 6]

    def test_pooled_preserves_order(self):
        items = list(range(40))
        assert _map_maybe_parallel(lambda x: x * x, items, 4) \
            == [x * x for x in items]

    def test_worker_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("worker %d" % x)

        for max_workers in (None, 4):
            with pytest.raises(RuntimeError):
                _map_maybe_parallel(boom, [1, 2], max_workers)


class TestCompressWordsParallel:
    @pytest.mark.parametrize("max_workers", [None, 1, 2, 8])
    def test_bit_identical_to_sequential(self, fuzz_programs, max_workers):
        for program in fuzz_programs:
            sequential = compress_words(program.text, name=program.name)
            parallel = compress_words_parallel(
                program.text, name=program.name, max_workers=max_workers)
            assert _image_key(parallel) == _image_key(sequential)

    def test_geometry_overrides_flow_through(self):
        program = random_word_program(31_337, size=150)
        sequential = compress_words(program.text, block_instructions=8,
                                    group_blocks=4)
        parallel = compress_words_parallel(program.text,
                                           block_instructions=8,
                                           group_blocks=4, max_workers=4)
        assert _image_key(parallel) == _image_key(sequential)


class TestCompressMany:
    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_program_objects_in_input_order(self, fuzz_programs, max_workers):
        images = compress_many(fuzz_programs, max_workers=max_workers)
        assert [im.name for im in images] \
            == [p.name for p in fuzz_programs]
        for program, image in zip(fuzz_programs, images):
            assert _image_key(image) \
                == _image_key(compress_words(program.text, name=program.name))

    def test_plain_word_lists(self):
        word_lists = [p.text for p in
                      (random_word_program(s + 40_000) for s in range(4))]
        images = compress_many(word_lists, max_workers=2)
        for words, image in zip(word_lists, images):
            assert _image_key(image) == _image_key(compress_words(words))

    def test_kwargs_forwarded(self, fuzz_programs):
        images = compress_many(fuzz_programs[:3], max_workers=2,
                               block_instructions=8)
        for image in images:
            assert image.block_instructions == 8


class TestDecompressMany:
    @pytest.mark.parametrize("max_workers", [None, 4])
    def test_roundtrip_in_order(self, fuzz_programs, max_workers):
        images = compress_many(fuzz_programs)
        decoded = decompress_many(images, max_workers=max_workers)
        assert decoded == [list(p.text) for p in fuzz_programs]

    def test_integrity_check(self):
        program = make_word_program(list(range(100, 150)))
        image = compress_words(program.text)
        image.n_instructions += 1  # corrupt the declared count
        with pytest.raises(DecompressionError):
            decompress_many([image])


class TestInjectedExecutor:
    """The reusable-executor path: callers (the serving layer) own one
    pool; the batch API must use it instead of spawning its own."""

    def test_map_uses_injected_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        submitted = []

        class SpyExecutor(ThreadPoolExecutor):
            def map(self, fn, *iterables, **kwargs):
                submitted.append(fn)
                return super().map(fn, *iterables, **kwargs)

        with SpyExecutor(max_workers=2) as pool:
            out = _map_maybe_parallel(lambda x: x + 1, [1, 2, 3],
                                      max_workers=None, executor=pool)
        assert out == [2, 3, 4]
        assert len(submitted) == 1

    def test_single_item_skips_executor(self):
        class Unusable:
            def map(self, *args, **kwargs):
                raise AssertionError("must not be used for one item")

        assert _map_maybe_parallel(lambda x: x * 3, [5], max_workers=None,
                                   executor=Unusable()) == [15]

    def test_dead_executor_falls_back_to_sequential(self):
        from concurrent.futures import ThreadPoolExecutor

        pool = ThreadPoolExecutor(max_workers=1)
        pool.shutdown(wait=True)
        assert _map_maybe_parallel(lambda x: x - 1, [4, 5],
                                   max_workers=None, executor=pool) \
            == [3, 4]

    def test_compress_words_parallel_bit_identical(self, fuzz_programs):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=2) as pool:
            for program in fuzz_programs[:4]:
                injected = compress_words_parallel(
                    program.text, name=program.name, executor=pool)
                assert _image_key(injected) == _image_key(
                    compress_words(program.text, name=program.name))

    def test_compress_and_decompress_many_share_pool(self, fuzz_programs):
        from concurrent.futures import ThreadPoolExecutor

        programs = fuzz_programs[:4]
        with ThreadPoolExecutor(max_workers=2) as pool:
            images = compress_many(programs, executor=pool)
            decoded = decompress_many(images, executor=pool)
        assert decoded == [list(p.text) for p in programs]
