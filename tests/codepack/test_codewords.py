"""Tests for the codeword schemes (paper Section 3.1 constraints)."""

import pytest

from repro.codepack.codewords import (
    HIGH_SCHEME,
    LOW_SCHEME,
    LOW_ZERO_TAG_BITS,
    RAW_CODEWORD_BITS,
    RAW_HALFWORD_BITS,
    RAW_TAG_BITS,
)


def all_tags(scheme):
    """(tag, tag_bits) pairs used by the scheme, including raw and the
    low-zero escape."""
    tags = [(cls.tag, cls.tag_bits) for cls in scheme.classes]
    tags.append((scheme.raw_tag, scheme.raw_tag_bits))
    if scheme.zero_special:
        tags.append((0b00, LOW_ZERO_TAG_BITS))
    return tags


class TestPaperConstraints:
    """The scheme must satisfy everything the paper states."""

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_tags_are_2_or_3_bits(self, scheme):
        for _, bits in all_tags(scheme):
            assert bits in (2, 3)

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_compressed_codewords_within_2_to_11_bits(self, scheme):
        for i in range(scheme.dictionary_capacity):
            assert 2 <= scheme.encoded_bits(i) <= 11

    def test_low_zero_is_two_bits(self):
        assert LOW_ZERO_TAG_BITS == 2
        assert LOW_SCHEME.zero_special

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_dictionaries_below_512_entries(self, scheme):
        assert scheme.dictionary_capacity < 512

    def test_raw_escape_costs_19_bits(self):
        assert RAW_TAG_BITS == 3
        assert RAW_HALFWORD_BITS == 16
        assert RAW_CODEWORD_BITS == 19


class TestPrefixFreedom:
    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_no_tag_prefixes_another(self, scheme):
        tags = all_tags(scheme)
        for tag_a, bits_a in tags:
            for tag_b, bits_b in tags:
                if (tag_a, bits_a) == (tag_b, bits_b):
                    continue
                shorter, s_bits = ((tag_a, bits_a)
                                   if bits_a <= bits_b else (tag_b, bits_b))
                longer, l_bits = ((tag_b, bits_b)
                                  if bits_a <= bits_b else (tag_a, bits_a))
                assert longer >> (l_bits - s_bits) != shorter or \
                    s_bits == l_bits, \
                    "tag %s/%d prefixes %s/%d" % (bin(shorter), s_bits,
                                                  bin(longer), l_bits)


class TestEntryClassMapping:
    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_class_of_entry_inverse(self, scheme):
        for slot in range(scheme.dictionary_capacity):
            cls, index = scheme.class_of_entry(slot)
            assert index < cls.capacity
            assert scheme.entry_of_class(cls, index) == slot

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_entry_beyond_capacity_rejected(self, scheme):
        with pytest.raises(IndexError):
            scheme.class_of_entry(scheme.dictionary_capacity)

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_codeword_lengths_monotonic_in_slot(self, scheme):
        lengths = [scheme.encoded_bits(i)
                   for i in range(scheme.dictionary_capacity)]
        assert lengths == sorted(lengths), \
            "earlier (more frequent) slots must get shorter codewords"

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_class_for_tag_finds_every_class(self, scheme):
        for cls in scheme.classes:
            assert scheme.class_for_tag(cls.tag, cls.tag_bits) == cls

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_class_for_raw_tag_is_none(self, scheme):
        assert scheme.class_for_tag(scheme.raw_tag,
                                    scheme.raw_tag_bits) is None

    @pytest.mark.parametrize("scheme", [HIGH_SCHEME, LOW_SCHEME])
    def test_unknown_tag_raises(self, scheme):
        with pytest.raises(KeyError):
            scheme.class_for_tag(0b110 if scheme is HIGH_SCHEME else 0b00,
                                 3 if scheme is HIGH_SCHEME else 2)


class TestCapacityAccounting:
    def test_high_capacity(self):
        assert HIGH_SCHEME.dictionary_capacity == 16 + 64 + 256

    def test_low_capacity(self):
        assert LOW_SCHEME.dictionary_capacity == 16 + 64 + 256

    def test_both_dictionaries_fit_2kb_buffer(self):
        # Paper: "Both dictionaries are kept in a 2KB on-chip buffer."
        total_bytes = 2 * (HIGH_SCHEME.dictionary_capacity
                           + LOW_SCHEME.dictionary_capacity)
        assert total_bytes <= 2048
