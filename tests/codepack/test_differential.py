"""Differential harness: the fast codec against the per-bit reference.

The fast path (:mod:`repro.codepack.fastcodec` driven by the
compressor/decompressor) must be **bit-exact** against the retained
reference codec (:mod:`repro.codepack.reference`) on every input: same
code bytes, same index table, same per-block geometry, same
:class:`~repro.codepack.stats.CompositionStats`.  This file fuzzes that
contract over 500+ randomized programs plus the workload-derived
benchmark suite, including the ablation geometries.
"""

import random

import pytest

from repro.codepack.batch import compress_words_parallel
from repro.codepack.compressor import compress_program, compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.reference import (
    compress_program_reference,
    compress_words_reference,
    decompress_program_reference,
)

from tests.conftest import (
    WORD_DISTRIBUTIONS,
    make_word_program,
    random_word_program,
    random_words,
)

#: Randomized programs fuzzed by the main differential sweep.
N_FUZZ_PROGRAMS = 520


def assert_images_identical(fast, ref):
    """Every observable artifact of the two images must match."""
    assert fast.code_bytes == ref.code_bytes
    assert fast.index_entries == ref.index_entries
    assert fast.stats == ref.stats
    assert fast.blocks == ref.blocks
    assert fast.n_instructions == ref.n_instructions
    assert fast.high_dict.entries == ref.high_dict.entries
    assert fast.low_dict.entries == ref.low_dict.entries


def assert_differential(program, **kwargs):
    fast = compress_words(program.text, name=program.name, **kwargs)
    ref = compress_words_reference(program.text, name=program.name, **kwargs)
    assert_images_identical(fast, ref)
    words = list(program.text)
    assert decompress_program(fast) == words
    assert decompress_program_reference(ref) == words
    return fast


class TestRandomizedDifferential:
    """The 500+-program fuzz sweep (seeded, hence reproducible)."""

    @pytest.mark.parametrize("chunk", range(8))
    def test_random_programs_bit_exact(self, chunk):
        per_chunk = N_FUZZ_PROGRAMS // 8
        for i in range(per_chunk):
            seed = chunk * per_chunk + i
            program = random_word_program(seed)
            assert_differential(program)

    @pytest.mark.parametrize("kind", WORD_DISTRIBUTIONS)
    def test_each_distribution_at_block_boundaries(self, kind):
        # Sizes straddling block (16) and group (32) boundaries.
        rng = random.Random(hash(kind) & 0xFFFF)
        for size in (0, 1, 15, 16, 17, 31, 32, 33, 47, 48, 49, 63, 64, 65):
            program = make_word_program(random_words(rng, size, kind),
                                        name="%s-%d" % (kind, size))
            assert_differential(program)

    def test_parallel_path_matches_fast_and_reference(self):
        for seed in range(40):
            program = random_word_program(seed + 10_000)
            fast = assert_differential(program)
            for max_workers in (None, 1, 4):
                par = compress_words_parallel(program.text,
                                              name=program.name,
                                              max_workers=max_workers)
                assert_images_identical(par, fast)


class TestWorkloadDifferential:
    """The six paper benchmarks through both paths."""

    def test_benchmark_programs_bit_exact(self, small_suite):
        for name, program in small_suite.items():
            fast = compress_program(program)
            ref = compress_program_reference(program)
            assert_images_identical(fast, ref)
            assert decompress_program(fast) == list(program.text)

    def test_counting_program_bit_exact(self, counting_program):
        assert_differential(counting_program)

    def test_memory_program_bit_exact(self, memory_program):
        assert_differential(memory_program)


class TestAblationGeometryDifferential:
    """The ablation sweeps vary block/group geometry; the contract
    must hold there too."""

    @pytest.mark.parametrize("block_instructions", [4, 8, 16, 32])
    @pytest.mark.parametrize("group_blocks", [1, 2, 4])
    def test_geometry_bit_exact(self, block_instructions, group_blocks):
        rng = random.Random(block_instructions * 100 + group_blocks)
        for size in (0, 1, block_instructions - 1, block_instructions,
                     block_instructions * group_blocks + 1, 200):
            words = random_words(rng, size, "workload")
            fast = compress_words(words,
                                  block_instructions=block_instructions,
                                  group_blocks=group_blocks)
            ref = compress_words_reference(
                words, block_instructions=block_instructions,
                group_blocks=group_blocks)
            assert_images_identical(fast, ref)
            assert decompress_program(fast) == words


class TestSharedDictionaries:
    """Pre-built dictionaries (the generic-dictionary ablation) must
    flow through both paths identically."""

    def test_foreign_dictionary_bit_exact(self):
        rng = random.Random(99)
        donor = random_words(rng, 300, "workload")
        from repro.codepack.dictionary import build_dictionaries

        high_dict, low_dict = build_dictionaries(donor)
        for seed in range(20):
            words = random_words(random.Random(seed), 150, "workload")
            fast = compress_words(words, high_dict=high_dict,
                                  low_dict=low_dict)
            ref = compress_words_reference(words, high_dict=high_dict,
                                           low_dict=low_dict)
            assert_images_identical(fast, ref)
            assert decompress_program(fast) == words
