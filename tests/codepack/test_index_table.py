"""Tests for index-table entry packing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codepack.index_table import (
    INDEX_ENTRY_BITS,
    MAX_BLOCK1_BASE,
    MAX_BLOCK2_OFFSET,
    IndexEntry,
    pack_index_entry,
    unpack_index_entry,
)


class TestPacking:
    def test_fits_32_bits(self):
        word = pack_index_entry(IndexEntry(MAX_BLOCK1_BASE,
                                           MAX_BLOCK2_OFFSET, True, True))
        assert 0 <= word < (1 << INDEX_ENTRY_BITS)

    def test_block2_base_derived(self):
        entry = IndexEntry(block1_base=100, block2_offset=40)
        assert entry.block2_base == 140

    def test_base_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_index_entry(IndexEntry(MAX_BLOCK1_BASE + 1, 0))

    def test_offset_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_index_entry(IndexEntry(0, MAX_BLOCK2_OFFSET + 1))

    def test_unpack_rejects_wide_word(self):
        with pytest.raises(ValueError):
            unpack_index_entry(1 << 32)

    def test_flags_in_top_bits(self):
        word = pack_index_entry(IndexEntry(0, 0, block1_raw=True))
        assert word >> 31 == 1
        word = pack_index_entry(IndexEntry(0, 0, block2_raw=True))
        assert (word >> 30) & 1 == 1


@given(base=st.integers(0, MAX_BLOCK1_BASE),
       offset=st.integers(0, MAX_BLOCK2_OFFSET),
       raw1=st.booleans(), raw2=st.booleans())
def test_pack_unpack_roundtrip(base, offset, raw1, raw2):
    entry = IndexEntry(base, offset, raw1, raw2)
    assert unpack_index_entry(pack_index_entry(entry)) == entry
