"""Tests for the functional decoder."""

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import (
    DecompressionError,
    decompress_block,
    decompress_program,
    iter_block_symbols,
)
from repro.codepack.dictionary import Dictionary
from repro.codepack.codewords import HIGH_SCHEME, LOW_SCHEME


class TestBlockDecode:
    def test_per_block_matches_source(self):
        words = list(range(0x5000, 0x5000 + 40))
        image = compress_words(words)
        assert decompress_block(image, 0) == words[:16]
        assert decompress_block(image, 1) == words[16:32]
        assert decompress_block(image, 2) == words[32:]

    def test_iter_symbols_reports_bit_offsets(self):
        words = [0x12340000] * 16 + [0x43210000] * 16
        image = compress_words(words)
        for block_index in range(image.n_blocks):
            block = image.blocks[block_index]
            offsets = [end for _, end in
                       iter_block_symbols(image, block_index)]
            assert offsets == list(block.inst_end_bits)

    def test_raw_block_decodes(self):
        words = [(i * 2654435761 + 99) & 0xFFFFFFFF for i in range(16)]
        image = compress_words(words)
        assert image.blocks[0].is_raw
        assert decompress_block(image, 0) == words


class TestWholeProgram:
    def test_program_roundtrip(self):
        words = [0x24210001, 0x00000000, 0x8FBF002C] * 30
        image = compress_words(words)
        assert decompress_program(image) == words

    def test_zero_low_halfword_roundtrip(self):
        # The 2-bit tag-only encoding of a zero low halfword.
        words = [0x3C080000] * 20  # lui $t0, 0 -- low half is zero
        image = compress_words(words)
        assert decompress_program(image) == words

    def test_length_mismatch_detected(self):
        image = compress_words([1, 2, 3])
        image.n_instructions = 5
        with pytest.raises(DecompressionError):
            decompress_program(image)


class TestCorruption:
    def test_dictionary_slot_out_of_range(self):
        # Build an image whose dictionary is then truncated: decoding a
        # codeword that points past the shortened dictionary must fail
        # loudly, not return garbage.
        words = [0x11110000 + i for i in range(16)] * 4
        image = compress_words(words)
        if image.blocks[0].is_raw:
            pytest.skip("stream compressed to raw; nothing to corrupt")
        image.high_dict = Dictionary(HIGH_SCHEME, image.high_dict.entries[:1])
        image.low_dict = Dictionary(LOW_SCHEME, [])
        with pytest.raises(DecompressionError):
            decompress_program(image)
