"""Tests for the software-managed decompression engine."""

from repro.codepack import compress_program
from repro.schemes.software import SoftwareDecompEngine
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate
from repro.sim.config import MemoryConfig
from tests.conftest import make_counting_program, make_static_program


def make_engine(prog, **kwargs):
    image = compress_program(prog)
    return SoftwareDecompEngine(image, MemoryConfig(), **kwargs), image


class TestMissCost:
    def test_trap_overhead_charged(self):
        prog = make_counting_program(200)
        cheap, _ = make_engine(prog, trap_overhead=0,
                               cycles_per_instruction=1)
        dear, _ = make_engine(prog, trap_overhead=100,
                              cycles_per_instruction=1)
        assert dear.miss(prog.text_base, 0).critical_ready \
            == cheap.miss(prog.text_base, 0).critical_ready + 100

    def test_decode_cost_scales_with_block(self):
        prog = make_counting_program(200)
        slow, image = make_engine(prog, cycles_per_instruction=50)
        fast, _ = make_engine(prog, cycles_per_instruction=5)
        block = image.blocks[0]
        delta = slow.miss(prog.text_base, 0).critical_ready \
            - fast.miss(prog.text_base, 0).critical_ready
        assert delta == 45 * block.n_instructions

    def test_whole_line_appears_at_once(self):
        prog = make_counting_program(200)
        engine, _ = make_engine(prog)
        fill = engine.miss(prog.text_base, 0)
        assert len(set(fill.word_times)) == 1  # no forwarding
        assert fill.critical_ready == fill.fill_done

    def test_buffer_hit_is_trap_plus_copy(self):
        prog = make_static_program(64)
        engine, _ = make_engine(prog, trap_overhead=30,
                                copy_cycles_per_word=1)
        engine.miss(prog.text_base, 0)
        hit = engine.miss(prog.text_base + 32, 1000)
        assert hit.critical_ready == 1000 + 30 + 8
        assert engine.stats.buffer_hits == 1

    def test_buffer_disabled(self):
        prog = make_static_program(64)
        engine, _ = make_engine(prog, buffer_block=False)
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base + 32, 1000)
        assert engine.stats.buffer_hits == 0
        assert engine.stats.blocks_decoded == 2

    def test_index_reuse_within_group(self):
        prog = make_static_program(128)  # four 16-instruction blocks
        engine, _ = make_engine(prog, buffer_block=False)
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base + 64, 500)  # block 1, same group
        assert engine.stats.index_fetches == 1
        engine.miss(prog.text_base + 128, 1000)  # next group
        assert engine.stats.index_fetches == 2

    def test_stats_decode_cycles(self):
        prog = make_counting_program(200)
        engine, image = make_engine(prog, cycles_per_instruction=10)
        engine.miss(prog.text_base, 0)
        expected = 10 * image.blocks[0].n_instructions
        if image.blocks[0].is_raw:
            expected = image.blocks[0].n_instructions
        assert engine.stats.decode_cycles == expected


class TestEndToEnd:
    def test_transparent(self, pegwit_small):
        image = compress_program(pegwit_small)
        engine = SoftwareDecompEngine(image, ARCH_4_ISSUE.memory)
        native = simulate(pegwit_small, ARCH_4_ISSUE,
                          max_instructions=2_000_000)
        soft = simulate(pegwit_small, ARCH_4_ISSUE, miss_path=engine,
                        mode="software", max_instructions=2_000_000)
        assert soft.output == native.output

    def test_slower_than_hardware(self, cc1_small):
        image = compress_program(cc1_small)
        hardware = simulate(cc1_small, ARCH_4_ISSUE,
                            codepack=CodePackConfig(), image=image,
                            max_instructions=2_000_000)
        soft = simulate(
            cc1_small, ARCH_4_ISSUE, mode="software",
            miss_path=SoftwareDecompEngine(image, ARCH_4_ISSUE.memory),
            max_instructions=2_000_000)
        assert soft.cycles > hardware.cycles

    def test_nearly_free_on_loop_code(self, small_suite):
        prog = small_suite["mpeg2enc"]
        image = compress_program(prog)
        native = simulate(prog, ARCH_4_ISSUE, max_instructions=2_000_000)
        soft = simulate(
            prog, ARCH_4_ISSUE, mode="software",
            miss_path=SoftwareDecompEngine(image, ARCH_4_ISSUE.memory),
            max_instructions=2_000_000)
        # The paper's "attractive option" case: almost no misses, so
        # almost no cost.  (At test scale the cold-start decodes are a
        # visible fraction; at full scale the overhead vanishes.)
        assert soft.cycles < native.cycles * 1.25
