"""Tests for full-word dictionary compression (Lefurgy '97 style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.dictword import (
    DICTIONARY_CAPACITY,
    DictWordEngine,
    compress_dictword,
    decompress_dictword,
    _class_of_slot,
)
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate
from tests.conftest import make_counting_program


class TestCodewordClasses:
    def test_capacity(self):
        assert DICTIONARY_CAPACITY == 128 + 1024 + 4096

    def test_class_boundaries(self):
        assert _class_of_slot(0)[:3] == (0b0, 1, 7)
        assert _class_of_slot(127)[:3] == (0b0, 1, 7)
        assert _class_of_slot(128)[:3] == (0b10, 2, 10)
        assert _class_of_slot(128 + 1023)[:3] == (0b10, 2, 10)
        assert _class_of_slot(128 + 1024)[:3] == (0b110, 3, 12)

    def test_index_within_class(self):
        assert _class_of_slot(130)[3] == 2

    def test_beyond_capacity_raises(self):
        with pytest.raises(IndexError):
            _class_of_slot(DICTIONARY_CAPACITY)


class TestCodec:
    def test_roundtrip_program(self, cc1_small):
        image = compress_dictword(cc1_small)
        assert decompress_dictword(image) == cc1_small.text

    def test_roundtrip_small(self):
        prog = make_counting_program(50)
        image = compress_dictword(prog)
        assert decompress_dictword(image) == prog.text

    def test_repetitive_stream_uses_dictionary_hard(self):
        from repro.isa.program import Program
        words = [0x24210001, 0x00851021] * 200
        prog = Program(text=words)
        image = compress_dictword(prog)
        # Two distinct instructions -> 2 dictionary entries, 8-bit
        # codewords: ratio near 0.25 plus framing.
        assert len(image.dictionary) == 2
        assert image.compression_ratio < 0.40
        assert decompress_dictword(image) == words

    def test_unique_words_stay_raw(self):
        from repro.isa.program import Program
        words = [(i * 2654435761 + 7) & 0xFFFFFFFF for i in range(64)]
        prog = Program(text=words)
        image = compress_dictword(prog)
        assert len(image.dictionary) == 0
        assert decompress_dictword(image) == words

    def test_stats_account_image(self, pegwit_small):
        image = compress_dictword(pegwit_small)
        assert image.compressed_bytes == image.stats.total_bytes
        assert image.stats.dictionary_bits \
            == 32 * len(image.dictionary)

    def test_ratio_similar_to_codepack(self, cc1_small):
        """Paper: 'This method achieves compression ratios similar to
        CodePack, but requires a dictionary with several thousand
        entries'."""
        from repro.codepack import compress_program
        dictword = compress_dictword(cc1_small)
        codepack = compress_program(cc1_small)
        assert abs(dictword.compression_ratio
                   - codepack.compression_ratio) < 0.12
        assert len(dictword.dictionary) \
            > len(codepack.high_dict) + len(codepack.low_dict)


class TestEngineCompatibility:
    def test_same_timing_machinery_as_codepack(self, cc1_small):
        """DictWordEngine inherits CodePackEngine; an image with the
        same per-instruction bit geometry must produce comparable miss
        timing."""
        image = compress_dictword(cc1_small)
        engine = DictWordEngine(image, ARCH_4_ISSUE.memory,
                                CodePackConfig())
        fill = engine.miss(cc1_small.text_base, now=0)
        assert fill.critical_ready > 10  # index fetch + burst + decode
        assert engine.stats.misses == 1

    def test_end_to_end_transparent(self, cc1_small):
        image = compress_dictword(cc1_small)
        native = simulate(cc1_small, ARCH_4_ISSUE,
                          max_instructions=2_000_000)
        packed = simulate(
            cc1_small, ARCH_4_ISSUE, mode="dictword",
            miss_path=DictWordEngine(image, ARCH_4_ISSUE.memory,
                                     CodePackConfig()),
            max_instructions=2_000_000)
        assert packed.output == native.output
        assert packed.instructions == native.instructions

    def test_output_buffer_prefetch_works(self, cc1_small):
        image = compress_dictword(cc1_small)
        packed = simulate(
            cc1_small, ARCH_4_ISSUE, mode="dictword",
            miss_path=DictWordEngine(image, ARCH_4_ISSUE.memory,
                                     CodePackConfig()),
            max_instructions=2_000_000)
        assert packed.engine.buffer_hits > 0


WORD = st.integers(0, 0xFFFFFFFF)


@settings(max_examples=40, deadline=None)
@given(st.lists(WORD, min_size=1, max_size=150))
def test_roundtrip_arbitrary_word_streams(words):
    from repro.isa.program import Program
    image = compress_dictword(Program(text=words))
    assert decompress_dictword(image) == words
