"""Unit and property tests for canonical Huffman coding."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.bitstream import BitReader, BitWriter
from repro.schemes.huffman import (
    MAX_CODE_BITS,
    CanonicalHuffman,
    HuffmanError,
    build_canonical_code,
    histogram_of_bytes,
)


class TestCodeConstruction:
    def test_single_symbol_gets_one_bit(self):
        table = build_canonical_code({65: 10})
        assert table[65] == (0, 1)

    def test_two_symbols(self):
        table = build_canonical_code({0: 5, 1: 3})
        assert sorted(table.values()) == [(0, 1), (1, 1)]

    def test_frequent_symbols_get_shorter_codes(self):
        table = build_canonical_code({0: 100, 1: 10, 2: 10, 3: 1})
        assert table[0][1] <= table[3][1]

    def test_kraft_inequality_holds_with_equality(self):
        hist = {i: i + 1 for i in range(40)}
        table = build_canonical_code(hist)
        assert sum(2 ** -length for _, length in table.values()) \
            == pytest.approx(1.0)

    def test_canonical_codes_are_prefix_free(self):
        hist = {i: (i * 37) % 100 + 1 for i in range(64)}
        table = build_canonical_code(hist)
        items = sorted(table.values())
        for (code_a, len_a) in items:
            for (code_b, len_b) in items:
                if (code_a, len_a) == (code_b, len_b):
                    continue
                if len_a <= len_b:
                    assert code_b >> (len_b - len_a) != code_a

    def test_length_limit_enforced(self):
        # Fibonacci-like frequencies force deep optimal trees.
        freq = {}
        a, b = 1, 1
        for i in range(40):
            freq[i] = a
            a, b = b, a + b
        table = build_canonical_code(freq, max_bits=12)
        assert max(length for _, length in table.values()) <= 12
        assert sum(2 ** -length for _, length in table.values()) <= 1.0

    def test_empty_histogram_rejected(self):
        with pytest.raises(HuffmanError):
            build_canonical_code({})


class TestCodec:
    def test_roundtrip_bytes(self):
        data = b"the quick brown fox jumps over the lazy dog" * 5
        code = CanonicalHuffman(histogram_of_bytes(data))
        encoded, bits = code.encode(data)
        assert code.decode(encoded, len(data)) == list(data)
        assert bits <= len(data) * 8

    def test_skewed_data_compresses(self):
        data = bytes([0] * 900 + list(range(1, 30)))
        code = CanonicalHuffman(histogram_of_bytes(data))
        _, bits = code.encode(data)
        assert bits < len(data) * 4

    def test_encode_symbol_outside_alphabet_raises(self):
        code = CanonicalHuffman({1: 5, 2: 5})
        with pytest.raises(KeyError):
            code.encode_symbol(BitWriter(), 3)

    def test_decode_garbage_raises(self):
        code = CanonicalHuffman({i: 1 for i in range(4)})
        # All codes are 2 bits here; feed more bits than any codeword
        # by building a reader over a pattern that cannot resolve...
        # with a complete code every pattern resolves, so instead check
        # the error path via a truncated stream.
        with pytest.raises(EOFError):
            code.decode(b"", 1)

    def test_encoded_bits_matches_table(self):
        code = CanonicalHuffman({10: 100, 20: 1})
        assert code.encoded_bits(10) == code.table[10][1]

    def test_storage_bits_constant(self):
        code = CanonicalHuffman({1: 1})
        assert code.storage_bits == 256 * 5


@settings(max_examples=60, deadline=None)
@given(st.binary(min_size=1, max_size=400))
def test_roundtrip_arbitrary_bytes(data):
    code = CanonicalHuffman(histogram_of_bytes(data))
    encoded, _ = code.encode(data)
    assert bytes(code.decode(encoded, len(data))) == data


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(0, 255), st.integers(1, 10_000),
                       min_size=1, max_size=256))
def test_code_always_valid(hist):
    table = build_canonical_code(hist, max_bits=MAX_CODE_BITS)
    assert set(table) == set(hist)
    assert all(1 <= length <= MAX_CODE_BITS
               for _, length in table.values())
    assert sum(2 ** -length for _, length in table.values()) <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=100))
def test_symbolwise_decode_matches_stream(symbols):
    code = CanonicalHuffman(Counter(symbols))
    writer = BitWriter()
    for symbol in symbols:
        code.encode_symbol(writer, symbol)
    writer.pad_to_byte()
    reader = BitReader(writer.to_bytes())
    assert [code.decode_symbol(reader) for _ in symbols] == symbols
