"""Property-based round-trip tests for the comparison schemes.

Same contract as the CodePack property suite: arbitrary inputs through
the table-driven fast paths must decode back exactly, for the full-word
dictionary scheme, CCRP's per-line Huffman coding, and the canonical
Huffman substrate itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codepack.bitstream import BitReader
from repro.schemes.ccrp import compress_ccrp, decompress_ccrp
from repro.schemes.dictword import compress_dictword, decompress_dictword
from repro.schemes.huffman import CanonicalHuffman, histogram_of_bytes

from tests.conftest import make_word_program

word = st.integers(min_value=0, max_value=0xFFFFFFFF)
word_lists = st.lists(word, max_size=120)
repetitive_lists = st.lists(st.sampled_from(
    [0x00000000, 0x8C820000, 0x24420001, 0xAFBF0014]), max_size=120)


@settings(max_examples=50, deadline=None)
@given(words=word_lists)
def test_dictword_roundtrip_arbitrary(words):
    image = compress_dictword(make_word_program(words))
    assert decompress_dictword(image) == words


@settings(max_examples=30, deadline=None)
@given(words=repetitive_lists)
def test_dictword_roundtrip_repetitive(words):
    image = compress_dictword(make_word_program(words))
    assert decompress_dictword(image) == words
    if words:
        # A four-word alphabet fits the shortest codeword class.
        assert len(image.dictionary) <= 4


@settings(max_examples=40, deadline=None)
@given(words=st.lists(word, min_size=1, max_size=120))
def test_ccrp_roundtrip(words):
    program = make_word_program(words)
    image = compress_ccrp(program)
    assert decompress_ccrp(image) == program.text_bytes()


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=1, max_size=400))
def test_huffman_bulk_decode_roundtrip(data):
    code = CanonicalHuffman(histogram_of_bytes(data))
    encoded, bit_length = code.encode(data)
    assert bytes(code.decode(encoded, len(data))) == data


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=1, max_size=200),
       offset_bytes=st.integers(min_value=0, max_value=3))
def test_huffman_bulk_decode_matches_per_bit(data, offset_bytes):
    """The table-driven bulk decode must agree with the retained
    per-bit decode_symbol loop, including at non-zero bit offsets."""
    code = CanonicalHuffman(histogram_of_bytes(data))
    encoded, _ = code.encode(data)
    padded = b"\0" * offset_bytes + encoded
    bit_offset = offset_bytes * 8
    fast = code.decode(padded, len(data), bit_offset=bit_offset)
    reader = BitReader(padded, bit_offset)
    slow = [code.decode_symbol(reader) for _ in range(len(data))]
    assert fast == slow == list(data)
