"""Tests for the CCRP scheme."""

import pytest

from repro.schemes.ccrp import (
    LAT_ENTRY_BYTES,
    LAT_GROUP_LINES,
    CcrpEngine,
    compress_ccrp,
    decompress_ccrp,
    decompress_ccrp_line,
)
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate
from repro.sim.config import MemoryConfig
from tests.conftest import make_counting_program, make_static_program


class TestCodec:
    def test_roundtrip(self, cc1_small):
        image = compress_ccrp(cc1_small)
        assert decompress_ccrp(image) == cc1_small.text_bytes()

    def test_roundtrip_small_program(self):
        prog = make_counting_program(50)
        image = compress_ccrp(prog)
        assert decompress_ccrp(image) == prog.text_bytes()

    def test_per_line_decode(self):
        prog = make_counting_program(50)
        image = compress_ccrp(prog)
        data = prog.text_bytes()
        for i, line in enumerate(image.lines):
            start = i * image.line_bytes
            assert decompress_ccrp_line(image, i) \
                == data[start:start + image.line_bytes]

    def test_partial_final_line(self):
        prog = make_counting_program(3)  # not a multiple of 8 insts
        image = compress_ccrp(prog)
        assert decompress_ccrp(image) == prog.text_bytes()
        assert image.lines[-1].n_bytes == len(prog.text_bytes()) % 32

    def test_lines_contiguous(self, pegwit_small):
        image = compress_ccrp(pegwit_small)
        offset = 0
        for line in image.lines:
            assert line.byte_offset == offset
            offset += line.byte_length
        assert offset == len(image.code_bytes)


class TestSizeAccounting:
    def test_stats_sum(self, pegwit_small):
        image = compress_ccrp(pegwit_small)
        assert image.compressed_bytes == image.stats.total_bytes
        assert image.stats.index_table_bits \
            == -(-len(image.lines) // LAT_GROUP_LINES) * 96

    def test_ratio_worse_than_codepack(self, cc1_small):
        """The paper's size comparison: CCRP ~73%+, CodePack ~60%."""
        from repro.codepack import compress_program
        ccrp = compress_ccrp(cc1_small)
        codepack = compress_program(cc1_small)
        assert ccrp.compression_ratio > codepack.compression_ratio + 0.1
        assert ccrp.compression_ratio < 1.0


class TestAddressing:
    def test_line_of_address(self):
        prog = make_counting_program(100)
        image = compress_ccrp(prog)
        assert image.line_of_address(prog.text_base) == 0
        assert image.line_of_address(prog.text_base + 32) == 1
        with pytest.raises(IndexError):
            image.line_of_address(prog.text_base + 1 << 20)

    def test_line_base_address(self):
        prog = make_counting_program(100)
        image = compress_ccrp(prog)
        assert image.line_base_address(2) == prog.text_base + 64


class TestEngine:
    def make_engine(self, prog, **kwargs):
        image = compress_ccrp(prog)
        return CcrpEngine(image, MemoryConfig(), **kwargs), image

    def test_serial_byte_decode_is_slow(self):
        prog = make_counting_program(200)
        engine, image = self.make_engine(prog)
        fill = engine.miss(prog.text_base, now=0)
        # LAT fetch (~12 bytes on a 64-bit bus: 2 beats, done t=12),
        # then the burst and 32 serial byte decodes: far beyond native
        # code's t=10 critical word.
        assert fill.critical_ready > 20
        assert fill.fill_done >= fill.critical_ready

    def test_lat_buffer_hit(self):
        prog = make_static_program(400)
        engine, image = self.make_engine(prog)
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base + 32, 100)  # same 8-line LAT group
        assert engine.stats.lat_fetches == 1
        far = prog.text_base + 32 * LAT_GROUP_LINES
        engine.miss(far, 200)
        assert engine.stats.lat_fetches == 2

    def test_no_lat_buffer(self):
        prog = make_counting_program(200)
        engine, _ = self.make_engine(prog, lat_buffer=False)
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base, 100)
        assert engine.stats.lat_fetches == 2

    def test_faster_decoder_helps(self):
        prog = make_counting_program(200)
        slow, _ = self.make_engine(prog, bytes_per_cycle=1)
        fast, _ = self.make_engine(prog, bytes_per_cycle=4)
        slow_fill = slow.miss(prog.text_base + 28, 0)
        fast_fill = fast.miss(prog.text_base + 28, 0)
        assert fast_fill.critical_ready <= slow_fill.critical_ready

    def test_stats_accumulate(self):
        prog = make_counting_program(300)
        engine, image = self.make_engine(prog)
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base + 32, 50)
        assert engine.stats.misses == 2
        assert engine.stats.lines_fetched == 2
        assert engine.stats.compressed_bytes_fetched \
            == image.lines[0].byte_length + image.lines[1].byte_length


class TestEndToEnd:
    def test_architecturally_transparent(self, cc1_small):
        image = compress_ccrp(cc1_small)
        native = simulate(cc1_small, ARCH_4_ISSUE,
                          max_instructions=2_000_000)
        ccrp = simulate(cc1_small, ARCH_4_ISSUE, mode="ccrp",
                        miss_path=CcrpEngine(image, ARCH_4_ISSUE.memory),
                        max_instructions=2_000_000)
        assert ccrp.output == native.output
        assert ccrp.instructions == native.instructions

    def test_slower_than_hardware_codepack(self, cc1_small):
        """The paper's motivation for halfword symbols over bytes."""
        image = compress_ccrp(cc1_small)
        ccrp = simulate(cc1_small, ARCH_4_ISSUE, mode="ccrp",
                        miss_path=CcrpEngine(image, ARCH_4_ISSUE.memory),
                        max_instructions=2_000_000)
        codepack = simulate(cc1_small, ARCH_4_ISSUE,
                            codepack=CodePackConfig(),
                            max_instructions=2_000_000)
        assert ccrp.cycles > codepack.cycles


class TestLatCache:
    def test_lat_cache_hits_avoid_fetches(self):
        from repro.sim.config import IndexCacheConfig
        prog = make_static_program(400)
        image = compress_ccrp(prog)
        engine = CcrpEngine(image, MemoryConfig(),
                            lat_cache=IndexCacheConfig(8, 1))
        engine.miss(prog.text_base, 0)
        engine.miss(prog.text_base + 32 * LAT_GROUP_LINES, 100)
        engine.miss(prog.text_base, 200)  # cached from the first miss
        assert engine.stats.lat_fetches == 2
        assert engine.stats.index_cache.accesses == 3
        assert engine.stats.index_cache.misses == 2

    def test_lat_cache_speeds_up_runs(self, cc1_small):
        from repro.sim.config import IndexCacheConfig
        image = compress_ccrp(cc1_small)
        base = simulate(cc1_small, ARCH_4_ISSUE, mode="ccrp",
                        miss_path=CcrpEngine(image, ARCH_4_ISSUE.memory),
                        max_instructions=2_000_000)
        cached = simulate(
            cc1_small, ARCH_4_ISSUE, mode="ccrp+latcache",
            miss_path=CcrpEngine(image, ARCH_4_ISSUE.memory,
                                 lat_cache=IndexCacheConfig(64, 4)),
            max_instructions=2_000_000)
        assert cached.cycles <= base.cycles
