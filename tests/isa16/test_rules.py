"""Tests for the SS16 convertibility rules."""

import pytest

from repro.isa.assembler import assemble
from repro.isa16.rules import (
    CLASS_EXPAND,
    CLASS_HALF,
    CLASS_WORD,
    LOW_REGS,
    classify,
    expansion_words,
    is_reach_limited,
)


def word_of(text):
    return assemble(".text 0x400000\n" + text).text[0]


class TestAluRules:
    @pytest.mark.parametrize("text,expected", [
        # three-operand add/sub for low registers
        ("addu $t0, $t1, $t2", CLASS_HALF),
        ("subu $t0, $t1, $t2", CLASS_HALF),
        ("addu $s0, $t1, $t2", CLASS_WORD),  # high destination
        # two-operand logical shapes
        ("and $t0, $t0, $t1", CLASS_HALF),
        ("xor $t0, $t1, $t0", CLASS_HALF),  # commutes into shape
        ("slt $t0, $t1, $t0", CLASS_WORD),  # non-commutative, rd==rt
        ("or $t0, $t1, $t2", CLASS_EXPAND),  # needs a move first
        ("nor $t0, $t1, $t2", CLASS_EXPAND),
        ("and $s0, $s0, $t1", CLASS_WORD),
        # shifts
        ("sll $t0, $t1, 5", CLASS_HALF),
        ("sll $t0, $t1, 31", CLASS_HALF),
        ("srl $s0, $t1, 2", CLASS_WORD),
        ("nop", CLASS_HALF),
        # multiply family
        ("mult $t0, $t1", CLASS_HALF),
        ("div $t0, $s1", CLASS_WORD),
        ("mflo $t0", CLASS_HALF),
        ("mfhi $s0", CLASS_WORD),
    ])
    def test_classification(self, text, expected):
        assert classify(word_of(text)) == expected


class TestImmediateRules:
    @pytest.mark.parametrize("text,expected", [
        ("addiu $t0, $t0, 100", CLASS_HALF),
        ("addiu $t0, $t0, -100", CLASS_HALF),
        ("addiu $t0, $t0, 300", CLASS_WORD),
        ("addiu $t0, $zero, 200", CLASS_HALF),  # MOV imm8
        ("addiu $t0, $t1, 5", CLASS_HALF),  # ADD imm3
        ("addiu $t0, $t1, 12", CLASS_WORD),
        ("addiu $sp, $sp, -48", CLASS_HALF),  # frame adjust
        ("addiu $sp, $sp, -1000", CLASS_WORD),
        ("ori $t0, $t0, 0xFF", CLASS_HALF),
        ("ori $t0, $t0, 0x100", CLASS_WORD),
        ("ori $t0, $t1, 1", CLASS_WORD),
        ("lui $t0, 1", CLASS_WORD),
        ("slti $t0, $t0, 10", CLASS_HALF),
    ])
    def test_classification(self, text, expected):
        assert classify(word_of(text)) == expected


class TestMemoryRules:
    @pytest.mark.parametrize("text,expected", [
        ("lw $t0, 8($t1)", CLASS_HALF),
        ("lw $t0, 124($t1)", CLASS_HALF),
        ("lw $t0, 128($t1)", CLASS_WORD),
        ("lw $t0, 6($t1)", CLASS_WORD),  # unaligned offset
        ("sw $t0, 200($sp)", CLASS_HALF),  # SP-relative imm8
        ("sw $ra, 44($sp)", CLASS_HALF),  # PUSH {lr}
        ("lw $s0, 8($t1)", CLASS_WORD),
        ("lb $t0, 20($t1)", CLASS_HALF),
        ("lb $t0, 40($t1)", CLASS_WORD),
        ("lhu $t0, 62($t1)", CLASS_HALF),
        ("sh $t0, 63($t1)", CLASS_WORD),
    ])
    def test_classification(self, text, expected):
        assert classify(word_of(text)) == expected


class TestControlRules:
    @pytest.mark.parametrize("text,expected", [
        ("here: beq $t0, $zero, here", CLASS_HALF),
        ("here: bne $zero, $t0, here", CLASS_HALF),
        ("here: beq $zero, $zero, here", CLASS_HALF),
        ("here: beq $t0, $t1, here", CLASS_WORD),  # two live registers
        ("here: bltz $t0, here", CLASS_HALF),
        ("here: bgez $s0, here", CLASS_WORD),
        ("here: j here", CLASS_HALF),
        ("here: jal here", CLASS_WORD),
        ("jr $ra", CLASS_HALF),
        ("jalr $ra, $t9", CLASS_HALF),
        ("jalr $t0, $t9", CLASS_WORD),
        ("syscall", CLASS_HALF),
    ])
    def test_classification(self, text, expected):
        assert classify(word_of(text)) == expected

    def test_reach_limited_set(self):
        assert is_reach_limited(word_of("here: beq $t0, $zero, here"))
        assert is_reach_limited(word_of("here: j here"))
        assert not is_reach_limited(word_of("addu $t0, $t1, $t2"))
        assert not is_reach_limited(word_of("jr $ra"))


class TestExpansion:
    def test_expansion_preserves_semantics(self):
        from repro.isa.disassembler import disassemble_word
        word = word_of("or $t0, $t1, $t2")
        move, op = expansion_words(word)
        assert disassemble_word(move) == "addu $t0, $t1, $zero"
        assert disassemble_word(op) == "or $t0, $t0, $t2"

    def test_expansion_classifies_half(self):
        word = word_of("or $t0, $t1, $t2")
        for part in expansion_words(word):
            assert classify(part) == CLASS_HALF

    def test_low_regs_are_eight(self):
        assert len(LOW_REGS) == 8

    def test_undecodable_word_stays_word(self):
        assert classify(0xFC000000) == CLASS_WORD
