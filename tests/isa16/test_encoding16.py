"""Tests for the SS16 binary encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa16 import translate
from repro.isa16.encoding16 import (
    EncodingError,
    assemble_mixed,
    canonical_form,
    decode_half,
    encode_half,
    verify_mixed_encoding,
)
from repro.isa16.rules import CLASS_HALF, classify


def word_of(text):
    return assemble(".text 0x400000\n" + text).text[0]


NON_CONTROL_HALves = [
    "addu $t0, $t1, $t2",
    "subu $t3, $t4, $t5",
    "move $t0, $s3",
    "move $s1, $t2",
    "and $t0, $t0, $t1",
    "or $t2, $t2, $t3",
    "xor $t0, $t1, $t0",  # commutes
    "nor $t4, $t4, $t5",
    "slt $t0, $t0, $t7",
    "sltu $t6, $t6, $t0",
    "sllv $t0, $t0, $t1",
    "srav $t5, $t5, $t2",
    "sll $t0, $t1, 5",
    "srl $t2, $t3, 31",
    "sra $t4, $t5, 1",
    "nop",
    "mult $t0, $t1",
    "divu $t2, $t3",
    "mfhi $t0",
    "mflo $t7",
    "addiu $t0, $t0, 200",
    "addiu $t1, $t1, -200",
    "addiu $t2, $zero, 99",
    "addiu $t3, $t4, 7",
    "addiu $sp, $sp, -48",
    "addiu $sp, $sp, 48",
    "slti $t0, $t0, 100",
    "ori $t1, $t1, 0x7F",
    "andi $t2, $t2, 0xFF",
    "xori $t3, $t3, 1",
    "lw $t0, 64($t1)",
    "sw $t2, 0($t3)",
    "lw $t4, 800($sp)",
    "sw $t5, 1020($sp)",
    "lw $ra, 44($sp)",
    "sw $ra, 1020($sp)",
    "lb $t0, 31($t1)",
    "lbu $t2, 0($t3)",
    "sb $t4, 15($t5)",
    "lh $t6, 62($t7)",
    "lhu $t0, 2($t1)",
    "sh $t2, 0($t3)",
    "jr $ra",
    "jr $t0",
    "jalr $ra, $t9",
    "syscall",
]


class TestRoundtripNonControl:
    @pytest.mark.parametrize("text", NON_CONTROL_HALves)
    def test_encode_decode_roundtrip(self, text):
        word = word_of(text)
        assert classify(word) == CLASS_HALF, text
        h = encode_half(word)
        assert 0 <= h < (1 << 16)
        decoded = decode_half(h)
        assert decoded.branch_offset is None
        assert decoded.word == canonical_form(word), text

    def test_all_encodings_distinct(self):
        halves = [encode_half(word_of(t)) for t in NON_CONTROL_HALves]
        assert len(set(halves)) == len(halves)


class TestControlEncodings:
    @pytest.mark.parametrize("text,offset", [
        ("here: beq $t0, $zero, here", -1),
        ("here: beq $zero, $t3, here", 100),
        ("here: bne $t1, $zero, here", -128),
        ("here: bne $zero, $t2, here", 127),
        ("here: bltz $t0, here", 5),
        ("here: bgez $t1, here", -5),
        ("here: blez $t2, here", 64),
        ("here: bgtz $t3, here", -64),
        ("here: beq $zero, $zero, here", 1000),
        ("here: j here", -1024),
    ])
    def test_roundtrip_with_offset(self, text, offset):
        word = word_of(text)
        h = encode_half(word, branch_offset=offset)
        decoded = decode_half(h)
        assert decoded.branch_offset == offset
        assert decoded.word == canonical_form(word)

    def test_conditional_offset_range_enforced(self):
        word = word_of("here: beq $t0, $zero, here")
        with pytest.raises(EncodingError):
            encode_half(word, branch_offset=128)
        with pytest.raises(EncodingError):
            encode_half(word, branch_offset=-129)

    def test_unconditional_offset_range_enforced(self):
        word = word_of("here: j here")
        with pytest.raises(EncodingError):
            encode_half(word, branch_offset=1024)

    def test_branch_without_offset_rejected(self):
        with pytest.raises(EncodingError):
            encode_half(word_of("here: beq $t0, $zero, here"))


class TestErrors:
    def test_word_class_instruction_rejected(self):
        with pytest.raises(EncodingError):
            encode_half(word_of("lui $t0, 5"))

    def test_high_register_rejected(self):
        with pytest.raises(EncodingError):
            encode_half(word_of("addu $s0, $s1, $s2"))

    def test_bad_halfword_rejected(self):
        with pytest.raises(EncodingError):
            decode_half(1 << 16)


class TestWholeProgram:
    def test_counting_program_verifies(self):
        from tests.conftest import make_counting_program
        mixed = translate(make_counting_program(100))
        count = verify_mixed_encoding(mixed)
        assert count == len(mixed.static)

    def test_benchmark_verifies(self, cc1_small):
        mixed = translate(cc1_small)
        assert verify_mixed_encoding(mixed) == len(mixed.static)

    def test_assembled_size_matches_layout(self, pegwit_small):
        mixed = translate(pegwit_small)
        assert len(assemble_mixed(mixed)) == mixed.text_size

    def test_whole_suite_verifies(self, small_suite):
        for name, program in small_suite.items():
            mixed = translate(program)
            assert verify_mixed_encoding(mixed) == len(mixed.static), name


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 0xFFFF))
def test_decode_never_crashes_unexpectedly(h):
    """Any 16-bit value decodes or raises EncodingError/KeyError-free."""
    try:
        decoded = decode_half(h)
    except (EncodingError, KeyError, IndexError):
        # Unallocated funct numbers surface as lookup errors; that is
        # acceptable for a sparse funct space but must not corrupt.
        return
    assert 0 <= decoded.word < (1 << 32)
