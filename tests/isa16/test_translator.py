"""Tests for the SS32 -> SS16 translator."""

import pytest

from repro.isa.builder import AsmBuilder
from repro.isa.registers import A0, RA, T0, T1, T2, T3, V0
from repro.isa16 import simulate_ss16, translate
from repro.sim import ARCH_1_ISSUE, ARCH_4_ISSUE, simulate
from repro.sim.cpu import FunctionalCore
from tests.conftest import make_counting_program, make_memory_program


def run_both(program, arch=ARCH_4_ISSUE):
    mixed = translate(program)
    native = simulate(program, arch, max_instructions=2_000_000)
    dense = simulate_ss16(mixed, arch, max_instructions=2_000_000)
    return mixed, native, dense


class TestSemanticEquivalence:
    def test_counting_program(self):
        _, native, dense = run_both(make_counting_program(2000))
        assert dense.output == native.output
        assert dense.exit_code == native.exit_code

    def test_memory_program(self):
        _, native, dense = run_both(make_memory_program(128))
        assert dense.output == native.output

    def test_in_order_machine(self):
        _, native, dense = run_both(make_counting_program(500),
                                    ARCH_1_ISSUE)
        assert dense.output == native.output

    def test_loop_kernels_equivalent(self, small_suite):
        # mpeg2enc doesn't leak code addresses into its checksum, so
        # its output must match exactly across layouts.  (pegwit's
        # excursion bodies, like the call-heavy stand-ins, read stale
        # pointer registers, so it is only checked for termination.)
        _, native, dense = run_both(small_suite["mpeg2enc"])
        assert dense.output == native.output

    def test_call_heavy_terminates_deterministically(self, cc1_small):
        # Call-heavy stand-ins read stale code pointers into their
        # checksums, so cross-layout outputs differ legitimately; the
        # translated program must still run to completion and be
        # self-deterministic.
        mixed = translate(cc1_small)
        a = simulate_ss16(mixed, ARCH_4_ISSUE, max_instructions=2_000_000)
        b = simulate_ss16(mixed, ARCH_4_ISSUE, max_instructions=2_000_000)
        assert not a.extra["truncated"]
        assert a.output == b.output
        assert a.cycles == b.cycles


class TestLayout:
    def test_size_shrinks(self, cc1_small):
        mixed = translate(cc1_small)
        assert 0.6 < mixed.size_ratio < 0.95
        assert mixed.text_size < cc1_small.text_size

    def test_stats_add_up(self, cc1_small):
        mixed = translate(cc1_small)
        stats = mixed.stats
        assert stats.n_source == len(cc1_small.text)
        assert stats.n_half + stats.n_expanded + stats.n_word \
            == stats.n_source
        assert len(mixed.static) == stats.n_emitted

    def test_text_size_matches_units(self, cc1_small):
        mixed = translate(cc1_small)
        assert mixed.text_size == sum(st.size for st in mixed.static)

    def test_no_word_instruction_straddles_a_line(self, cc1_small):
        mixed = translate(cc1_small, line_bytes=32)
        for st in mixed.static:
            if st.size == 4:
                assert st.addr % 32 <= 28, hex(st.addr)

    def test_pc_index_covers_every_instruction(self, cc1_small):
        mixed = translate(cc1_small)
        for i, st in enumerate(mixed.static):
            assert mixed.pc_index[st.addr] == i

    def test_addresses_contiguous(self, cc1_small):
        mixed = translate(cc1_small)
        addr = mixed.text_base
        for st in mixed.static:
            assert st.addr == addr
            addr += st.size

    def test_entry_relocated(self, cc1_small):
        mixed = translate(cc1_small)
        assert mixed.entry == mixed.addr_map[cc1_small.entry]


class TestBranchReach:
    def _program_with_far_branch(self, distance_insts):
        b = AsmBuilder(name="far")
        b.li(T0, 1)
        b.beq(T0, 0, "target")  # candidate 16-bit (never taken)
        for _ in range(distance_insts):
            b.addu(T1, T1, T2)  # all 16-bit
        b.label("target")
        b.halt()
        return b.build()

    def test_near_branch_stays_half(self):
        prog = self._program_with_far_branch(20)
        mixed = translate(prog)
        assert mixed.stats.demoted_branches == 0

    def test_far_branch_demoted(self):
        prog = self._program_with_far_branch(400)  # ~800B away: too far
        mixed = translate(prog)
        assert mixed.stats.demoted_branches >= 1
        # And it still executes correctly.
        core = FunctionalCore(mixed.program_shim(), static=mixed.static,
                              pc_index=mixed.pc_index)
        core.run(max_instructions=10_000)
        assert core.halted


class TestExpansionsAndRelocs:
    def test_expansion_executes(self):
        b = AsmBuilder(name="expand")
        b.li(T1, 0xF0)
        b.li(T2, 0x0F)
        b.or_(T0, T1, T2)  # rd distinct: expands to move+or
        b.move(A0, T0)
        b.addiu(V0, 0, 1)
        b.syscall()
        b.halt()
        prog = b.build()
        mixed = translate(prog)
        assert mixed.stats.n_expanded >= 1
        _, native, dense = run_both(prog)
        assert native.output == dense.output == "255"

    def test_jump_table_relocated(self):
        b = AsmBuilder(name="table")
        table = 0x1000_0000
        b.li(T0, table)
        b.lw(T1, 0, T0)
        b.jalr(RA, T1)
        b.move(A0, V0)
        b.addiu(V0, 0, 1)
        b.syscall()
        b.halt()
        b.label("callee")
        b.addiu(V0, 0, 77)
        b.ret()
        b.data_label_word(table, "callee")
        prog = b.build()
        mixed = translate(prog)
        _, native, dense = run_both(prog)
        assert native.output == dense.output == "77"
        # The table in the mixed image holds the *new* address.
        new_value = 0
        for offset in range(4):
            new_value = (new_value << 8) | mixed.data[table + offset]
        assert new_value == mixed.addr_map[prog.symbols["callee"]]

    def test_unrelocatable_pointer_rejected(self):
        from repro.isa.program import Program
        prog = Program(text=[0x24080001, 0x2402000A, 0x0000000C],
                       data={0x10000000 + i: b for i, b in
                             enumerate((0xDE, 0xAD, 0xBE, 0xEF))},
                       data_relocs=(0x10000000,))
        with pytest.raises(ValueError):
            translate(prog)


class TestDensityEffects:
    def test_fewer_icache_misses(self, cc1_small):
        _, native, dense = run_both(cc1_small)
        assert dense.icache_misses < native.icache_misses

    def test_more_dynamic_instructions_on_expanding_code(self, cc1_small):
        _, native, dense = run_both(cc1_small)
        assert dense.instructions >= native.instructions
