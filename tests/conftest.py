"""Shared fixtures.

Benchmark programs are expensive to generate (tens of thousands of
instructions), so they are built once per session at a reduced dynamic
scale; tests that need full-scale behaviour build their own.
"""

import random

import pytest

from repro.isa.builder import AsmBuilder
from repro.isa.program import Program
from repro.isa.registers import A0, T0, T1, T2, T3, V0
from repro.workloads.suite import BENCHMARK_NAMES, build_benchmark

#: Dynamic-length multiplier for session fixtures (keeps pytest quick).
TEST_SCALE = 0.05


def make_word_program(words, name="words"):
    """Wrap a raw instruction-word list in a :class:`Program`.

    For codec tests that care about the bit stream, not about
    executability.
    """
    return Program(text=list(words), name=name)


#: The word-distribution shapes the differential harness fuzzes over.
WORD_DISTRIBUTIONS = ("workload", "zero_low", "incompressible", "repetitive")


def random_words(rng, n, kind="workload"):
    """Generate *n* random instruction words of a given *kind*.

    ``workload``
        A mixture modelled on real .text sections: a hot pool of
        repeated instructions (dictionary hits), words with an all-zero
        low half (the paper's dominant low symbol), shared high halves
        with varied immediates, and a fully random tail.
    ``zero_low``
        Every low halfword is zero (exercises the 2-bit zero escape).
    ``incompressible``
        Words drawn uniformly at random: nearly all raw escapes, so
        most blocks take the whole-block raw path.
    ``repetitive``
        A tiny pool of words: everything lands in the dictionary.
    """
    if kind == "zero_low":
        return [rng.getrandbits(16) << 16 for _ in range(n)]
    if kind == "incompressible":
        return [rng.getrandbits(32) for _ in range(n)]
    if kind == "repetitive":
        pool = [rng.getrandbits(32) for _ in range(4)]
        return [rng.choice(pool) for _ in range(n)]
    pool = [rng.getrandbits(32) for _ in range(12)]
    highs = [rng.getrandbits(16) for _ in range(6)]
    words = []
    for _ in range(n):
        r = rng.random()
        if r < 0.35:
            words.append(rng.choice(pool))
        elif r < 0.55:
            words.append(rng.getrandbits(16) << 16)
        elif r < 0.80:
            words.append((rng.choice(highs) << 16) | rng.getrandbits(16))
        else:
            words.append(rng.getrandbits(32))
    return words


def random_word_program(seed, size=None, kind=None):
    """A seeded random program for differential fuzzing."""
    rng = random.Random(seed)
    if kind is None:
        kind = WORD_DISTRIBUTIONS[rng.randrange(len(WORD_DISTRIBUTIONS))]
    if size is None:
        size = rng.randrange(0, 200)
    return make_word_program(random_words(rng, size, kind),
                             name="fuzz-%s-%d" % (kind, seed))


def make_counting_program(n=100):
    """A tiny deterministic program: sums 1..n, prints, halts."""
    b = AsmBuilder(name="counting")
    b.li(T0, 0)  # i
    b.li(T1, n)
    b.li(T2, 0)  # acc
    b.label("loop")
    b.addiu(T0, T0, 1)
    b.addu(T2, T2, T0)
    b.bne(T0, T1, "loop")
    b.move(A0, T2)
    b.addiu(V0, 0, 1)
    b.syscall()
    b.halt()
    return b.build()


def make_static_program(n_words):
    """A program whose .text is *n_words* long (for geometry tests).

    Executes straight through a run of distinct ALU instructions and
    halts; only its static size usually matters.
    """
    if n_words < 2:
        raise ValueError("need at least the 2-instruction halt")
    b = AsmBuilder(name="static%d" % n_words)
    for i in range(n_words - 2):
        b.addiu(T0, T0, i & 0x7FFF)
    b.halt()  # li $v0,10 ; syscall
    prog = b.build()
    assert len(prog.text) == n_words
    return prog


def make_memory_program(words=64):
    """Writes then reads back an array; exercises the D-cache path."""
    b = AsmBuilder(name="memtest")
    base = 0x1030_0000
    b.li(T0, base)
    b.li(T1, 0)
    b.li(T3, words)
    b.label("wloop")
    b.sw(T1, 0, T0)
    b.addiu(T0, T0, 4)
    b.addiu(T1, T1, 1)
    b.bne(T1, T3, "wloop")
    b.li(T0, base)
    b.li(T1, 0)
    b.li(T2, 0)
    b.label("rloop")
    b.lw(A0, 0, T0)
    b.addu(T2, T2, A0)
    b.addiu(T0, T0, 4)
    b.addiu(T1, T1, 1)
    b.bne(T1, T3, "rloop")
    b.move(A0, T2)
    b.addiu(V0, 0, 1)
    b.syscall()
    b.halt()
    return b.build()


@pytest.fixture(scope="session")
def counting_program():
    return make_counting_program()


@pytest.fixture(scope="session")
def memory_program():
    return make_memory_program()


@pytest.fixture(scope="session")
def small_suite():
    """All six benchmarks at a small dynamic scale, built once."""
    return {name: build_benchmark(name, scale=TEST_SCALE)
            for name in BENCHMARK_NAMES}


@pytest.fixture(scope="session")
def cc1_small(small_suite):
    return small_suite["cc1"]


@pytest.fixture(scope="session")
def pegwit_small(small_suite):
    return small_suite["pegwit"]
