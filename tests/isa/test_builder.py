"""Tests for the programmatic assembly builder."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.builder import AsmBuilder
from repro.isa.encoding import decode, sign_extend_16
from repro.isa.registers import A0, RA, T0, T1, V0, ZERO


class TestEquivalenceWithAssembler:
    def test_same_encoding_as_text(self):
        b = AsmBuilder()
        b.label("main")
        b.addiu(T0, ZERO, 5)
        b.label("loop")
        b.addiu(T0, T0, -1)
        b.bne(T0, ZERO, "loop")
        b.jal("main")
        b.lw(A0, 8, T1)
        b.sll(V0, T0, 3)
        b.jr(RA)
        built = b.build()

        text = assemble("""
        .text 0x400000
        main:
            addiu $t0, $zero, 5
        loop:
            addiu $t0, $t0, -1
            bne $t0, $zero, loop
            jal main
            lw $a0, 8($t1)
            sll $v0, $t0, 3
            jr $ra
        """)
        assert built.text == text.text


class TestFixups:
    def test_forward_branch(self):
        b = AsmBuilder()
        b.beq(T0, T1, "later")
        b.nop()
        b.nop()
        b.label("later")
        prog = b.build()
        assert sign_extend_16(decode(prog.text[0]).imm) == 2

    def test_backward_jump(self):
        b = AsmBuilder()
        b.label("top")
        b.nop()
        b.j("top")
        prog = b.build()
        assert decode(prog.text[1]).target * 4 == prog.text_base

    def test_absolute_targets_accepted(self):
        b = AsmBuilder()
        b.j(0x400000)
        b.beq(ZERO, ZERO, b.here + 8)
        b.nop()
        b.nop()
        prog = b.build()
        assert decode(prog.text[0]).target * 4 == 0x400000
        assert sign_extend_16(decode(prog.text[1]).imm) == 1

    def test_undefined_label_rejected_at_build(self):
        b = AsmBuilder()
        b.j("nowhere")
        with pytest.raises(ValueError):
            b.build()

    def test_la_fixup(self):
        b = AsmBuilder()
        b.la(T0, "spot")
        b.label("spot")
        prog = b.build()
        addr = prog.symbols["spot"]
        assert decode(prog.text[0]).imm == (addr >> 16) & 0xFFFF
        assert decode(prog.text[1]).imm == addr & 0xFFFF

    def test_data_label_word(self):
        b = AsmBuilder()
        b.data_label_word(0x10000000, "fn")
        b.label("fn")
        b.nop()
        prog = b.build()
        addr = prog.symbols["fn"]
        stored = 0
        for i in range(4):
            stored = (stored << 8) | prog.data[0x10000000 + i]
        assert stored == addr


class TestPseudos:
    def test_nop_encodes_zero(self):
        b = AsmBuilder()
        b.nop()
        assert b.build().text == [0]

    def test_li_masks_to_32_bits(self):
        b = AsmBuilder()
        b.li(T0, -1)
        prog = b.build()
        assert decode(prog.text[0]).imm == 0xFFFF
        assert decode(prog.text[1]).imm == 0xFFFF

    def test_halt_sequence(self):
        b = AsmBuilder()
        b.halt()
        prog = b.build()
        assert len(prog.text) == 2  # li $v0,10 (addiu form) + syscall

    def test_ret(self):
        b = AsmBuilder()
        b.ret()
        fields = decode(b.build().text[0])
        assert fields.funct == 0x08 and fields.rs == 31

    def test_branch_always(self):
        b = AsmBuilder()
        b.label("top")
        b.branch_always("top")
        fields = decode(b.build().text[0])
        assert fields.op == 4 and fields.rs == 0 and fields.rt == 0


class TestLabels:
    def test_duplicate_label_rejected(self):
        b = AsmBuilder()
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_here_advances(self):
        b = AsmBuilder()
        first = b.here
        b.nop()
        assert b.here == first + 4

    def test_entry_selection(self):
        b = AsmBuilder()
        b.nop()
        b.label("main")
        b.nop()
        b.entry("main")
        prog = b.build()
        assert prog.entry == prog.symbols["main"]

    def test_unknown_mnemonic_raises_attribute_error(self):
        b = AsmBuilder()
        with pytest.raises(AttributeError):
            b.frobnicate()


class TestDataSegment:
    def test_data_words_big_endian(self):
        b = AsmBuilder()
        b.data_words(0x10000000, [0x11223344])
        b.nop()
        prog = b.build()
        assert [prog.data[0x10000000 + i] for i in range(4)] \
            == [0x11, 0x22, 0x33, 0x44]
