"""Tests for Program images."""

import pytest

from repro.isa.program import Program


def make(words=None, base=0x400000):
    return Program(text=words or [1, 2, 3], text_base=base)


class TestGeometry:
    def test_sizes(self):
        prog = make([0] * 10)
        assert prog.text_size == 40
        assert prog.text_end == prog.text_base + 40
        assert len(prog) == 10

    def test_contains_text(self):
        prog = make()
        assert prog.contains_text(prog.text_base)
        assert prog.contains_text(prog.text_end - 4)
        assert not prog.contains_text(prog.text_end)
        assert not prog.contains_text(prog.text_base - 4)

    def test_entry_defaults_to_base(self):
        assert make().entry == 0x400000

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            make(base=0x400002)

    def test_bad_word_rejected(self):
        with pytest.raises(ValueError):
            make([1 << 32])


class TestAccess:
    def test_fetch(self):
        prog = make([10, 20, 30])
        assert prog.fetch(prog.text_base + 4) == 20

    def test_fetch_unaligned_rejected(self):
        with pytest.raises(ValueError):
            make().fetch(0x400001)

    def test_fetch_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            make().fetch(0x400000 + 100)

    def test_word_index(self):
        prog = make()
        assert prog.word_index(prog.text_base + 8) == 2

    def test_iter_addresses(self):
        prog = make([7, 8])
        assert list(prog.iter_addresses()) \
            == [(0x400000, 7), (0x400004, 8)]

    def test_text_bytes_big_endian(self):
        prog = make([0x01020304])
        assert prog.text_bytes() == b"\x01\x02\x03\x04"

    def test_address_of(self):
        prog = Program(text=[0], symbols={"main": 0x400000})
        assert prog.address_of("main") == 0x400000
        with pytest.raises(KeyError):
            prog.address_of("other")
