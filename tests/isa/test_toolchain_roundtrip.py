"""Whole-program toolchain round trips.

Builder -> disassembler -> assembler -> identical words, over randomly
generated (but always well-formed) programs.  This pins the three
components of the toolchain to one another at program granularity,
complementing the single-instruction round trips elsewhere.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.builder import AsmBuilder
from repro.isa.disassembler import disassemble_word

REGS = st.integers(1, 31)
LOWS = st.integers(8, 15)


@st.composite
def random_builder_program(draw):
    """A structurally valid random program via the builder."""
    b = AsmBuilder(name="random")
    n_blocks = draw(st.integers(1, 6))
    for block in range(n_blocks):
        b.label("block%d" % block)
        for _ in range(draw(st.integers(1, 8))):
            kind = draw(st.integers(0, 6))
            if kind == 0:
                b.addu(draw(REGS), draw(REGS), draw(REGS))
            elif kind == 1:
                b.addiu(draw(REGS), draw(REGS),
                        draw(st.integers(-0x8000, 0x7FFF)))
            elif kind == 2:
                b.sll(draw(REGS), draw(REGS), draw(st.integers(0, 31)))
            elif kind == 3:
                b.lw(draw(REGS), draw(st.integers(-64, 64)) * 4,
                     draw(REGS))
            elif kind == 4:
                b.lui(draw(REGS), draw(st.integers(0, 0xFFFF)))
            elif kind == 5:
                b.slt(draw(REGS), draw(REGS), draw(REGS))
            else:
                b.mult(draw(REGS), draw(REGS))
        # A backward branch to a random earlier block.
        target = "block%d" % draw(st.integers(0, block))
        b.bne(draw(REGS), 0, target)
    b.halt()
    return b.build()


@settings(max_examples=40, deadline=None)
@given(random_builder_program())
def test_disassemble_reassemble_identity(program):
    lines = [".text %#x" % program.text_base]
    for addr, word in program.iter_addresses():
        lines.append(disassemble_word(word, addr))
    reassembled = assemble("\n".join(lines))
    assert reassembled.text == program.text


@settings(max_examples=40, deadline=None)
@given(random_builder_program())
def test_random_programs_compress_losslessly(program):
    from repro.codepack import compress_program, decompress_program
    image = compress_program(program)
    assert decompress_program(image) == program.text


@settings(max_examples=20, deadline=None)
@given(random_builder_program())
def test_random_programs_survive_container_roundtrip(program):
    import os
    import tempfile

    from repro.tools.container import load_program, save_program
    handle, path = tempfile.mkstemp(suffix=".ss32")
    os.close(handle)
    try:
        save_program(path, program)
        assert load_program(path).text == program.text
    finally:
        os.unlink(path)
