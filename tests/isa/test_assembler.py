"""Tests for the two-pass text assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import disassemble_word
from repro.isa.encoding import decode, sign_extend_16


def words_of(source):
    return assemble(source).text


class TestBasicEncoding:
    def test_r_type(self):
        (word,) = words_of("addu $v0, $a0, $a1")
        fields = decode(word)
        assert (fields.op, fields.funct) == (0, 0x21)
        assert (fields.rd, fields.rs, fields.rt) == (2, 4, 5)

    def test_shift(self):
        (word,) = words_of("sll $t0, $t1, 5")
        fields = decode(word)
        assert fields.shamt == 5
        assert fields.rt == 9
        assert fields.rd == 8

    def test_i_type_negative_imm(self):
        (word,) = words_of("addiu $sp, $sp, -48")
        assert sign_extend_16(decode(word).imm) == -48

    def test_memory_operand(self):
        (word,) = words_of("lw $t0, 12($sp)")
        fields = decode(word)
        assert fields.rs == 29
        assert fields.rt == 8
        assert fields.imm == 12

    def test_memory_operand_negative_offset(self):
        (word,) = words_of("sw $ra, -4($sp)")
        assert sign_extend_16(decode(word).imm) == -4

    def test_memory_operand_no_offset(self):
        (word,) = words_of("lw $t0, ($sp)")
        assert decode(word).imm == 0

    def test_lui(self):
        (word,) = words_of("lui $t0, 0x1234")
        assert decode(word).imm == 0x1234

    def test_syscall(self):
        (word,) = words_of("syscall")
        assert decode(word).funct == 0x0C


class TestLabelsAndBranches:
    def test_backward_branch_offset(self):
        prog = assemble("""
        loop: addiu $t0, $t0, 1
              bne $t0, $t1, loop
        """)
        offset = sign_extend_16(decode(prog.text[1]).imm)
        assert offset == -2  # relative to the instruction after the branch

    def test_forward_branch_offset(self):
        prog = assemble("""
              beq $t0, $t1, done
              addiu $t0, $t0, 1
        done: syscall
        """)
        assert sign_extend_16(decode(prog.text[0]).imm) == 1

    def test_jump_target_absolute(self):
        prog = assemble("""
        .text 0x400000
        start: j start
        """)
        assert decode(prog.text[0]).target * 4 == 0x400000

    def test_multiple_labels_one_address(self):
        prog = assemble("a: b: syscall")
        assert prog.symbols["a"] == prog.symbols["b"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: syscall\nx: syscall")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")

    def test_branch_too_far_rejected(self):
        body = "target: syscall\n" + "addiu $t0, $t0, 1\n" * 0x8002
        with pytest.raises(AssemblerError):
            assemble(body + "beq $t0, $t1, target")


class TestPseudoInstructions:
    def test_nop_is_sll_zero(self):
        (word,) = words_of("nop")
        assert word == 0

    def test_move(self):
        (word,) = words_of("move $t0, $t1")
        fields = decode(word)
        assert fields.funct == 0x21 and fields.rt == 0

    def test_li_always_two_instructions(self):
        assert len(words_of("li $t0, 5")) == 2
        assert len(words_of("li $t0, 0x12345678")) == 2

    def test_li_value(self):
        low_w, high_w = None, None
        words = words_of("li $t0, 0x12345678")
        assert decode(words[0]).imm == 0x1234
        assert decode(words[1]).imm == 0x5678

    def test_la_resolves_label(self):
        prog = assemble("""
        .data 0x10000000
        var: .word 42
        .text
        main: la $t0, var
        """)
        assert decode(prog.text[0]).imm == 0x1000
        assert decode(prog.text[1]).imm == 0x0000

    def test_beqz_bnez_b(self):
        prog = assemble("""
        top: beqz $t0, top
             bnez $t0, top
             b top
        """)
        for word in prog.text:
            assert decode(word).op in (4, 5)

    def test_neg_not(self):
        neg, = words_of("neg $t0, $t1")
        assert decode(neg).funct == 0x23
        not_w, = words_of("not $t0, $t1")
        assert decode(not_w).funct == 0x27


class TestDirectives:
    def test_data_words(self):
        prog = assemble("""
        .data 0x10000000
        tab: .word 1, 2, 0xdeadbeef
        .text
        syscall
        """)
        assert prog.data[0x10000000] == 0
        assert prog.data[0x10000003] == 1
        assert prog.data[0x10000008] == 0xDE

    def test_space_reserves_zeroed(self):
        prog = assemble("""
        .data 0x10000000
        buf: .space 8
        after: .word 7
        .text
        syscall
        """)
        assert prog.symbols["after"] == 0x10000008
        assert prog.data[0x10000000] == 0

    def test_align(self):
        prog = assemble("""
        .data 0x10000000
        a: .word 1
        .align 4
        b: .word 2
        .text
        syscall
        """)
        assert prog.symbols["b"] == 0x10000010

    def test_globl_sets_entry(self):
        prog = assemble("""
        .globl main
        helper: syscall
        main: syscall
        """)
        assert prog.entry == prog.symbols["main"]

    def test_text_base(self):
        prog = assemble(".text 0x800000\nsyscall")
        assert prog.text_base == 0x800000

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".bogus 1")

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError) as err:
            assemble("frob $t0")
        assert "line 1" in str(err.value)

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("addu $t0, $t1")

    def test_bad_register(self):
        with pytest.raises(ValueError):
            assemble("addu $t0, $t1, $nope")

    def test_comments_ignored(self):
        prog = assemble("""
        # full-line comment
        syscall  # trailing comment
        ; alt comment style
        """)
        assert len(prog.text) == 1


class TestDisassemblyRoundtrip:
    SOURCE = """
    .text 0x400000
    main:
        addiu $sp, $sp, -32
        sw $ra, 28($sp)
        li $t0, 0x12345678
        lw $a0, 0($t0)
        jal helper
        beq $v0, $zero, skip
        addu $s0, $s0, $v0
    skip:
        lw $ra, 28($sp)
        addiu $sp, $sp, 32
        jr $ra
    helper:
        slt $v0, $a0, $a1
        jalr $ra, $t9
        mult $a0, $a1
        mflo $v0
        bltz $v0, main
        jr $ra
    """

    def test_reassembles_identically(self):
        prog = assemble(self.SOURCE)
        lines = []
        for addr, word in prog.iter_addresses():
            lines.append(disassemble_word(word, addr))
        reassembled = assemble(".text 0x400000\n" + "\n".join(lines))
        assert reassembled.text == prog.text
