"""Unit and property tests for the SS32 binary formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import (
    Instruction,
    decode,
    encode_i,
    encode_j,
    encode_r,
    high_halfword,
    join_halfwords,
    low_halfword,
    sign_extend_16,
    sign_extend_32,
)


class TestEncodeR:
    def test_fields_land_in_place(self):
        word = encode_r(0, 1, 2, 3, 4, 5)
        fields = decode(word)
        assert (fields.op, fields.rs, fields.rt, fields.rd,
                fields.shamt, fields.funct) == (0, 1, 2, 3, 4, 5)

    def test_all_ones(self):
        word = encode_r(63, 31, 31, 31, 31, 63)
        assert word == 0xFFFFFFFF

    @pytest.mark.parametrize("field,value", [
        ("op", 64), ("rs", 32), ("rt", 32), ("rd", 32),
        ("shamt", 32), ("funct", 64),
    ])
    def test_rejects_out_of_range(self, field, value):
        kwargs = dict(op=0, rs=0, rt=0, rd=0, shamt=0, funct=0)
        kwargs[field] = value
        with pytest.raises(ValueError):
            encode_r(**kwargs)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_r(0, -1, 0, 0, 0, 0)


class TestEncodeI:
    def test_positive_immediate(self):
        word = encode_i(8, 1, 2, 100)
        assert decode(word).imm == 100

    def test_negative_immediate_wraps(self):
        word = encode_i(8, 1, 2, -1)
        assert decode(word).imm == 0xFFFF

    def test_immediate_bounds(self):
        encode_i(8, 0, 0, -0x8000)
        encode_i(8, 0, 0, 0xFFFF)
        with pytest.raises(ValueError):
            encode_i(8, 0, 0, -0x8001)
        with pytest.raises(ValueError):
            encode_i(8, 0, 0, 0x10000)


class TestEncodeJ:
    def test_target_field(self):
        word = encode_j(2, 0x123456)
        assert decode(word).target == 0x123456

    def test_rejects_27_bit_target(self):
        with pytest.raises(ValueError):
            encode_j(2, 1 << 26)


class TestSignExtension:
    @pytest.mark.parametrize("raw,expected", [
        (0, 0), (1, 1), (0x7FFF, 0x7FFF),
        (0x8000, -0x8000), (0xFFFF, -1),
    ])
    def test_sign_extend_16(self, raw, expected):
        assert sign_extend_16(raw) == expected

    @pytest.mark.parametrize("raw,expected", [
        (0, 0), (0x7FFFFFFF, 0x7FFFFFFF),
        (0x80000000, -0x80000000), (0xFFFFFFFF, -1),
    ])
    def test_sign_extend_32(self, raw, expected):
        assert sign_extend_32(raw) == expected


class TestDecode:
    def test_returns_instruction(self):
        assert isinstance(decode(0), Instruction)

    def test_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            decode(1 << 32)
        with pytest.raises(ValueError):
            decode(-1)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_fields_reassemble_to_word(self, word):
        fields = decode(word)
        rebuilt = ((fields.op << 26) | (fields.rs << 21)
                   | (fields.rt << 16) | fields.imm)
        assert rebuilt == word


class TestHalfwords:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_split_join_roundtrip(self, word):
        assert join_halfwords(high_halfword(word), low_halfword(word)) \
            == word

    @given(st.integers(min_value=0, max_value=0xFFFF),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_join_split_roundtrip(self, high, low):
        word = join_halfwords(high, low)
        assert high_halfword(word) == high
        assert low_halfword(word) == low

    def test_join_rejects_oversized(self):
        with pytest.raises(ValueError):
            join_halfwords(0x10000, 0)
        with pytest.raises(ValueError):
            join_halfwords(0, 0x10000)
