"""Consistency tests for the instruction table."""

import pytest

from repro.isa.encoding import encode_i, encode_j, encode_r
from repro.isa.opcodes import (
    CONTROL_CLASSES,
    INSTRUCTIONS,
    InstrClass,
    OP_REGIMM,
    OP_SPECIAL,
    spec_for_name,
    spec_for_word,
)


class TestTableConsistency:
    def test_mnemonics_are_unique_keys(self):
        assert len(INSTRUCTIONS) >= 45

    def test_encodings_do_not_collide(self):
        seen = set()
        for spec in INSTRUCTIONS.values():
            if spec.op == OP_SPECIAL:
                key = ("special", spec.funct)
            elif spec.op == OP_REGIMM:
                key = ("regimm", spec.regimm_rt)
            else:
                key = ("op", spec.op)
            assert key not in seen, "encoding collision for %s" % spec.name
            seen.add(key)

    def test_every_spec_has_known_fu(self):
        for spec in INSTRUCTIONS.values():
            assert spec.fu in ("alu", "mult", "memport")

    def test_latencies_positive(self):
        for spec in INSTRUCTIONS.values():
            assert spec.latency >= 1

    def test_reads_writes_reference_valid_fields(self):
        valid = {"rs", "rt", "rd", "hi", "lo", "ra"}
        for spec in INSTRUCTIONS.values():
            assert set(spec.reads) <= valid
            assert set(spec.writes) <= valid

    def test_control_classes_cover_branches_and_jumps(self):
        for name in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
            assert INSTRUCTIONS[name].iclass is InstrClass.BRANCH
        for name in ("j", "jal", "jr", "jalr"):
            assert INSTRUCTIONS[name].iclass in CONTROL_CLASSES


class TestSpecForWord:
    def test_roundtrip_every_instruction(self):
        for spec in INSTRUCTIONS.values():
            if spec.op == OP_SPECIAL:
                word = encode_r(spec.op, 1, 2, 3, 0, spec.funct)
            elif spec.op == OP_REGIMM:
                word = encode_i(spec.op, 1, spec.regimm_rt, 4)
            elif spec.fmt == "J":
                word = encode_j(spec.op, 16)
            else:
                word = encode_i(spec.op, 1, 2, 4)
            assert spec_for_word(word) is spec

    def test_unknown_funct_returns_none(self):
        assert spec_for_word(encode_r(0, 0, 0, 0, 0, 0x3F)) is None

    def test_unknown_opcode_returns_none(self):
        assert spec_for_word(encode_i(0x3F, 0, 0, 0)) is None

    def test_unknown_regimm_returns_none(self):
        assert spec_for_word(encode_i(OP_REGIMM, 0, 0x1F, 0)) is None


class TestSpecForName:
    def test_lookup(self):
        assert spec_for_name("addu").name == "addu"

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            spec_for_name("frobnicate")
