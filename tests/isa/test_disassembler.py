"""Tests for the disassembler."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_word
from repro.isa.encoding import encode_i, encode_j, encode_r
from repro.isa.opcodes import INSTRUCTIONS, OP_REGIMM, OP_SPECIAL, spec_for_word


class TestSingleWord:
    def test_r_type(self):
        word = encode_r(0, 4, 5, 2, 0, 0x21)
        assert disassemble_word(word) == "addu $v0, $a0, $a1"

    def test_shift_renders_shamt(self):
        word = encode_r(0, 0, 9, 8, 5, 0x00)
        assert disassemble_word(word) == "sll $t0, $t1, 5"

    def test_memory_operand(self):
        word = encode_i(0x23, 29, 8, 12)
        assert disassemble_word(word) == "lw $t0, 12($sp)"

    def test_negative_offset(self):
        word = encode_i(0x2B, 29, 31, -4)
        assert disassemble_word(word) == "sw $ra, -4($sp)"

    def test_branch_target_uses_addr(self):
        word = encode_i(0x04, 8, 9, -2)
        text = disassemble_word(word, addr=0x400008)
        assert text.endswith("0x400004")

    def test_jump_target(self):
        word = encode_j(0x02, 0x400000 // 4)
        assert disassemble_word(word) == "j 0x400000"

    def test_unknown_word_renders_as_data(self):
        word = encode_i(0x3F, 0, 0, 0)
        assert spec_for_word(word) is None
        assert disassemble_word(word).startswith(".word")

    def test_no_operand_instruction(self):
        assert disassemble_word(encode_r(0, 0, 0, 0, 0, 0x0C)) == "syscall"


class TestProgramListing:
    def test_lists_addresses(self):
        prog = assemble(".text 0x400000\nsyscall\nsyscall")
        listing = disassemble(prog)
        assert "00400000: syscall" in listing
        assert "00400004: syscall" in listing


def _word_for_spec(spec, rs, rt, rd, shamt, imm, target):
    if spec.op == OP_SPECIAL:
        return encode_r(spec.op, rs, rt, rd, shamt, spec.funct)
    if spec.op == OP_REGIMM:
        return encode_i(spec.op, rs, spec.regimm_rt, imm)
    if spec.fmt == "J":
        return encode_j(spec.op, target)
    return encode_i(spec.op, rs, rt, imm)


@given(
    name=st.sampled_from(sorted(INSTRUCTIONS)),
    rs=st.integers(0, 31), rt=st.integers(0, 31), rd=st.integers(0, 31),
    shamt=st.integers(0, 31), imm=st.integers(0, 0xFFFF),
    target=st.integers(0, (1 << 26) - 1),
)
def test_disassemble_reassemble_roundtrip(name, rs, rt, rd, shamt, imm,
                                          target):
    """Any encodable instruction disassembles to text that reassembles to
    the architecturally significant bits of the same word."""
    spec = INSTRUCTIONS[name]
    word = _word_for_spec(spec, rs, rt, rd, shamt, imm, target)
    # Branches render PC-relative targets, so anchor at an address that
    # keeps any offset in range.
    addr = 0x20000000
    text = disassemble_word(word, addr)
    reassembled = assemble(".text %#x\n%s" % (addr, text))
    redecoded = spec_for_word(reassembled.text[0])
    assert redecoded is spec
    # Re-rendering must be a fixed point (ignoring don't-care fields).
    assert disassemble_word(reassembled.text[0], addr) == text
