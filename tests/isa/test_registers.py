"""Tests for the register namespace."""

import pytest

from repro.isa.registers import REG_NAMES, SP, ZERO, reg_name, reg_num


class TestRegNum:
    def test_by_symbolic_name(self):
        assert reg_num("$t0") == 8
        assert reg_num("t0") == 8

    def test_by_number_string(self):
        assert reg_num("$31") == 31
        assert reg_num("0") == 0

    def test_by_int_passthrough(self):
        assert reg_num(17) == 17

    def test_case_insensitive(self):
        assert reg_num("$RA") == 31

    def test_whitespace_tolerated(self):
        assert reg_num(" $sp ") == 29

    @pytest.mark.parametrize("bad", ["$t99", "$32", "nope", "", 32, -1])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            reg_num(bad)

    def test_all_names_resolve(self):
        for number, name in enumerate(REG_NAMES):
            assert reg_num("$" + name) == number


class TestRegName:
    def test_roundtrip(self):
        for number in range(32):
            assert reg_num(reg_name(number)) == number

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            reg_name(32)


class TestConstants:
    def test_symbolic_constants_match_names(self):
        assert ZERO == reg_num("$zero")
        assert SP == reg_num("$sp")
