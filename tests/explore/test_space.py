"""SearchSpace: structure, canonicalisation, lowering, validation.

The load-bearing property is the identity guarantee: for any point
``p``, ``cell_from_config(space.config(p)) == space.cell(p)`` --
including derived config *names* -- which is what makes local and
fleet sweep-cache keys interchangeable.
"""

import random

import pytest

from repro.eval.sweep import cell_key
from repro.explore.space import (
    DIMENSION_ORDER,
    SearchSpace,
    SpaceError,
    build_arch,
    build_codepack,
    cell_from_config,
    default_space,
)
from repro.sim.config import BASELINES, KB

SPACE = default_space()
PEGWIT = default_space(["pegwit"])

#: A minimal valid spec to perturb in validation tests.
GOOD_CONFIG = {
    "benchmark": "pegwit", "arch": "4-issue", "icache_kb": 16,
    "bus_bits": 64, "first_latency": 10, "memory_rate": 2,
    "scheme": "codepack", "decode_rate": 2, "index_lines": 4,
    "index_entries": 4, "output_buffer": True,
}


def tiny_dimensions(**overrides):
    dims = {
        "benchmark": ("pegwit",), "arch": ("1-issue",),
        "icache_kb": (16,), "bus_bits": (64,), "first_latency": (10,),
        "memory_rate": (2,), "scheme": ("native", "codepack"),
        "decode_rate": (1,), "index_lines": (0,), "index_entries": (2,),
        "output_buffer": (True,),
    }
    dims.update(overrides)
    return dims


class TestStructure:
    def test_default_space_size(self):
        assert SPACE.size() == 6 * 3 * 6 * 4 * 4 * 3 * 2 * 4 * 5 * 3 * 2

    def test_benchmark_restriction(self):
        assert PEGWIT.size() == SPACE.size() // 6
        assert PEGWIT.choices("benchmark") == ("pegwit",)

    def test_round_trip_preserves_fingerprint(self):
        clone = SearchSpace.from_dict(SPACE.to_dict())
        assert clone.to_dict() == SPACE.to_dict()
        assert clone.fingerprint() == SPACE.fingerprint()

    def test_fingerprint_distinguishes_spaces(self):
        assert SPACE.fingerprint() != PEGWIT.fingerprint()

    def test_from_dict_rejects_bad_specs(self):
        with pytest.raises(SpaceError):
            SearchSpace.from_dict([])
        with pytest.raises(SpaceError):
            SearchSpace.from_dict({"format": 99,
                                   "dimensions": tiny_dimensions()})

    def test_missing_dimension_rejected(self):
        dims = tiny_dimensions()
        del dims["bus_bits"]
        with pytest.raises(SpaceError):
            SearchSpace(dims)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(voltage=(1, 2)))

    def test_empty_and_duplicate_choices_rejected(self):
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(bus_bits=()))
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(bus_bits=(64, 64)))

    def test_choice_values_validated_eagerly(self):
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(benchmark=("no-such-bench",)))
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(arch=("128-issue",)))
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(scheme=("huffman",)))
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(icache_kb=(0,)))
        with pytest.raises(SpaceError):
            SearchSpace(tiny_dimensions(decode_rate=(True,)))

    def test_default_space_empty_restriction_rejected(self):
        with pytest.raises(SpaceError):
            default_space([])
        with pytest.raises(SpaceError):
            default_space(["no-such-bench"])


class TestPoints:
    def test_random_point_is_deterministic(self):
        a = SPACE.random_point(random.Random(11))
        b = SPACE.random_point(random.Random(11))
        assert a == b
        assert len(a) == len(DIMENSION_ORDER)

    def test_describe_names_every_dimension(self):
        point = SPACE.random_point(random.Random(3))
        value = SPACE.describe(point)
        assert set(value) == set(DIMENSION_ORDER)
        assert value["benchmark"] in SPACE.choices("benchmark")

    def test_bad_points_rejected(self):
        with pytest.raises(SpaceError):
            SPACE.describe((0,) * (len(DIMENSION_ORDER) - 1))
        with pytest.raises(SpaceError):
            SPACE.describe((99,) + (0,) * (len(DIMENSION_ORDER) - 1))

    def test_mutate_changes_exactly_one_dimension(self):
        rng = random.Random(5)
        for _ in range(50):
            point = SPACE.random_point(rng)
            mutated = SPACE.mutate(point, rng)
            diffs = [i for i, (a, b) in enumerate(zip(point, mutated))
                     if a != b]
            assert len(diffs) == 1

    def test_mutate_is_deterministic(self):
        point = SPACE.random_point(random.Random(1))
        assert SPACE.mutate(point, random.Random(2)) == \
            SPACE.mutate(point, random.Random(2))

    def test_mutate_on_frozen_space_returns_point(self):
        frozen = SearchSpace(tiny_dimensions(scheme=("codepack",)))
        point = frozen.random_point(random.Random(0))
        assert frozen.mutate(point, random.Random(0)) == point


class TestCanonical:
    def test_native_collapses_decoder_knobs(self):
        point = [0] * len(DIMENSION_ORDER)
        idx = {name: i for i, name in enumerate(DIMENSION_ORDER)}
        point[idx["scheme"]] = SPACE.choices("scheme").index("native")
        point[idx["decode_rate"]] = 2
        point[idx["index_lines"]] = 3
        point[idx["index_entries"]] = 1
        point[idx["output_buffer"]] = 1
        canon = SPACE.canonical(tuple(point))
        for name in ("decode_rate", "index_lines", "index_entries",
                     "output_buffer"):
            assert canon[idx[name]] == 0

    def test_no_index_cache_collapses_entries(self):
        point = [0] * len(DIMENSION_ORDER)
        idx = {name: i for i, name in enumerate(DIMENSION_ORDER)}
        point[idx["scheme"]] = SPACE.choices("scheme").index("codepack")
        point[idx["index_lines"]] = SPACE.choices("index_lines").index(0)
        point[idx["index_entries"]] = 2
        canon = SPACE.canonical(tuple(point))
        assert canon[idx["index_entries"]] == 0

    def test_canonical_is_idempotent_and_cell_preserving(self):
        rng = random.Random(23)
        for _ in range(40):
            point = SPACE.random_point(rng)
            canon = SPACE.canonical(point)
            assert SPACE.canonical(canon) == canon
            assert SPACE.cell(canon) == SPACE.cell(point)


class TestLowering:
    def test_config_drops_dont_care_keys(self):
        idx = {name: i for i, name in enumerate(DIMENSION_ORDER)}
        native = [0] * len(DIMENSION_ORDER)
        native[idx["scheme"]] = SPACE.choices("scheme").index("native")
        config = SPACE.config(tuple(native))
        for name in ("decode_rate", "index_lines", "index_entries",
                     "output_buffer"):
            assert name not in config
        no_index = [0] * len(DIMENSION_ORDER)
        no_index[idx["scheme"]] = SPACE.choices("scheme").index("codepack")
        no_index[idx["index_lines"]] = \
            SPACE.choices("index_lines").index(0)
        config = SPACE.config(tuple(no_index))
        assert "index_entries" not in config
        assert config["decode_rate"] in SPACE.choices("decode_rate")

    def test_wire_identity_over_random_points(self):
        """cell_from_config(space.config(p)) == space.cell(p), so local
        and fleet sweep-cache keys agree for every point."""
        rng = random.Random(31337)
        for _ in range(30):
            point = SPACE.random_point(rng)
            direct = SPACE.cell(point)
            rebuilt = cell_from_config(SPACE.config(point))
            assert rebuilt == direct
            assert rebuilt[1].name == direct[1].name
            assert cell_key(*rebuilt, 0.1, 1000) == \
                cell_key(*direct, 0.1, 1000)

    def test_baseline_knobs_keep_baseline_identity(self):
        base = BASELINES["4-issue"]
        arch = build_arch("4-issue", base.icache.size_bytes // KB,
                          base.memory.bus_bits, base.memory.first_latency,
                          base.memory.rate)
        assert arch is base

    def test_derived_arch_reflects_knobs(self):
        arch = build_arch("4-issue", 4, 16, 40, 4)
        assert arch.icache.size_bytes == 4 * KB
        assert arch.memory.bus_bits == 16
        assert arch.memory.first_latency == 40
        assert arch.memory.rate == 4

    def test_build_codepack_shapes(self):
        assert build_codepack("native", 4, 4, 4, True) is None
        cp = build_codepack("codepack", 2, 4, 8, False)
        assert cp.decode_rate == 2
        assert cp.index_cache.lines == 4
        assert cp.index_cache.entries_per_line == 8
        assert cp.output_buffer is False
        assert build_codepack("codepack", 1, 0, 1, True).index_cache \
            is None


class TestCellFromConfig:
    def test_good_config_builds_cell(self):
        bench, arch, codepack = cell_from_config(GOOD_CONFIG)
        assert bench == "pegwit"
        assert arch.icache.size_bytes == 16 * KB
        assert codepack.index_cache.lines == 4

    @pytest.mark.parametrize("mutation", [
        {"benchmark": "no-such"},
        {"arch": "2-issue"},
        {"scheme": "huffman"},
        {"icache_kb": 0},
        {"icache_kb": "16"},
        {"icache_kb": True},
        {"bus_bits": 12},
        {"first_latency": 0},
        {"memory_rate": 0},
        {"decode_rate": 0},
        {"index_lines": -1},
        {"output_buffer": "yes"},
    ])
    def test_bad_values_raise_space_error(self, mutation):
        config = dict(GOOD_CONFIG)
        config.update(mutation)
        with pytest.raises(SpaceError):
            cell_from_config(config)

    def test_missing_keys_raise_space_error(self):
        config = dict(GOOD_CONFIG)
        del config["bus_bits"]
        with pytest.raises(SpaceError):
            cell_from_config(config)

    def test_non_object_rejected(self):
        with pytest.raises(SpaceError):
            cell_from_config(["not", "a", "dict"])

    def test_native_ignores_decoder_knobs(self):
        config = {"benchmark": "pegwit", "arch": "4-issue",
                  "icache_kb": 16, "bus_bits": 64, "first_latency": 10,
                  "memory_rate": 2, "scheme": "native"}
        bench, arch, codepack = cell_from_config(config)
        assert codepack is None
