"""Pricing backends: local/fleet equivalence, wire specs, routing.

The FleetBackend drives an asyncio fleet from synchronous engine code
through its own private event loop, so these tests host a
:class:`LocalFleet` on a *background thread's* loop and let the
backend dial it over real sockets -- the same topology as a spawned
fleet, without the process-fork cost.
"""

import asyncio
import contextlib
import random
import threading

import pytest

from repro.eval.sweep import cell_key
from repro.explore.backends import (
    BackendError,
    FleetBackend,
    LocalBackend,
    PriceJob,
)
from repro.explore.search import Explorer
from repro.explore.space import cell_from_config, default_space
from repro.serve import protocol
from repro.serve.client import FleetClient, ServeClient, spec_shard
from repro.serve.fleet import LocalFleet
from repro.serve.protocol import ProtocolError
from repro.serve.server import CodePackServer, ServerConfig

SPACE = default_space(["pegwit"])
SCALE = 0.02
CAP = 100_000

CONFIG_SPEC = {
    "config": {"benchmark": "pegwit", "arch": "4-issue", "icache_kb": 16,
               "bus_bits": 64, "first_latency": 10, "memory_rate": 2,
               "scheme": "codepack", "decode_rate": 1, "index_lines": 4,
               "index_entries": 4, "output_buffer": True},
    "scale": SCALE, "max_instructions": CAP,
}


def run(coro):
    return asyncio.run(coro)


@contextlib.contextmanager
def fleet_in_thread(n_workers=2, **overrides):
    """A LocalFleet serving on a background thread's event loop."""
    overrides.setdefault("sweep_cache", False)
    started = threading.Event()
    holder = {}

    def host():
        async def main():
            fleet = LocalFleet(n_workers=n_workers,
                               config=ServerConfig(**overrides))
            await fleet.start()
            holder["fleet"] = fleet
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            started.set()
            await holder["stop"].wait()
            await fleet.stop()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "fleet failed to start"
    try:
        yield holder["fleet"]
    finally:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)
        thread.join(timeout=30)


@contextlib.asynccontextmanager
async def running_server(**overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("sweep_cache", False)
    server = CodePackServer(ServerConfig(**overrides))
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()


def jobs_for(points):
    out = []
    for point in points:
        point = SPACE.canonical(point)
        cell = SPACE.cell(point)
        out.append(PriceJob(cell=cell,
                            key=cell_key(cell[0], cell[1], cell[2],
                                         SCALE, CAP),
                            config=SPACE.config(point), point=point))
    return out


class TestSpecShard:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 7):
            shard = spec_shard(CONFIG_SPEC, n)
            assert 0 <= shard < n
            assert spec_shard(CONFIG_SPEC, n) == shard

    def test_key_order_does_not_matter(self):
        reordered = dict(reversed(list(CONFIG_SPEC.items())))
        assert spec_shard(reordered, 5) == spec_shard(CONFIG_SPEC, 5)

    def test_different_specs_spread(self):
        specs = []
        for decode_rate in (1, 2, 4, 16):
            spec = {"config": dict(CONFIG_SPEC["config"],
                                   decode_rate=decode_rate),
                    "scale": SCALE, "max_instructions": CAP}
            specs.append(spec_shard(spec, 4))
        assert len(set(specs)) > 1


class TestServerConfigSpec:
    def test_config_spec_prices_and_keys_match(self):
        async def main():
            async with running_server() as server:
                client = ServeClient(port=server.port)
                await client.connect()
                try:
                    return await client.sweep_cell(CONFIG_SPEC,
                                                   timeout=60.0)
                finally:
                    await client.close()

        response = run(main())
        cell = cell_from_config(CONFIG_SPEC["config"])
        assert response["key"] == cell_key(cell[0], cell[1], cell[2],
                                           SCALE, CAP)
        assert response["cached"] is False
        assert response["result"]["instructions"] > 0

    def test_legacy_spec_still_served(self):
        async def main():
            async with running_server() as server:
                client = ServeClient(port=server.port)
                await client.connect()
                try:
                    return await client.sweep_cell(
                        {"benchmark": "pegwit", "arch": "4-issue",
                         "codepack": False, "scale": SCALE,
                         "max_instructions": CAP}, timeout=60.0)
                finally:
                    await client.close()

        response = run(main())
        assert response["result"]["instructions"] > 0

    @pytest.mark.parametrize("spec", [
        {"config": {"benchmark": "no-such"}, "scale": SCALE},
        {"config": ["not", "an", "object"], "scale": SCALE},
        dict(CONFIG_SPEC, scale="fast"),
        dict(CONFIG_SPEC, scale=-1.0),
        dict(CONFIG_SPEC, max_instructions=0),
    ])
    def test_bad_specs_get_typed_errors(self, spec):
        async def main():
            async with running_server() as server:
                client = ServeClient(port=server.port)
                await client.connect()
                try:
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.sweep_cell(spec, timeout=30.0)
                    assert excinfo.value.code == protocol.ERR_BAD_REQUEST
                finally:
                    await client.close()

        run(main())

    def test_workbench_memo_marks_second_hit_cached(self):
        async def main():
            async with running_server() as server:
                client = ServeClient(port=server.port)
                await client.connect()
                try:
                    cold = await client.sweep_cell(CONFIG_SPEC,
                                                   timeout=60.0)
                    warm = await client.sweep_cell(CONFIG_SPEC,
                                                   timeout=60.0)
                    return cold, warm, server._sweep_gauge()
                finally:
                    await client.close()

        cold, warm, gauge = run(main())
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]
        assert gauge["priced"] == 1
        assert gauge["memo_hits"] == 1
        assert gauge["workbenches"] == 1


class TestFleetClientSweep:
    def test_sweep_cell_routes_by_spec_shard(self):
        with fleet_in_thread(n_workers=2) as fleet:
            async def main():
                async with FleetClient(fleet.addresses) as client:
                    shard = client.sweep_shard(CONFIG_SPEC)
                    assert shard == spec_shard(CONFIG_SPEC, 2)
                    response = await client.sweep_cell(CONFIG_SPEC,
                                                       timeout=60.0)
                    return shard, response

            shard, response = run(main())
        assert response["result"]["instructions"] > 0
        cell = cell_from_config(CONFIG_SPEC["config"])
        assert response["key"] == cell_key(cell[0], cell[1], cell[2],
                                           SCALE, CAP)


class TestLocalBackend:
    def test_prices_jobs_in_order(self):
        backend = LocalBackend(scale=SCALE, max_instructions=CAP)
        rng = random.Random(2)
        jobs = jobs_for([SPACE.random_point(rng) for _ in range(4)])
        outcomes = backend.price(jobs)
        assert len(outcomes) == len(jobs)
        for job, outcome in zip(jobs, outcomes):
            assert outcome.backend == "local"
            assert outcome.result.instructions > 0
        assert backend.describe().startswith("local(")
        assert "sweep" in backend.stats()
        backend.close()


class TestFleetBackend:
    def test_needs_addresses(self):
        with pytest.raises(ValueError):
            FleetBackend([])

    def test_fleet_matches_local_and_sequence_is_identical(self):
        local = Explorer(
            SPACE, LocalBackend(scale=SCALE, max_instructions=CAP),
            budget=10, seed=7, batch=5).run()
        with fleet_in_thread(n_workers=2) as fleet:
            backend = FleetBackend(fleet.addresses, scale=SCALE,
                                   max_instructions=CAP, timeout=60.0)
            try:
                remote = Explorer(SPACE, backend, budget=10, seed=7,
                                  batch=5).run()
                stats = backend.stats()
            finally:
                backend.close()
        assert remote.visited == local.visited
        assert remote.frontier.values_set() == \
            local.frontier.values_set()
        assert remote.stats.backend_priced == 10
        assert stats["frames"] == 10
        assert sum(row["frames"] for row in
                   stats["per_shard"].values()) == 10

    def test_second_run_is_served_by_worker_memos(self):
        with fleet_in_thread(n_workers=2) as fleet:
            def explore_once():
                backend = FleetBackend(fleet.addresses, scale=SCALE,
                                       max_instructions=CAP,
                                       timeout=60.0)
                try:
                    result = Explorer(SPACE, backend, budget=8, seed=3,
                                      batch=4).run()
                finally:
                    backend.close()
                return result

            cold = explore_once()
            warm = explore_once()
        assert cold.stats.remote_cached == 0
        # Same cells route to the same workers, whose sweep workbench
        # memos answer without re-simulating.
        assert warm.stats.remote_cached == 8
        assert warm.visited == cold.visited

    def test_key_mismatch_is_a_loud_failure(self):
        with fleet_in_thread(n_workers=1) as fleet:
            backend = FleetBackend(fleet.addresses, scale=SCALE,
                                   max_instructions=CAP, timeout=60.0)
            try:
                point = SPACE.canonical(
                    SPACE.random_point(random.Random(1)))
                cell = SPACE.cell(point)
                job = PriceJob(cell=cell, key="f" * 64,
                               config=SPACE.config(point), point=point)
                with pytest.raises(BackendError):
                    backend.price([job])
            finally:
                backend.close()
