"""Pareto frontier invariants, dominance properties, hypervolume math."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.pareto import (
    FrontierMember,
    ParetoFrontier,
    dominates,
    hypervolume,
)

vectors = st.lists(st.integers(min_value=0, max_value=4),
                   min_size=2, max_size=2).map(tuple)
vector_lists = st.lists(vectors, min_size=1, max_size=24)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_in_one_equal_elsewhere(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_tradeoff_neither_dominates(self):
        assert not dominates((1.0, 3.0), (3.0, 1.0))
        assert not dominates((3.0, 1.0), (1.0, 3.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    @given(vectors)
    def test_irreflexive(self, v):
        assert not dominates(v, v)

    @given(vectors, vectors)
    def test_antisymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(vectors, vectors, vectors)
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)


def offer_all(vecs):
    frontier = ParetoFrontier(2)
    for i, values in enumerate(vecs):
        frontier.add("k%d" % i, values, seq=i)
    return frontier


class TestFrontier:
    def test_requires_an_objective(self):
        with pytest.raises(ValueError):
            ParetoFrontier(0)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            ParetoFrontier(2).add("k", (1.0,))

    def test_insert_and_evict(self):
        frontier = ParetoFrontier(2)
        assert frontier.add("a", (2.0, 2.0))
        assert frontier.add("b", (1.0, 3.0))       # tradeoff: both stay
        assert len(frontier) == 2
        assert frontier.add("c", (1.0, 1.0))       # dominates both
        assert len(frontier) == 1
        assert "c" in frontier and "a" not in frontier
        assert frontier.inserted == 3
        assert frontier.evicted == 2

    def test_dominated_candidate_rejected(self):
        frontier = ParetoFrontier(2)
        frontier.add("a", (1.0, 1.0))
        assert not frontier.add("b", (2.0, 2.0))
        assert not frontier.add("c", (1.0, 1.0))   # equal counts too
        assert frontier.rejected == 2
        assert len(frontier) == 1

    def test_reoffering_member_key_is_noop(self):
        frontier = ParetoFrontier(2)
        frontier.add("a", (1.0, 2.0))
        assert not frontier.add("a", (0.0, 0.0))   # resume replays keys
        assert frontier.members()[0].values == (1.0, 2.0)

    def test_members_keep_first_insertion_order(self):
        frontier = offer_all([(0, 9), (9, 0), (4, 4)])
        assert [m.key for m in frontier.members()] == ["k0", "k1", "k2"]
        assert [m.seq for m in frontier.members()] == [0, 1, 2]

    @given(vector_lists)
    @settings(max_examples=80, deadline=None)
    def test_no_member_dominates_another(self, vecs):
        members = offer_all(vecs).members()
        for a in members:
            for b in members:
                assert not dominates(a.values, b.values)

    @given(vector_lists, st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_value_set_is_insertion_order_independent(self, vecs, rng):
        shuffled = list(vecs)
        rng.shuffle(shuffled)
        assert offer_all(vecs).values_set() == \
            offer_all(shuffled).values_set()

    @given(vector_lists)
    @settings(max_examples=80, deadline=None)
    def test_every_offer_is_dominated_or_on_frontier(self, vecs):
        frontier = offer_all(vecs)
        values = frontier.values_set()
        for v in vecs:
            v = tuple(float(x) for x in v)
            assert v in values or any(dominates(m, v) for m in values)

    @given(vector_lists)
    @settings(max_examples=60, deadline=None)
    def test_counters_balance(self, vecs):
        frontier = offer_all(vecs)
        assert frontier.inserted - frontier.evicted == len(frontier)
        assert frontier.inserted + frontier.rejected == len(vecs)


class TestHypervolume:
    def test_empty(self):
        assert hypervolume([], (1.0, 1.0)) == 0.0

    def test_single_point_1d(self):
        assert hypervolume([(0.25,)], (1.0,)) == pytest.approx(0.75)

    def test_single_point_2d_is_box_area(self):
        assert hypervolume([(0.0, 0.0)], (1.0, 1.0)) == pytest.approx(1.0)
        assert hypervolume([(0.5, 0.5)], (1.0, 1.0)) == pytest.approx(0.25)

    def test_two_point_union_subtracts_overlap(self):
        # Boxes [0.5,1]x[0,1] and [0,1]x[0.5,1]: 0.5 + 0.5 - 0.25.
        hv = hypervolume([(0.5, 0.0), (0.0, 0.5)], (1.0, 1.0))
        assert hv == pytest.approx(0.75)

    def test_three_objectives_exact(self):
        # One corner box plus a disjoint-in-z slab contribution.
        hv = hypervolume([(0.0, 0.0, 0.5), (0.5, 0.5, 0.0)],
                         (1.0, 1.0, 1.0))
        # (0,0,0.5) covers 1*1*0.5; (0.5,0.5,0) adds 0.25*0.5 below
        # z=0.5 (its z-slab [0,0.5) where the first point is absent).
        assert hv == pytest.approx(0.5 + 0.125)

    def test_points_outside_reference_contribute_nothing(self):
        assert hypervolume([(1.0, 0.0), (2.0, 2.0)], (1.0, 1.0)) == 0.0

    def test_duplicates_count_once(self):
        hv = hypervolume([(0.5, 0.5), (0.5, 0.5)], (1.0, 1.0))
        assert hv == pytest.approx(0.25)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([(0.2, 0.2)], (1.0, 1.0))
        both = hypervolume([(0.2, 0.2), (0.6, 0.6)], (1.0, 1.0))
        assert both == pytest.approx(base)

    @given(vector_lists, vectors)
    @settings(max_examples=60, deadline=None)
    def test_monotone_under_extra_points(self, vecs, extra):
        ref = (5.0, 5.0)
        assert hypervolume(vecs + [extra], ref) >= \
            hypervolume(vecs, ref) - 1e-12


class TestNormalizedHypervolume:
    def test_bounds_arity_checked(self):
        frontier = ParetoFrontier(2)
        with pytest.raises(ValueError):
            frontier.normalized_hypervolume([(0.0, 1.0)])

    def test_single_member_degenerate_bounds(self):
        # Degenerate bounds normalise to 0.0, so one member spans the
        # whole [0, ref) box: ref**n.
        frontier = ParetoFrontier(2)
        frontier.add("a", (3.0, 7.0))
        hv = frontier.normalized_hypervolume([(3.0, 3.0), (7.0, 7.0)])
        assert hv == pytest.approx(1.1 * 1.1)

    def test_normalisation_maps_extremes(self):
        frontier = ParetoFrontier(2)
        frontier.add("a", (0.0, 100.0))
        frontier.add("b", (10.0, 0.0))
        hv = frontier.normalized_hypervolume([(0.0, 10.0), (0.0, 100.0)])
        # Normalised members are (0,1) and (1,0) against ref (1.1,1.1):
        # 2 * (1.1 * 0.1) - 0.1**2.
        assert hv == pytest.approx(0.21)

    def test_grows_as_frontier_advances(self):
        bounds = [(0.0, 10.0), (0.0, 10.0)]
        frontier = ParetoFrontier(2)
        frontier.add("a", (8.0, 8.0))
        before = frontier.normalized_hypervolume(bounds)
        frontier.add("b", (2.0, 2.0))
        assert frontier.normalized_hypervolume(bounds) > before


def test_frontier_member_defaults():
    member = FrontierMember(key="k", values=(1.0, 2.0))
    assert member.point is None
    assert member.meta == {}
    assert member.seq == 0
