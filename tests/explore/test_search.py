"""Explorer engine: determinism, caching, journal resume, objectives.

Every exploration here runs at tiny scale (0.02-0.05) over the
pegwit-only space, so whole seeded searches price in well under a
second while still exercising the real simulator.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.eval.sweep import ResultCache
from repro.explore.backends import LocalBackend
from repro.explore.journal import JournalError, RunJournal
from repro.explore.pareto import dominates
from repro.explore.search import (
    DEFAULT_OBJECTIVES,
    EXHAUSTION_LIMIT,
    OBJECTIVES,
    Explorer,
    ObjectiveError,
    decoder_cost,
    resolve_objectives,
)
from repro.explore.space import SearchSpace, default_space
from repro.sim.config import CodePackConfig, IndexCacheConfig

SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                   os.pardir, os.pardir, "src")

SPACE = default_space(["pegwit"])
SCALE = 0.05
CAP = 200_000


def backend():
    return LocalBackend(scale=SCALE, max_instructions=CAP)


def explore(budget=12, seed=7, **kwargs):
    explorer = Explorer(SPACE, backend(), budget=budget, seed=seed,
                        batch=8, **kwargs)
    return explorer.run()


class TestObjectives:
    def test_resolve_validates_names(self):
        assert resolve_objectives(DEFAULT_OBJECTIVES) == DEFAULT_OBJECTIVES
        with pytest.raises(ObjectiveError):
            resolve_objectives(())
        with pytest.raises(ObjectiveError):
            resolve_objectives(("ratio", "no-such"))
        with pytest.raises(ObjectiveError):
            resolve_objectives(("ratio", "ratio"))

    def test_default_objectives_registered(self):
        for name in DEFAULT_OBJECTIVES:
            assert name in OBJECTIVES

    def test_decoder_cost_monotone(self):
        native = decoder_cost(None)
        one = decoder_cost(CodePackConfig(decode_rate=1, index_cache=None))
        four = decoder_cost(CodePackConfig(decode_rate=4, index_cache=None))
        cached = decoder_cost(CodePackConfig(
            decode_rate=4, index_cache=IndexCacheConfig(16, 8)))
        assert native == 0.0
        assert native < one < four < cached

    def test_output_buffer_costs(self):
        with_buf = CodePackConfig(decode_rate=1, index_cache=None,
                                  output_buffer=True)
        without = CodePackConfig(decode_rate=1, index_cache=None,
                                 output_buffer=False)
        assert decoder_cost(with_buf) > decoder_cost(without)


class TestValidation:
    def test_bad_knobs_rejected(self):
        be = backend()
        with pytest.raises(ValueError):
            Explorer(SPACE, be, budget=0)
        with pytest.raises(ValueError):
            Explorer(SPACE, be, batch=0)
        with pytest.raises(ValueError):
            Explorer(SPACE, be, epsilon=1.5)
        with pytest.raises(ObjectiveError):
            Explorer(SPACE, be, objectives=("bogus",))


class TestDeterminism:
    def test_seeded_runs_are_identical(self):
        a = explore(budget=12, seed=7)
        b = explore(budget=12, seed=7)
        assert a.visited == b.visited
        assert a.frontier.values_set() == b.frontier.values_set()
        assert a.bounds == b.bounds
        assert a.stats.visited == 12
        assert a.stats.backend_priced == 12

    def test_different_seeds_diverge(self):
        a = explore(budget=12, seed=7)
        b = explore(budget=12, seed=8)
        assert a.visited != b.visited

    def test_visited_keys_are_unique(self):
        result = explore(budget=16, seed=3)
        assert len(set(result.visited)) == len(result.visited) == 16

    def test_frontier_has_no_dominated_member(self):
        members = explore(budget=20, seed=5).frontier.members()
        assert members
        for a in members:
            for b in members:
                assert not dominates(a.values, b.values)

    def test_bounds_cover_frontier(self):
        result = explore(budget=16, seed=9)
        assert len(result.bounds) == len(DEFAULT_OBJECTIVES)
        for member in result.frontier.members():
            for value, (lo, hi) in zip(member.values, result.bounds):
                assert lo <= value <= hi


HASHSEED_SCRIPT = r"""
import json
from repro.explore.backends import LocalBackend
from repro.explore.search import Explorer
from repro.explore.space import default_space
space = default_space(["pegwit"])
backend = LocalBackend(scale=0.02, max_instructions=100_000)
result = Explorer(space, backend, budget=8, seed=7, batch=8).run()
print(json.dumps(result.visited))
"""


def test_visited_sequence_independent_of_hash_seed():
    """The proposal stream survives hash randomisation: nothing in the
    engine iterates a set/dict whose order depends on ``hash()``."""
    sequences = []
    for hashseed in ("0", "1"):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
        proc = subprocess.run([sys.executable, "-c", HASHSEED_SCRIPT],
                              capture_output=True, text=True, env=env,
                              timeout=600)
        assert proc.returncode == 0, proc.stderr
        sequences.append(json.loads(proc.stdout))
    assert sequences[0] == sequences[1]
    assert len(sequences[0]) == 8


class TestResultCacheIntegration:
    def test_warm_cache_prices_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = explore(budget=10, seed=4, cache=cache)
        assert cold.stats.backend_priced == 10
        assert cold.stats.cache_hits == 0
        warm = explore(budget=10, seed=4, cache=ResultCache(str(tmp_path)))
        assert warm.stats.backend_priced == 0
        assert warm.stats.cache_hits == 10
        assert warm.visited == cold.visited
        assert warm.frontier.values_set() == cold.frontier.values_set()


class TestJournal:
    def test_resume_reprices_zero_cells(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        cold = explore(budget=10, seed=4, journal=path)
        assert cold.stats.backend_priced == 10
        resumed = explore(budget=10, seed=4, journal=path, resume=True)
        assert resumed.stats.backend_priced == 0
        assert resumed.stats.journal_hits == 10
        assert resumed.visited == cold.visited
        assert resumed.frontier.values_set() == cold.frontier.values_set()

    def test_resume_extends_past_old_budget(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(budget=8, seed=4, journal=path)
        extended = explore(budget=14, seed=4, journal=path, resume=True)
        assert extended.stats.journal_hits == 8
        assert extended.stats.backend_priced == 6
        assert extended.stats.visited == 14
        # The journal now carries the full 14-cell run.
        journal = RunJournal(path).load()
        assert len(journal.entries) == 14
        seqs = [entry["seq"] for entry in journal.entries]
        assert seqs == sorted(seqs)

    def test_resume_identity_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(budget=6, seed=4, journal=path)
        with pytest.raises(JournalError):
            explore(budget=6, seed=5, journal=path, resume=True)

    def test_restart_without_resume_truncates(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(budget=6, seed=4, journal=path)
        explore(budget=4, seed=4, journal=path)
        journal = RunJournal(path).load()
        assert len(journal.entries) == 4

    def test_truncated_tail_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore(budget=6, seed=4, journal=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "eval", "seq": 6, "key"')  # cut write
        journal = RunJournal(path).load()
        assert journal.dropped_lines == 1
        assert len(journal.entries) == 6
        resumed = explore(budget=6, seed=4, journal=path, resume=True)
        assert resumed.stats.journal_hits == 6


class TestExhaustion:
    def test_tiny_space_stops_exhausted(self):
        # One benchmark/arch/knob set, two schemes: exactly two
        # canonical cells exist, so a budget of 10 must stop early.
        space = SearchSpace({
            "benchmark": ("pegwit",), "arch": ("1-issue",),
            "icache_kb": (16,), "bus_bits": (64,), "first_latency": (10,),
            "memory_rate": (2,), "scheme": ("native", "codepack"),
            "decode_rate": (1,), "index_lines": (0,),
            "index_entries": (2,), "output_buffer": (True,),
        })
        explorer = Explorer(space, backend(), budget=10, seed=1, batch=4)
        result = explorer.run()
        assert result.stats.stopped == "exhausted"
        assert result.stats.visited == 2
        assert result.stats.duplicates >= EXHAUSTION_LIMIT
        assert len(set(result.visited)) == 2

    def test_budget_stop_is_the_default(self):
        assert explore(budget=6, seed=2).stats.stopped == "budget"


class TestProgressAndStats:
    def test_progress_callback_sees_every_batch(self):
        snapshots = []
        explorer = Explorer(SPACE, backend(), budget=12, seed=7, batch=4,
                            progress=snapshots.append)
        result = explorer.run()
        assert len(snapshots) == result.stats.batches == 3
        assert [s["visited"] for s in snapshots] == [4, 8, 12]
        for snap in snapshots:
            assert snap["budget"] == 12
            assert snap["backend"] == "local"
            assert set(snap) >= {"cells_per_second", "frontier",
                                 "hypervolume", "priced", "cache_hits",
                                 "journal_hits"}

    def test_stats_as_dict_round_trips_through_json(self):
        stats = explore(budget=8, seed=6).stats
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["visited"] == 8
        assert payload["stopped"] == "budget"
        assert payload["backend"].startswith("local(")
        assert payload["cells_per_second"] > 0
        assert "sweep" in payload["backend_stats"]

    def test_summary_mentions_the_essentials(self):
        stats = explore(budget=8, seed=6).stats
        text = stats.summary()
        assert "8 cells visited" in text
        assert "frontier:" in text

    def test_hypervolume_is_reported(self):
        result = explore(budget=16, seed=5)
        assert result.stats.hypervolume > 0.0
        assert result.stats.frontier_size == len(result.frontier)
