"""Load-generator tests: span planning, report shape, a tiny real run."""

import asyncio
import json

import pytest

from repro.serve.loadgen import (
    LoadgenConfig,
    _plan_spans,
    run_compare,
    run_load,
)
from repro.serve.server import CodePackServer, ServerConfig


class TestPlanSpans:
    def test_deterministic_for_seed(self):
        config = LoadgenConfig(requests=50, seed=9)
        assert _plan_spans(config, 40) == _plan_spans(config, 40)
        other = LoadgenConfig(requests=50, seed=10)
        assert _plan_spans(other, 40) != _plan_spans(config, 40)

    def test_spans_stay_in_bounds(self):
        config = LoadgenConfig(requests=200, span=16, working_set=64,
                               seed=3)
        for n_groups in (1, 2, 5, 17, 100):
            for start, count in _plan_spans(config, n_groups):
                assert count >= 1
                assert 0 <= start
                assert start + count <= n_groups

    def test_skew_concentrates_popularity(self):
        config = LoadgenConfig(requests=2000, span=2, working_set=16,
                               skew=1.5, seed=4)
        plan = _plan_spans(config, 64)
        counts = {}
        for span in plan:
            counts[span] = counts.get(span, 0) + 1
        top = max(counts.values())
        # Zipf 1.5 over 16 ranks: the hottest span takes far more than
        # a uniform 1/16 share.
        assert top / len(plan) > 2.0 / 16.0


class TestRunLoad:
    def test_closed_loop_report(self):
        loadgen = LoadgenConfig(mode="closed", connections=2, pipeline=2,
                                requests=40, span=4, working_set=8,
                                scale=0.02, seed=7)

        async def main():
            server = CodePackServer(ServerConfig(port=0,
                                                 batch_window=0.002))
            await server.start()
            try:
                from dataclasses import replace
                return await run_load(replace(loadgen, port=server.port))
            finally:
                await server.shutdown()

        report = asyncio.run(main())
        assert report["completed"] == 40
        assert report["errors"] == {}
        assert report["throughput_rps"] > 0
        assert report["words_returned"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        assert report["workload"]["n_groups"] >= 1
        # Server-side metrics ride along in the report.
        server_metrics = report["server_metrics"]
        assert server_metrics["responses"]["decompress"] == 40
        assert server_metrics["batch"]["batches"] >= 1

    def test_open_loop_report(self):
        loadgen = LoadgenConfig(mode="open", connections=2, requests=30,
                                rate=600.0, span=4, working_set=8,
                                scale=0.02, seed=8)

        async def main():
            server = CodePackServer(ServerConfig(port=0,
                                                 batch_window=0.002))
            await server.start()
            try:
                from dataclasses import replace
                return await run_load(replace(loadgen, port=server.port))
            finally:
                await server.shutdown()

        report = asyncio.run(main())
        assert report["completed"] == 30
        # 30 arrivals at 600/s take at least ~50ms of schedule.
        assert report["wall_seconds"] >= 0.03


class TestRunCompare:
    def test_compare_report_and_output(self, tmp_path):
        loadgen = LoadgenConfig(connections=2, pipeline=2, requests=30,
                                span=4, working_set=6, scale=0.02,
                                seed=5)
        server_config = ServerConfig(batch_window=0.002)
        out = tmp_path / "BENCH_serve.json"

        result = asyncio.run(run_compare(loadgen=loadgen,
                                         server_config=server_config,
                                         output=str(out)))
        assert result["bench"] == "serve"
        assert result["batched"]["completed"] == 30
        assert result["unbatched"]["completed"] == 30
        assert result["speedup"] > 0
        on_disk = json.loads(out.read_text())
        assert on_disk["speedup"] == pytest.approx(result["speedup"])

    def test_compare_requires_batching_enabled(self):
        with pytest.raises(ValueError):
            asyncio.run(run_compare(
                server_config=ServerConfig(batch_window=0.0)))


class TestJainFairness:
    def test_even_is_one(self):
        from repro.serve.loadgen import jain_fairness
        assert jain_fairness([100, 100, 100]) == pytest.approx(1.0)

    def test_single_hot_shard_is_one_over_n(self):
        from repro.serve.loadgen import jain_fairness
        assert jain_fairness([300, 0, 0]) == pytest.approx(1 / 3)

    def test_idle_fleet_counts_as_fair(self):
        from repro.serve.loadgen import jain_fairness
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0


@pytest.mark.slow
class TestRunFleetLoad:
    def test_small_fleet_run_report_shape(self):
        from repro.serve.fleet import Fleet
        from repro.serve.loadgen import run_fleet_load

        config = LoadgenConfig(mode="closed", connections=2, pipeline=2,
                               requests=60, span=4, working_set=12,
                               skew=0.8, benchmark="pegwit", scale=0.02,
                               seed=11)
        with Fleet(n_workers=2, batch_window=0.002, workers=1) as fleet:
            report = run_fleet_load(config, fleet.addresses, drivers=2)

        assert report["completed"] == 60
        assert report["errors"] == {}
        assert report["n_workers"] == 2
        assert report["throughput_rps"] > 0
        assert 0.0 < report["fairness"] <= 1.0
        rows = report["per_shard"]
        assert [row["shard"] for row in rows] == [0, 1]
        assert sum(row["completed"] for row in rows) == 60
        assert all(row["p99_ms"] >= 0 for row in rows)
        fleet_metrics = report["fleet_metrics"]
        assert fleet_metrics["workers"] == 2
        assert fleet_metrics["latency"]["approximate"] is False

    def test_open_loop_rejected(self):
        from repro.serve.loadgen import run_fleet_load

        with pytest.raises(ValueError):
            run_fleet_load(LoadgenConfig(mode="open"),
                           ["127.0.0.1:1"])
