"""Wire-protocol tests: Hypothesis round-trips plus adversarial frames.

The round-trip properties pin the frame envelope and every payload
codec; the adversarial cases check that *any* malformed input surfaces
as a typed :class:`ProtocolError` (never a struct.error, never a hang,
never an unbounded buffer).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    ERR_MALFORMED,
    ERR_TOO_LARGE,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)

words_lists = st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                       max_size=200)
digests = st.binary(min_size=protocol.DIGEST_BYTES,
                    max_size=protocol.DIGEST_BYTES)
request_ids = st.integers(min_value=0, max_value=0xFFFFFFFF)
frame_types = st.integers(min_value=0, max_value=0xFF)


class TestFrameRoundTrip:
    @given(ftype=frame_types, request_id=request_ids,
           payload=st.binary(max_size=512))
    @settings(max_examples=200)
    def test_encode_decode_identity(self, ftype, request_id, payload):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(ftype, request_id, payload))
        frame = decoder.next_frame()
        assert frame == Frame(ftype, request_id, payload)
        assert decoder.next_frame() is None
        assert decoder.pending_bytes == 0

    @given(frames=st.lists(st.tuples(frame_types, request_ids,
                                     st.binary(max_size=64)),
                           min_size=1, max_size=10),
           chunk=st.integers(min_value=1, max_value=7))
    @settings(max_examples=100)
    def test_stream_reassembly_any_chunking(self, frames, chunk):
        """Concatenated frames split at arbitrary byte boundaries decode
        to exactly the original frame sequence."""
        stream = b"".join(encode_frame(t, r, p) for t, r, p in frames)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(stream), chunk):
            decoder.feed(stream[start:start + chunk])
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                out.append((frame.type, frame.request_id, frame.payload))
        assert out == frames

    @given(request_id=st.integers())
    def test_bad_request_id_rejected(self, request_id):
        if 0 <= request_id <= 0xFFFFFFFF:
            encode_frame(0x01, request_id)
        else:
            with pytest.raises(ProtocolError):
                encode_frame(0x01, request_id)


class TestPayloadRoundTrips:
    @given(words=words_lists,
           text_base=st.integers(min_value=0, max_value=0xFFFFFFFF),
           name=st.text(max_size=40))
    @settings(max_examples=150)
    def test_compress_request(self, words, text_base, name):
        payload = protocol.encode_compress_request(words, text_base, name)
        assert protocol.decode_compress_request(payload) \
            == (words, text_base, name)

    @given(digest=digests, blob=st.binary(max_size=300))
    def test_compress_response(self, digest, blob):
        payload = protocol.encode_compress_response(digest, blob)
        assert protocol.decode_compress_response(payload) == (digest, blob)

    @given(digest=digests,
           start=st.integers(min_value=0, max_value=0xFFFFFFFF),
           count=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decompress_request_by_digest(self, digest, start, count):
        payload = protocol.encode_decompress_request(
            digest=digest, group_start=start, group_count=count)
        assert protocol.decode_decompress_request(payload) \
            == (digest, None, start, count, None)

    @given(blob=st.binary(max_size=300),
           start=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decompress_request_inline(self, blob, start):
        payload = protocol.encode_decompress_request(
            image_bytes=blob, group_start=start, group_count=2)
        assert protocol.decode_decompress_request(payload) \
            == (None, blob, start, 2, None)

    @given(digest=digests, start=st.integers(min_value=0,
                                             max_value=0xFFFFFFFF),
           words=words_lists)
    @settings(max_examples=150)
    def test_decompress_response(self, digest, start, words):
        payload = protocol.encode_decompress_response(digest, start, words)
        assert protocol.decode_decompress_response(payload) \
            == (digest, start, words)

    @given(code=st.integers(min_value=0, max_value=0xFFFF),
           message=st.text(max_size=80))
    def test_error_frame(self, code, message):
        payload = protocol.encode_error(code, message)
        got_code, got_message = protocol.decode_error(payload)
        assert got_code == code
        assert got_message == message

    @given(obj=st.recursive(
        st.none() | st.booleans()
        | st.integers(min_value=-2**31, max_value=2**31)
        | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20))
    def test_json_payload(self, obj):
        assert protocol.decode_json_payload(
            protocol.encode_json_payload(obj)) == obj

    def test_decompress_request_requires_one_source(self):
        with pytest.raises(ProtocolError):
            protocol.encode_decompress_request()
        with pytest.raises(ProtocolError):
            protocol.encode_decompress_request(digest=b"\0" * 32,
                                               image_bytes=b"xx")

    def test_inline_decompress_rejects_epoch(self):
        with pytest.raises(ProtocolError):
            protocol.encode_decompress_request(image_bytes=b"xx", epoch=3)


epochs = st.integers(min_value=0, max_value=0xFFFFFFFF)
group_lists = st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                       max_size=50)
short_words = st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                       max_size=20)


class TestV3PayloadRoundTrips:
    """The cooperative-cache and live-membership frames (protocol v3)."""

    @given(digest=digests,
           start=st.integers(min_value=0, max_value=0xFFFFFFFF),
           count=st.integers(min_value=0, max_value=0xFFFFFFFF),
           epoch=epochs)
    @settings(max_examples=150)
    def test_decompress_request_epoch_stamped(self, digest, start, count,
                                              epoch):
        payload = protocol.encode_decompress_request(
            digest=digest, group_start=start, group_count=count,
            epoch=epoch)
        assert protocol.decode_decompress_request(payload) \
            == (digest, None, start, count, epoch)

    @given(shard=st.integers(min_value=0, max_value=0xFFFF),
           host=st.text(max_size=40),
           port=st.integers(min_value=0, max_value=0xFFFFFFFF),
           epoch=st.none() | epochs)
    @settings(max_examples=150)
    def test_redirect_both_layouts(self, shard, host, port, epoch):
        """The legacy (v2) layout and the epoch-tailed v3 layout decode
        through the same function; the legacy layout stays byte-stable
        (no tail), which is the v2-compat contract."""
        payload = protocol.encode_redirect(shard, host, port, epoch=epoch)
        assert protocol.decode_redirect(payload) \
            == (shard, host, port, epoch)
        if epoch is None:
            legacy = protocol.encode_redirect(shard, host, port)
            assert legacy == payload

    @given(digest=digests, groups=group_lists)
    @settings(max_examples=150)
    def test_peer_get_request(self, digest, groups):
        payload = protocol.encode_peer_get_request(digest, groups)
        assert protocol.decode_peer_get_request(payload) \
            == (digest, groups)

    @given(digest=digests,
           entries=st.lists(
               st.tuples(st.integers(min_value=0, max_value=0xFFFFFFFF),
                         st.none() | short_words),
               max_size=10))
    @settings(max_examples=150)
    def test_peer_get_response_mixes_hits_and_misses(self, digest,
                                                     entries):
        payload = protocol.encode_peer_get_response(digest, entries)
        assert protocol.decode_peer_get_response(payload) \
            == (digest, entries)

    @given(digest=digests,
           entries=st.lists(
               st.tuples(st.integers(min_value=0, max_value=0xFFFFFFFF),
                         short_words),
               max_size=10),
           mode=st.sampled_from((protocol.REPLICATE_TIER2,
                                 protocol.REPLICATE_HANDOFF)),
           image=st.none() | st.binary(max_size=200))
    @settings(max_examples=150)
    def test_replicate_request(self, digest, entries, mode, image):
        payload = protocol.encode_replicate_request(
            digest, entries, mode=mode, image_bytes=image)
        assert protocol.decode_replicate_request(payload) \
            == (mode, image, digest, entries)

    @given(accepted=st.integers(min_value=0, max_value=0xFFFFFFFF),
           registered=st.booleans())
    def test_replicate_response(self, accepted, registered):
        payload = protocol.encode_replicate_response(accepted, registered)
        assert protocol.decode_replicate_response(payload) \
            == (accepted, registered)

    @given(epoch=epochs,
           members=st.lists(
               st.tuples(st.integers(min_value=0, max_value=0xFFFF),
                         st.text(max_size=30)),
               min_size=1, max_size=8),
           shard=st.none() | st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=150)
    def test_membership(self, epoch, members, shard):
        payload = protocol.encode_membership(epoch, members, shard=shard)
        assert protocol.decode_membership(payload) \
            == (epoch, members, shard)

    def test_replicate_rejects_unknown_mode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_replicate_request(b"\0" * 32, [], mode=7)
        good = protocol.encode_replicate_request(b"\0" * 32, [(1, [2])])
        with pytest.raises(ProtocolError):
            protocol.decode_replicate_request(b"\x07" + good[1:])

    def test_membership_rejects_empty_table(self):
        with pytest.raises(ProtocolError):
            protocol.decode_membership(
                protocol.encode_json_payload({"epoch": 0, "members": []}))
        with pytest.raises(ProtocolError):
            protocol.decode_membership(
                protocol.encode_json_payload({"members": [[0, "a:1"]]}))


class TestAdversarialFrames:
    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder(max_frame=1024)
        decoder.feed(b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.code == ERR_TOO_LARGE

    def test_undersized_length_prefix_rejected(self):
        # length < envelope can never hold type + request id.
        decoder = FrameDecoder()
        decoder.feed(b"\x03\x00\x00\x00abc")
        with pytest.raises(ProtocolError) as excinfo:
            decoder.next_frame()
        assert excinfo.value.code == ERR_MALFORMED

    def test_truncated_frame_is_incomplete_not_error(self):
        frame = encode_frame(0x01, 7, b"payload")
        decoder = FrameDecoder()
        decoder.feed(frame[:-3])
        assert decoder.next_frame() is None  # waiting, not crashing
        decoder.feed(frame[-3:])
        assert decoder.next_frame() == Frame(0x01, 7, b"payload")

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ProtocolError) as excinfo:
            encode_frame(0x01, 1, b"x" * 100, max_frame=50)
        assert excinfo.value.code == ERR_TOO_LARGE

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_arbitrary_junk_never_raises_anything_else(self, junk):
        """Any byte soup either parses, waits for more, or raises a
        typed ProtocolError -- nothing else."""
        decoder = FrameDecoder(max_frame=4096)
        decoder.feed(junk)
        try:
            while decoder.next_frame() is not None:
                pass
        except ProtocolError:
            pass

    @given(payload=st.binary(max_size=64))
    @settings(max_examples=200)
    def test_payload_codecs_reject_junk_typed(self, payload):
        """Every decoder refuses arbitrary payloads with ProtocolError,
        or parses them -- never an unhandled struct/index error."""
        decoders = (
            protocol.decode_compress_request,
            protocol.decode_compress_response,
            protocol.decode_decompress_request,
            protocol.decode_decompress_response,
            protocol.decode_stats_request,
            protocol.decode_error,
            protocol.decode_json_payload,
            protocol.decode_redirect,
            protocol.decode_peer_get_request,
            protocol.decode_peer_get_response,
            protocol.decode_replicate_request,
            protocol.decode_replicate_response,
            protocol.decode_membership,
        )
        for decode in decoders:
            try:
                decode(payload)
            except ProtocolError:
                pass

    def test_trailing_garbage_rejected(self):
        good = protocol.encode_stats_request(b"\x11" * 32)
        with pytest.raises(ProtocolError) as excinfo:
            protocol.decode_stats_request(good + b"extra")
        assert excinfo.value.code == ERR_MALFORMED
