"""Consistent-hash ring properties.

The two properties the fleet depends on, stated as Hypothesis
properties: ownership is deterministic across processes (routing needs
no coordination beyond the shard list), and removing one of N shards
remaps only the keys that shard owned -- about 1/N of the keyspace --
so a resize never invalidates the surviving workers' caches.
"""

import hashlib
import struct
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import DEFAULT_REPLICAS, HashRing, routing_key

digests = st.binary(min_size=32, max_size=32)
group_starts = st.integers(min_value=0, max_value=0xFFFFFFFF)


def sample_keys(n, salt=b""):
    """*n* deterministic distinct routing keys."""
    return [routing_key(hashlib.sha256(salt + b"%d" % i).digest(),
                        i % 97)
            for i in range(n)]


class TestRoutingKey:
    @given(digests, group_starts)
    def test_deterministic_and_injective_layout(self, digest, start):
        key = routing_key(digest, start)
        assert key == routing_key(digest, start)
        # digest and group start are recoverable: distinct spans can
        # never collide into one routing key.
        assert key[:32] == digest
        assert struct.unpack("<I", key[32:])[0] == start

    def test_span_start_spreads_one_image(self):
        # One hot image must not pin the whole fleet to one worker:
        # different span starts of the same digest reach different
        # shards.
        ring = HashRing(range(4))
        digest = hashlib.sha256(b"hot image").digest()
        owners = {ring.owner_of_span(digest, start)
                  for start in range(0, 256, 8)}
        assert len(owners) > 1

    def test_rejects_nothing_but_requires_bytes(self):
        with pytest.raises((TypeError, struct.error)):
            routing_key(hashlib.sha256(b"x").digest(), -1)


class TestDeterminism:
    @given(st.integers(min_value=1, max_value=12), digests, group_starts)
    @settings(max_examples=60)
    def test_two_rings_agree(self, n_shards, digest, start):
        first = HashRing(range(n_shards))
        second = HashRing(range(n_shards))
        assert first.owner_of_span(digest, start) \
            == second.owner_of_span(digest, start)

    def test_shard_order_and_duplicates_irrelevant(self):
        keys = sample_keys(64)
        ring = HashRing([0, 1, 2, 3])
        shuffled = HashRing([3, 1, 0, 2, 1, 0])
        assert [ring.owner(k) for k in keys] \
            == [shuffled.owner(k) for k in keys]

    def test_owner_map_survives_process_boundary(self):
        """A fresh interpreter with a different PYTHONHASHSEED maps
        every sampled key to the same shard -- routing never leans on
        Python's randomised ``hash()``."""
        keys = sample_keys(128)
        ring = HashRing(range(5))
        local = [ring.owner(key) for key in keys]
        script = (
            "import sys\n"
            "from repro.serve.ring import HashRing, routing_key\n"
            "ring = HashRing(range(5))\n"
            "data = sys.stdin.buffer.read()\n"
            "keys = [data[i:i+36] for i in range(0, len(data), 36)]\n"
            "print(','.join(str(ring.owner(k)) for k in keys))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=b"".join(keys), capture_output=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "424242"})
        remote = [int(x) for x in
                  result.stdout.decode().strip().split(",")]
        assert remote == local


class TestMinimalRemapping:
    @given(st.integers(min_value=2, max_value=8),
           st.data())
    @settings(max_examples=25, deadline=None)
    def test_removal_remaps_only_the_lost_shards_keys(self, n_shards,
                                                      data):
        """Exact consistent-hashing property: after removing shard R,
        a key changes owner **iff** R owned it."""
        ring = HashRing(range(n_shards))
        removed = data.draw(st.integers(min_value=0,
                                        max_value=n_shards - 1))
        shrunk = ring.without(removed)
        assert len(shrunk) == n_shards - 1
        for key in sample_keys(50, salt=b"%d" % removed):
            before = ring.owner(key)
            after = shrunk.owner(key)
            if before == removed:
                assert after != removed
            else:
                assert after == before

    def test_about_one_nth_of_keys_remap(self):
        n_shards, n_keys = 4, 4000
        ring = HashRing(range(n_shards))
        shrunk = ring.without(n_shards - 1)
        keys = sample_keys(n_keys)
        moved = sum(1 for key in keys
                    if ring.owner(key) != shrunk.owner(key))
        # Expect ~1/N; allow generous slack for vnode placement noise.
        assert 0.5 / n_shards < moved / n_keys < 2.0 / n_shards

    def test_load_is_roughly_balanced(self):
        ring = HashRing(range(4))
        counts = {shard: 0 for shard in range(4)}
        for key in sample_keys(4000):
            counts[ring.owner(key)] += 1
        for count in counts.values():
            # Each shard within 2x of fair share with 64 vnodes.
            assert 4000 / 8 < count < 4000 / 2


class TestSuccessorAndGrowth:
    @given(st.integers(min_value=2, max_value=8), digests, group_starts)
    @settings(max_examples=60)
    def test_successor_never_the_owner(self, n_shards, digest, start):
        ring = HashRing(range(n_shards))
        key = routing_key(digest, start)
        successor = ring.successor(key)
        assert successor in ring.shards
        assert successor != ring.owner(key)

    @given(digests, group_starts)
    def test_successor_is_failover_owner(self, digest, start):
        """The replica target IS where the ring routes the key once its
        owner disappears -- peer-fetch and failover agree by
        construction."""
        ring = HashRing(range(5))
        key = routing_key(digest, start)
        assert ring.successor(key) \
            == ring.without(ring.owner(key)).owner(key)

    def test_single_shard_has_no_successor(self):
        ring = HashRing([0])
        assert ring.successor(routing_key(b"\x05" * 32, 0)) is None

    def test_with_shard_adds_only_the_new_shards_keys(self):
        """Join mirror of the removal property: after adding shard S, a
        key changes owner iff S now owns it."""
        ring = HashRing(range(4))
        grown = ring.with_shard(4)
        assert grown.shards == [0, 1, 2, 3, 4]
        assert grown.epoch == ring.epoch + 1
        for key in sample_keys(200, salt=b"join"):
            before = ring.owner(key)
            after = grown.owner(key)
            if after != before:
                assert after == 4

    def test_with_shard_explicit_epoch(self):
        assert HashRing([0, 1], epoch=3).with_shard(2, epoch=9).epoch == 9

    def test_without_is_memoized(self):
        ring = HashRing(range(3))
        assert ring.without(2) is ring.without(2)

    def test_epoch_never_influences_ownership(self):
        keys = sample_keys(100, salt=b"epoch")
        old = HashRing(range(4), epoch=0)
        new = HashRing(range(4), epoch=12)
        assert [old.owner(k) for k in keys] == [new.owner(k) for k in keys]
        assert old == new  # equality is membership, not generation


class TestConstruction:
    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_replicas_floor_and_equality(self):
        assert HashRing([0, 1]) == HashRing([1, 0])
        assert HashRing([0, 1]) != HashRing([0, 1], replicas=8)
        assert HashRing([0], replicas=0).replicas == 1

    def test_describe(self):
        assert HashRing([2, 0]).describe() == {
            "shards": [0, 2], "replicas": DEFAULT_REPLICAS, "epoch": 0}
        assert HashRing([2, 0], epoch=7).describe()["epoch"] == 7
