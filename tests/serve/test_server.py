"""End-to-end server tests over real sockets.

Covers the acceptance contract: round trips, non-trivial metrics,
the adversarial protocol suite (server answers with typed error frames
and keeps serving), backpressure, deadlines, and graceful shutdown
completing admitted requests.
"""

import asyncio
import contextlib

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.serve import protocol
from repro.serve.client import ServeClient, ServerClosedError
from repro.serve.protocol import FrameDecoder, ProtocolError
from repro.serve.server import CodePackServer, ServerConfig
from repro.tools.container import dump_image

from tests.conftest import random_word_program

#: A 400-word program spans ~13 compression groups -- enough for
#: interesting spans while keeping each test fast.
PROGRAM = random_word_program(11, size=400, kind="workload")
EXPECTED_WORDS = decompress_program(
    compress_words(PROGRAM.text, name=PROGRAM.name))


@contextlib.asynccontextmanager
async def running_server(**overrides):
    overrides.setdefault("port", 0)
    server = CodePackServer(ServerConfig(**overrides))
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()


@contextlib.asynccontextmanager
async def connected(server):
    client = ServeClient(port=server.port)
    await client.connect()
    try:
        yield client
    finally:
        await client.close()


async def raw_exchange(port, data):
    """Write raw bytes; return whatever the server sends before EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(data)
    await writer.drain()
    received = b""
    while True:
        chunk = await asyncio.wait_for(reader.read(65536), timeout=5.0)
        if not chunk:
            break
        received += chunk
    writer.close()
    with contextlib.suppress(Exception):
        await writer.wait_closed()
    return received


def run(coro):
    return asyncio.run(coro)


class TestRoundTrips:
    def test_ping(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    assert await client.ping(timeout=5.0)

        run(main())

    def test_compress_then_decompress_by_digest(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    assert len(digest) == protocol.DIGEST_BYTES
                    words = await client.decompress(digest=digest,
                                                    timeout=30.0)
            return blob, words

        blob, words = run(main())
        assert words == EXPECTED_WORDS
        # The returned blob is the canonical container: same digest
        # as a local compression of the same words.
        image = compress_words(PROGRAM.text, name=PROGRAM.name)
        assert blob == dump_image(image)

    def test_decompress_inline_image(self):
        image = compress_words(PROGRAM.text, name=PROGRAM.name)
        blob = dump_image(image)
        per_group = image.block_instructions * image.group_blocks

        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    return await client.decompress(image_bytes=blob,
                                                   group_start=2,
                                                   group_count=3,
                                                   timeout=30.0)

        words = run(main())
        assert words == EXPECTED_WORDS[2 * per_group:5 * per_group]

    def test_stats(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    digest, _blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    return await client.stats(digest, timeout=30.0)

        stats = run(main())
        image = compress_words(PROGRAM.text, name=PROGRAM.name)
        assert stats["n_instructions"] == len(PROGRAM.text)
        assert stats["n_groups"] == image.n_groups
        assert stats["compression_ratio"] == \
            pytest.approx(image.compression_ratio)
        assert stats["dictionary_entries"]["high"] == len(image.high_dict)
        assert 0.0 < sum(stats["composition"].values()) <= 1.001

    def test_unknown_digest_not_found(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.decompress(digest=b"\x01" * 32,
                                                timeout=5.0)
                    assert excinfo.value.code == protocol.ERR_NOT_FOUND
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.stats(b"\x02" * 32, timeout=5.0)
                    assert excinfo.value.code == protocol.ERR_NOT_FOUND

        run(main())


class TestMetricsEndpoint:
    def test_metrics_nontrivial_after_traffic(self):
        """qps, latency percentiles, batch occupancy, cache hit rate and
        queue depth are all present and reflect the traffic served."""

        async def main():
            async with running_server(batch_window=0.01,
                                      queue_limit=64) as server:
                async with connected(server) as client:
                    digest, _ = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    # Eight concurrent identical spans: coalesced into
                    # few batches (occupancy > 1), then repeated
                    # sequentially to generate cache hits.
                    await asyncio.gather(*[
                        client.decompress(digest=digest, group_start=0,
                                          group_count=4, timeout=30.0)
                        for _ in range(8)])
                    for _ in range(4):
                        await client.decompress(digest=digest,
                                                group_start=0,
                                                group_count=4,
                                                timeout=30.0)
                    return await client.metrics(timeout=30.0)

        snap = run(main())
        assert snap["requests"]["compress"] == 1
        assert snap["requests"]["decompress"] == 12
        assert snap["responses"]["decompress"] == 12
        assert snap["qps"]["lifetime"] > 0.0
        assert snap["qps"]["window"] > 0.0

        latency = snap["latency"]
        assert latency["count"] == 13  # compress + 12 decompress
        assert 0.0 < latency["p50_ms"] <= latency["p99_ms"] \
            <= latency["max_ms"]

        batch = snap["batch"]
        assert batch["batches"] >= 1
        # Eight coalesced requests over few batches: real merging.
        assert batch["occupancy"] > 1.0

        cache = snap["gauges"]["cache"]
        assert cache["hits"] >= 16  # 4 repeat spans x 4 groups
        assert 0.0 < cache["hit_rate"] <= 1.0

        # The metrics request itself is the only one in flight.
        assert snap["gauges"]["queue_depth"] == 1
        assert snap["gauges"]["queue_limit"] == 64
        assert snap["gauges"]["queue_peak"] >= 8
        assert snap["gauges"]["images"] == 1

    def test_metrics_on_idle_server(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    return await client.metrics(timeout=5.0)

        snap = run(main())
        assert snap["latency"]["count"] == 0
        assert snap["qps"]["window"] == 0.0
        assert snap["batch"]["occupancy"] == 0.0


class TestAdversarial:
    """Malformed/oversized/unknown input gets typed error frames and the
    server keeps serving -- the acceptance criterion, end to end."""

    def _decode_error_frames(self, received):
        decoder = FrameDecoder()
        decoder.feed(received)
        frames = []
        while True:
            frame = decoder.next_frame()
            if frame is None:
                break
            frames.append(frame)
        return frames

    def test_oversized_length_prefix_closes_with_error(self):
        async def main():
            async with running_server(max_frame=4096) as server:
                received = await raw_exchange(server.port,
                                              b"\xff\xff\xff\xff")
                # ...and the server still answers a fresh connection.
                async with connected(server) as client:
                    alive = await client.ping(timeout=5.0)
            return received, alive

        received, alive = run(main())
        frames = self._decode_error_frames(received)
        assert len(frames) == 1
        assert frames[0].type == protocol.RESP_ERROR
        code, _message = protocol.decode_error(frames[0].payload)
        assert code == protocol.ERR_TOO_LARGE
        assert alive

    def test_undersized_length_prefix_closes_with_error(self):
        async def main():
            async with running_server() as server:
                received = await raw_exchange(server.port,
                                              b"\x02\x00\x00\x00ab")
                async with connected(server) as client:
                    alive = await client.ping(timeout=5.0)
            return received, alive

        received, alive = run(main())
        frames = self._decode_error_frames(received)
        code, _message = protocol.decode_error(frames[0].payload)
        assert code == protocol.ERR_MALFORMED
        assert alive

    def test_unknown_request_type_keeps_connection(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.request(0x55, b"junk", timeout=5.0)
                    assert excinfo.value.code == protocol.ERR_UNKNOWN_TYPE
                    # Same connection still serves real requests.
                    assert await client.ping(timeout=5.0)

        run(main())

    def test_malformed_payload_keeps_connection(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.request(protocol.REQ_DECOMPRESS,
                                             b"\x07\x01", timeout=5.0)
                    assert excinfo.value.code == protocol.ERR_MALFORMED
                    assert await client.ping(timeout=5.0)

        run(main())

    def test_errors_are_counted(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    for _ in range(3):
                        with pytest.raises(ProtocolError):
                            await client.request(protocol.REQ_DECOMPRESS,
                                                 b"zz", timeout=5.0)
                    return await client.metrics(timeout=5.0)

        snap = run(main())
        assert snap["errors"]["malformed"] == 3


def _slow_dispatch(server, delay):
    """Wrap the server's dispatch with a sleep (deadline/drain tests)."""
    real = server._dispatch

    async def slow(frame):
        await asyncio.sleep(delay)
        return await real(frame)

    server._dispatch = slow


class TestDeadlinesAndBackpressure:
    def test_deadline_returns_timeout_error(self):
        async def main():
            async with running_server(request_timeout=0.05) as server:
                async with connected(server) as client:
                    _slow_dispatch(server, 0.5)
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.ping(timeout=5.0)
                    assert excinfo.value.code == protocol.ERR_TIMEOUT

        run(main())

    def test_overload_rejected_with_typed_error(self):
        async def main():
            async with running_server(queue_limit=1) as server:
                async with connected(server) as client:
                    _slow_dispatch(server, 0.3)
                    results = await asyncio.gather(
                        *[client.ping(timeout=5.0) for _ in range(5)],
                        return_exceptions=True)
                    rejected = server.metrics.rejected
            return results, rejected

        results, rejected = run(main())
        ok = [r for r in results if r is True]
        overloaded = [r for r in results
                      if isinstance(r, ProtocolError)
                      and r.code == protocol.ERR_OVERLOADED]
        assert ok, "at least one request must be admitted"
        assert overloaded, "queue_limit=1 must shed concurrent load"
        assert rejected == len(overloaded)


class TestGracefulShutdown:
    def test_shutdown_completes_admitted_request(self):
        """A request in flight when shutdown starts still gets its
        response before the connection is torn down."""

        async def main():
            server = CodePackServer(ServerConfig(port=0,
                                                 batch_window=0.005))
            await server.start()
            client = await ServeClient(port=server.port).connect()
            try:
                digest, _ = await client.compress(
                    PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                _slow_dispatch(server, 0.15)
                pending = asyncio.get_running_loop().create_task(
                    client.decompress(digest=digest, timeout=30.0))
                await asyncio.sleep(0.05)  # let the server admit it
                await server.shutdown(drain=True)
                return await pending
            finally:
                await client.close()
                await server.shutdown()

        assert run(main()) == EXPECTED_WORDS

    def test_requests_after_shutdown_fail(self):
        async def main():
            server = CodePackServer(ServerConfig(port=0))
            await server.start()
            client = await ServeClient(port=server.port).connect()
            try:
                assert await client.ping(timeout=5.0)
                await server.shutdown()
                with pytest.raises((ProtocolError, ServerClosedError,
                                    ConnectionError)):
                    await client.ping(timeout=5.0)
            finally:
                await client.close()

        run(main())


class TestSweepCell:
    def test_sweep_cell_caches_via_configured_dir(self, tmp_path):
        spec = {"benchmark": "pegwit", "arch": "4-issue",
                "codepack": False, "scale": 0.02,
                "max_instructions": 200_000}

        async def main():
            async with running_server(
                    sweep_cache_dir=str(tmp_path)) as server:
                async with connected(server) as client:
                    cold = await client.sweep_cell(spec, timeout=60.0)
                    warm = await client.sweep_cell(spec, timeout=60.0)
            return cold, warm

        cold, warm = run(main())
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["key"] == cold["key"]
        assert warm["result"] == cold["result"]
        assert cold["result"]["instructions"] > 0
        assert list(tmp_path.glob("*.json")), \
            "sweep results must persist in the configured cache dir"

    def test_sweep_cell_bad_benchmark_typed_error(self):
        async def main():
            async with running_server(sweep_cache=False) as server:
                async with connected(server) as client:
                    with pytest.raises(ProtocolError) as excinfo:
                        await client.sweep_cell({"benchmark": "no-such"},
                                                timeout=30.0)
                    assert excinfo.value.code == protocol.ERR_BAD_REQUEST

        run(main())


class TestCompressBatching:
    """PR 7: compress frames flow through the micro-batch window and
    come out as one fused ``compress_many`` call per window."""

    def test_batched_compress_matches_direct_path(self):
        async def main():
            async with running_server(batch_window=0.002) as server:
                async with connected(server) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
            return digest, blob

        digest, blob = run(main())
        image = compress_words(PROGRAM.text, name=PROGRAM.name)
        assert blob == dump_image(image)

    def test_concurrent_compresses_share_windows(self):
        async def main():
            async with running_server(batch_window=0.01) as server:
                async with connected(server) as client:
                    jobs = [
                        client.compress(PROGRAM.text,
                                        name="prog-%d" % i,
                                        timeout=30.0)
                        for i in range(8)]
                    results = await asyncio.gather(*jobs)
                    snap = server.metrics.snapshot()
            return results, snap

        results, snap = run(main())
        assert len({digest for digest, _blob in results}) == 8
        batch = snap["batch"]
        assert batch["compress_requests"] == 8
        assert batch["compress_batches"] >= 1
        # Windows actually merged concurrent compress frames.
        assert batch["compress_occupancy"] > 1.0

    def test_shared_dictionaries_identical_across_workers(self):
        """Two workers pinning the same corpus benchmark produce
        byte-identical containers for the same program -- the property
        that makes fleet-side compress deterministic shard-to-shard."""
        async def main():
            blobs = []
            for _ in range(2):
                async with running_server(
                        batch_window=0.002,
                        shared_dictionaries="pegwit",
                        shared_dict_scale=0.02) as server:
                    assert server.shared_dicts[0] is not None
                    async with connected(server) as client:
                        _digest, blob = await client.compress(
                            PROGRAM.text, name=PROGRAM.name,
                            timeout=30.0)
                        words = await client.decompress(
                            image_bytes=blob, timeout=30.0)
                        assert words == EXPECTED_WORDS
                    blobs.append(blob)
            return blobs

        first, second = run(main())
        assert first == second
        # Pinned dictionaries are corpus-built, not per-program: the
        # container differs from the self-tuned one.
        image = compress_words(PROGRAM.text, name=PROGRAM.name)
        assert first != dump_image(image)

    def test_unknown_shared_dictionary_benchmark_rejected(self):
        async def main():
            server = CodePackServer(ServerConfig(
                port=0, shared_dictionaries="no-such-benchmark"))
            with pytest.raises(ValueError):
                await server.start()
            await server.shutdown()

        run(main())


class TestMetricsSamples:
    def test_samples_payload_exports_latency_window(self):
        async def main():
            async with running_server() as server:
                async with connected(server) as client:
                    for _ in range(3):
                        await client.ping(timeout=5.0)
                    plain = await client.metrics(timeout=5.0)
                    sampled = await client.metrics(samples=True,
                                                   timeout=5.0)
            return plain, sampled

        plain, sampled = run(main())
        assert "latency_samples_ms" not in plain
        samples = sampled["latency_samples_ms"]
        assert len(samples) >= 3
        assert all(isinstance(value, float) for value in samples)
