"""Tier-2 cooperative cache tests: replication, peer-fetch, handoff.

:class:`LocalFleet` runs every worker in the test's own event loop, so
these tests can clear a worker's primary cache mid-run and watch the
peer-fetch path heal it from the ring successor's replica tier -- and
reach into :class:`ReplicaCache` directly to pin the byte budget.
"""

import asyncio
import contextlib

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.serve.batcher import ReplicaCache
from repro.serve.client import FleetClient, Redirected, ServeClient
from repro.serve.fleet import LocalFleet
from repro.serve.ring import routing_key
from repro.serve.server import ServerConfig

from tests.conftest import random_word_program

PROGRAM = random_word_program(47, size=400, kind="workload")
IMAGE = compress_words(PROGRAM.text, name=PROGRAM.name)
EXPECTED_WORDS = decompress_program(IMAGE)
PER_GROUP = IMAGE.block_instructions * IMAGE.group_blocks


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def local_fleet(n_workers, **overrides):
    overrides.setdefault("replicate_interval", 0.01)
    overrides.setdefault("batch_window", 0.001)
    fleet = LocalFleet(n_workers=n_workers,
                       config=ServerConfig(**overrides))
    await fleet.start()
    try:
        yield fleet
    finally:
        await fleet.stop()


def span_words(start, count):
    return tuple(EXPECTED_WORDS[start * PER_GROUP:
                                (start + count) * PER_GROUP])


async def warm_fleet(client, starts, count=2):
    """Register the image and decode every span in *starts*."""
    digest, blob = await client.compress(PROGRAM.text, name=PROGRAM.name,
                                         timeout=30.0)
    await client.broadcast_register(image_bytes=blob)
    for start in starts:
        words = await client.decompress(digest=digest, group_start=start,
                                        group_count=count, timeout=30.0)
        assert tuple(words) == span_words(start, count)
    return digest


async def settle(fleet, predicate, timeout=5.0):
    """Poll until *predicate()* holds (the pump is write-behind)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            return False
        await asyncio.sleep(0.02)
    return True


class TestReplicationPump:
    def test_pump_pushes_hot_groups_to_ring_successor(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    assert await settle(
                        fleet, lambda: sum(
                            len(s.replicas) for s in fleet.servers) > 0)
                    # Every replicated group sits on exactly the shard
                    # the ring names as its owner's successor.
                    found = 0
                    for start in starts:
                        owner = client.shard_for(digest, start)
                        successor = client.ring.successor(
                            routing_key(digest, start))
                        copy = fleet.server(successor).replicas.peek(
                            (digest, start))
                        if copy is not None:
                            found += 1
                            assert tuple(copy)[:PER_GROUP] \
                                == span_words(start, 1)
                        for shard in fleet.members:
                            if shard in (owner, successor):
                                continue
                            assert fleet.server(shard).replicas.peek(
                                (digest, start)) is None
                    assert found > 0
                    out = sum(s.metrics.replicated_out_groups
                              for s in fleet.servers)
                    accepted = sum(s.metrics.replicated_in_groups
                                   for s in fleet.servers)
                    assert out > 0 and accepted > 0

        run(main())

    def test_replicas_never_pollute_the_primary_cache(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    await settle(fleet, lambda: sum(
                        len(s.replicas) for s in fleet.servers) > 0)
                    # Tier-2 storage is strictly separate: a non-owner
                    # holds replicated groups only in `replicas`, its
                    # primary cache stays empty of them (group 0 is
                    # exempt -- broadcast_register seeds it everywhere).
                    for start in starts:
                        if start == 0:
                            continue
                        owner = client.shard_for(digest, start)
                        for shard in fleet.members:
                            if shard != owner:
                                assert fleet.server(shard).cache.get(
                                    (digest, start)) is None

        run(main())


class TestPeerFetch:
    def test_cold_owner_heals_from_successor_byte_identical(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    victim_start = starts[1]
                    owner = client.shard_for(digest, victim_start)
                    successor = client.ring.successor(
                        routing_key(digest, victim_start))
                    assert await settle(
                        fleet, lambda: fleet.server(successor)
                        .replicas.peek((digest, victim_start))
                        is not None)
                    server = fleet.server(owner)
                    server.cache.clear()  # evict the whole hot set
                    hits_before = server.metrics.peer_fetch_hits
                    served_before = fleet.server(
                        successor).metrics.peer_served_groups
                    words = await client.decompress(
                        digest=digest, group_start=victim_start,
                        group_count=2, timeout=30.0)
                    assert tuple(words) == span_words(victim_start, 2)
                    assert server.metrics.peer_fetch_hits > hits_before
                    assert fleet.server(successor) \
                        .metrics.peer_served_groups > served_before
                    # The healed groups are back in the owner's primary
                    # cache -- the next request is a plain cache hit.
                    assert server.cache.peek(
                        (digest, victim_start)) is not None

        run(main())

    def test_peer_fetch_miss_falls_back_to_decode(self):
        async def main():
            # Budget 0 disables the tier entirely: nothing replicates,
            # every fetch misses, yet a cleared owner still serves
            # correct words by decoding.
            async with local_fleet(3, replica_budget=0) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    await asyncio.sleep(0.1)
                    assert sum(len(s.replicas)
                               for s in fleet.servers) == 0
                    victim_start = starts[1]
                    owner = client.shard_for(digest, victim_start)
                    fleet.server(owner).cache.clear()
                    words = await client.decompress(
                        digest=digest, group_start=victim_start,
                        group_count=2, timeout=30.0)
                    assert tuple(words) == span_words(victim_start, 2)
                    assert fleet.server(owner) \
                        .metrics.peer_fetch_hits == 0

        run(main())


class TestReplicaCacheBudget:
    def test_byte_budget_is_a_hard_ceiling(self):
        cache = ReplicaCache(max_bytes=400)  # room for 100 words total
        for group in range(20):
            cache.put(("d", group), tuple(range(10)))  # 40 bytes each
        assert cache.bytes <= 400
        assert len(cache) == 10
        assert cache.evictions == 10
        # LRU: the newest entries survived.
        assert cache.peek(("d", 19)) is not None
        assert cache.peek(("d", 0)) is None

    def test_oversized_entry_refused_not_thrashed(self):
        cache = ReplicaCache(max_bytes=40)
        cache.put(("d", 0), (1, 2))
        assert not cache.put(("d", 1), tuple(range(100)))
        assert cache.peek(("d", 0)) is not None  # nothing was evicted

    def test_replace_reuses_budget(self):
        cache = ReplicaCache(max_bytes=100)
        cache.put(("d", 0), tuple(range(20)))
        cache.put(("d", 0), tuple(range(5)))
        assert cache.bytes == 20
        assert len(cache) == 1

    def test_zero_budget_disables(self):
        cache = ReplicaCache(max_bytes=0)
        assert not cache.put(("d", 0), (1,))
        assert len(cache) == 0


class TestJoinHandoff:
    def test_join_warms_the_new_owner_before_ownership_flips(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    # Step-1 single-group spans: enough distinct keys
                    # that the joiner always claims a few, and no span
                    # overlap to muddy which owner cached which group.
                    starts = list(range(0, IMAGE.n_groups - 1))
                    digest = await warm_fleet(client, starts, count=1)
                    old_ring = client.ring
                    new_id, joiner = await fleet.join()
                    await client.refresh_topology()
                    assert client.epoch == 1
                    moved = [s for s in starts
                             if client.shard_for(digest, s) == new_id
                             and old_ring.owner(routing_key(digest, s))
                             != new_id]
                    assert moved, "join must claim some keys"
                    # The handoff streamed the moved hot set into the
                    # joiner's *primary* cache before ownership flipped:
                    # >= 90% of the moved spans are already warm.
                    warm = sum(1 for s in moved
                               if joiner.cache.peek((digest, s))
                               is not None)
                    assert warm / len(moved) >= 0.9
                    assert joiner.metrics.handoff_in_groups > 0
                    assert sum(s.metrics.handoff_out_groups
                               for s in fleet.servers
                               if s is not joiner) > 0
                    # And the fleet serves every span correctly after.
                    for start in starts:
                        words = await client.decompress(
                            digest=digest, group_start=start,
                            group_count=1, timeout=30.0)
                        assert tuple(words) == span_words(start, 1)

        run(main())

    def test_leave_hands_the_hot_set_to_survivors(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    victim = client.shard_for(digest, starts[1])
                    owned = [s for s in starts
                             if client.shard_for(digest, s) == victim]
                    await fleet.leave(victim)
                    await client.refresh_topology()
                    assert client.epoch == 1
                    assert victim not in client.shards
                    warm = sum(
                        1 for s in owned
                        if fleet.server(client.shard_for(digest, s))
                        .cache.peek((digest, s)) is not None)
                    assert warm / len(owned) >= 0.9
                    for start in starts:
                        words = await client.decompress(
                            digest=digest, group_start=start,
                            group_count=2, timeout=30.0)
                        assert tuple(words) == span_words(start, 2)

        run(main())


class TestV2Compatibility:
    def test_legacy_request_gets_legacy_redirect(self):
        """A v2 client (no epoch stamp) against a v3 fleet sees the v2
        redirect layout byte-for-byte -- `Redirected.epoch` is None --
        while an epoch-stamped request learns the server's epoch."""
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                start = starts[1]
                owner = fleet.servers[0].ring.owner(
                    routing_key(digest, start))
                wrong = next(s for s in fleet.members if s != owner)
                raw = ServeClient(port=fleet.server(wrong).port)
                await raw.connect()
                try:
                    with pytest.raises(Redirected) as legacy:
                        await raw.decompress(digest=digest,
                                             group_start=start,
                                             group_count=2, timeout=30.0)
                    assert legacy.value.shard_id == owner
                    assert legacy.value.epoch is None
                    with pytest.raises(Redirected) as stamped:
                        await raw.decompress(digest=digest,
                                             group_start=start,
                                             group_count=2, timeout=30.0,
                                             epoch=0)
                    assert stamped.value.shard_id == owner
                    assert stamped.value.epoch == 0
                finally:
                    await raw.close()

        run(main())

    def test_legacy_client_still_served_after_a_reshard(self):
        """v2 clients keep working across a join: they never learn the
        epoch, but redirect-following alone reaches the new owner."""
        async def main():
            async with local_fleet(2) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    digest = await warm_fleet(client, starts)
                    await fleet.join()
                for start in starts:
                    raw = ServeClient(port=fleet.server(0).port)
                    await raw.connect()
                    try:
                        try:
                            words = await raw.decompress(
                                digest=digest, group_start=start,
                                group_count=2, timeout=30.0)
                        except Redirected as redirect:
                            assert redirect.epoch is None
                            hop = ServeClient(host=redirect.host,
                                              port=redirect.port)
                            await hop.connect()
                            try:
                                words = await hop.decompress(
                                    digest=digest, group_start=start,
                                    group_count=2, timeout=30.0)
                            finally:
                                await hop.close()
                        assert tuple(words) == span_words(start, 2)
                    finally:
                        await raw.close()

        run(main())


class TestDialRace:
    """Concurrent first dials to the same peer must converge on one
    connection -- the loser of the check-then-connect race closes its
    socket instead of orphaning a read-loop task past shutdown."""

    def test_server_peer_dials_converge(self):
        async def main():
            async with local_fleet(2) as fleet:
                dialer = fleet.servers[0]
                peer = fleet.servers[1].shard_id
                clients = await asyncio.gather(
                    *[dialer._peer_client(peer) for _ in range(8)])
                assert all(c is clients[0] for c in clients)
                assert len(dialer._peer_clients) == 1
                # The survivors' read loop is alive; everyone else's
                # socket was closed, so shutdown leaks nothing.
                task = clients[0]._reader_task
                assert task is not None and not task.done()

        run(main())

    def test_fleet_client_dials_converge(self):
        async def main():
            async with local_fleet(2) as fleet:
                client = FleetClient(fleet.addresses)
                try:
                    shard = client.shards[0]
                    dialed = await asyncio.gather(
                        *[client._client(shard) for _ in range(8)])
                    assert all(c is dialed[0] for c in dialed)
                    assert len(client._clients) == 1
                finally:
                    await client.close()

        run(main())
