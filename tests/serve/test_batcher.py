"""Batcher tests: group cache LRU behaviour, coalescing, windowing."""

import asyncio

import pytest

from repro.codepack.compressor import compress_words
from repro.serve import batcher as batcher_mod
from repro.serve.batcher import (
    GroupCache,
    ImageRegistry,
    MicroBatcher,
    decode_group,
    image_digest,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_NOT_FOUND,
    ProtocolError,
)

from tests.conftest import random_word_program


@pytest.fixture(scope="module")
def image():
    program = random_word_program(7, size=400, kind="workload")
    return compress_words(program.text, name=program.name)


@pytest.fixture(scope="module")
def digest(image):
    return image_digest(image)


def run(coro):
    return asyncio.run(coro)


class TestDecodeGroup:
    def test_groups_concatenate_to_program(self, image):
        words = []
        for group in range(image.n_groups):
            words.extend(decode_group(image, group))
        from repro.codepack.decompressor import decompress_program
        assert words == decompress_program(image)

    def test_tail_group_short(self, image):
        tail = decode_group(image, image.n_groups - 1)
        per_group = image.block_instructions * image.group_blocks
        expected = image.n_instructions - (image.n_groups - 1) * per_group
        assert len(tail) == expected


class TestGroupCache:
    def test_lru_eviction_order(self):
        cache = GroupCache(max_entries=2)
        cache.put(("a", 0), [1])
        cache.put(("a", 1), [2])
        assert cache.get(("a", 0)) == (1,)  # refresh key 0
        cache.put(("a", 2), [3])            # evicts key 1
        assert cache.get(("a", 1)) is None
        assert cache.get(("a", 0)) == (1,)
        assert cache.evictions == 1

    def test_disabled_cache_counts_misses(self):
        cache = GroupCache(max_entries=0)
        cache.put(("a", 0), [1])
        assert cache.get(("a", 0)) is None
        assert len(cache) == 0
        assert cache.misses == 1
        assert cache.hit_rate() == 0.0

    def test_hit_rate(self):
        cache = GroupCache(max_entries=8)
        cache.put(("a", 0), [1])
        cache.get(("a", 0))
        cache.get(("a", 1))
        assert cache.hit_rate() == pytest.approx(0.5)


class TestImageRegistry:
    def test_register_and_get(self, image, digest):
        registry = ImageRegistry()
        registry.register(digest, image)
        assert registry.get(digest) is image

    def test_unknown_digest_typed_error(self):
        registry = ImageRegistry()
        with pytest.raises(ProtocolError) as excinfo:
            registry.get(b"\x00" * 32)
        assert excinfo.value.code == ERR_NOT_FOUND

    def test_lru_bound(self, image):
        registry = ImageRegistry(max_images=2)
        for tag in (b"a", b"b", b"c"):
            registry.register(tag * 32, image)
        assert len(registry) == 2
        assert b"a" * 32 not in registry
        assert b"c" * 32 in registry


def make_batcher(image, digest, window, cache_entries=64, metrics=None,
                 **kwargs):
    registry = ImageRegistry()
    registry.register(digest, image)
    return MicroBatcher(registry, GroupCache(max_entries=cache_entries),
                        window=window, metrics=metrics, **kwargs)


class TestMicroBatcher:
    def test_span_decodes_correctly_batched(self, image, digest):
        async def main():
            batcher = make_batcher(image, digest, window=0.001).start()
            try:
                words = await batcher.decode_span(digest, 0, 0)
            finally:
                await batcher.stop()
            return words

        from repro.codepack.decompressor import decompress_program
        assert run(main()) == decompress_program(image)

    def test_span_decodes_correctly_unbatched(self, image, digest):
        async def main():
            batcher = make_batcher(image, digest, window=0).start()
            words = await batcher.decode_span(digest, 1, 3)
            await batcher.stop()
            return words

        per_group = image.block_instructions * image.group_blocks
        from repro.codepack.decompressor import decompress_program
        expected = decompress_program(image)[per_group:4 * per_group]
        assert run(main()) == expected

    def test_concurrent_duplicates_decode_once(self, image, digest,
                                               monkeypatch):
        """Ten concurrent requests for one group: one decode call."""
        calls = []
        real = batcher_mod.decode_groups_batch

        def counting(requests):
            requests = list(requests)
            calls.extend(group for _image, group in requests)
            return real(requests)

        monkeypatch.setattr(batcher_mod, "decode_groups_batch", counting)
        metrics = MetricsRegistry()

        async def main():
            batcher = make_batcher(image, digest, window=0.005,
                                   metrics=metrics).start()
            try:
                results = await asyncio.gather(
                    *[batcher.decode_span(digest, 2, 1)
                      for _ in range(10)])
            finally:
                await batcher.stop()
            return results

        results = run(main())
        assert len(set(map(tuple, results))) == 1
        assert calls.count(2) == 1
        # All ten waiters were served by a single pool batch.
        assert metrics.batches == 1
        assert metrics.batched_requests == 10
        assert metrics.batched_groups == 1

    def test_cache_serves_repeats_without_decoding(self, image, digest,
                                                  monkeypatch):
        calls = []
        real = batcher_mod.decode_groups_batch

        def counting(requests):
            requests = list(requests)
            calls.extend(group for _image, group in requests)
            return real(requests)

        monkeypatch.setattr(batcher_mod, "decode_groups_batch", counting)

        async def main():
            batcher = make_batcher(image, digest, window=0.001).start()
            try:
                first = await batcher.decode_span(digest, 0, 2)
                second = await batcher.decode_span(digest, 0, 2)
            finally:
                await batcher.stop()
            assert first == second
            return batcher.cache

        cache = run(main())
        assert calls == [0, 1]  # decoded exactly once despite two spans
        assert cache.hits == 2
        assert cache.misses == 2

    def test_bad_span_typed_error(self, image, digest):
        async def main():
            batcher = make_batcher(image, digest, window=0).start()
            try:
                with pytest.raises(ProtocolError) as excinfo:
                    await batcher.decode_span(digest, image.n_groups, 5)
                assert excinfo.value.code == ERR_BAD_REQUEST
            finally:
                await batcher.stop()

        run(main())

    def test_stop_drains_queued_work(self, image, digest):
        async def main():
            batcher = make_batcher(image, digest, window=0.02).start()
            task = asyncio.get_running_loop().create_task(
                batcher.decode_span(digest, 0, 4))
            await asyncio.sleep(0)  # let the span enqueue
            await batcher.stop(drain=True)
            return await task

        words = run(main())
        per_group = image.block_instructions * image.group_blocks
        assert len(words) == 4 * per_group
