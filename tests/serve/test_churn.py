"""Fleet churn under load: crash-respawn, join, leave -- no lost work.

These drive the real multiprocess :class:`Fleet` through the scripted
churn schedule (:func:`run_fleet_churn`), so they cover the full v3
stack end to end: SIGKILL + cold respawn healed by tier-2 peer-fetch,
a joining shard warmed by handoff before ownership flips, and a
leaving shard draining its hot set to the survivors -- all while a
closed-loop workload keeps requests in flight between phases.
"""

import pytest

from repro.serve.loadgen import (
    LoadgenConfig,
    default_churn_events,
    run_fleet_churn,
)


def churn_config(requests=240):
    return LoadgenConfig(requests=requests, working_set=16, span=8,
                         connections=4, pipeline=2, seed=1234)


class TestSchedule:
    def test_default_schedule_covers_all_three_actions(self):
        events = default_churn_events(400)
        assert [e["action"] for e in events] == ["kill", "join", "leave"]
        assert [e["at"] for e in events] == [100, 200, 300]

    def test_default_schedule_degenerate_run_stays_ordered(self):
        offsets = [e["at"] for e in default_churn_events(4)]
        assert offsets == sorted(offsets)
        assert all(at >= 1 for at in offsets)

    def test_open_loop_rejected(self):
        with pytest.raises(ValueError):
            run_fleet_churn(config=LoadgenConfig(mode="open"))

    def test_single_worker_rejected(self):
        with pytest.raises(ValueError):
            run_fleet_churn(config=churn_config(), n_workers=1)


@pytest.mark.slow
class TestMultiprocessChurn:
    def test_kill_join_leave_under_load(self):
        """One pass through the full schedule against 4 real worker
        processes; the contracts the CI churn gate also enforces."""
        report = run_fleet_churn(config=churn_config(), n_workers=4,
                                 batch_window=0.002,
                                 replicate_interval=0.02)

        # No lost responses: every planned request completed, no phase
        # recorded an error -- the kill, the join and the leave were
        # all absorbed by redial + redirects + topology refresh.
        assert report["completed"] == report["requests"] == 240
        assert report["errors"] == {}
        assert [row["phase"] for row in report["phases"]] \
            == ["pre", "post-kill", "post-join", "post-leave"]
        assert all(row["completed"] == row["requests"]
                   for row in report["phases"])

        # The respawned worker cold-started; its hot set came back via
        # tier-2 peer-fetch rather than decode.
        assert report["peer_fetch_hits"] > 0
        assert report["peer_fetch_hit_ratio"] > 0

        # The join (5th shard, mid-run) moved about 1/N of the working
        # set -- consistent hashing, not a rehash-the-world reshard.
        join = next(e for e in report["events"]
                    if e["action"] == "join")
        assert join["shard"] == 4
        assert join["moved_fraction"] <= join["expected_fraction"] + 0.15
        assert join["moved_fraction"] > 0

        # Post-join latency stays within 2x of the phase before it
        # (the handoff warmed the joiner before ownership flipped).
        assert report["join_p99_ratio"] is not None
        assert report["join_p99_ratio"] <= 2.0

        # kill leaves membership alone; join and leave each bump it.
        assert report["epoch"] == 2
        assert report["n_workers_initial"] == 4
        assert report["n_workers_final"] == 4  # +1 join, -1 leave
