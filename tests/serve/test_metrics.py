"""Metrics registry: percentile math, qps windows, batch occupancy."""

import pytest

from repro.serve.metrics import (
    MetricsRegistry,
    merge_snapshots,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.50) == 51
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100

    def test_order_independent(self):
        assert percentile([5, 1, 3, 2, 4], 0.5) == 3


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.record_request("decompress")
        registry.record_request("decompress")
        registry.record_response("decompress", 0.001)
        registry.record_error("malformed")
        registry.record_rejected()
        snap = registry.snapshot()
        assert snap["requests"]["decompress"] == 2
        assert snap["responses"]["decompress"] == 1
        assert snap["errors"]["malformed"] == 1
        assert snap["rejected"] == 1

    def test_latency_summary_ms(self):
        registry = MetricsRegistry()
        for seconds in (0.001, 0.002, 0.003, 0.004, 0.100):
            registry.record_response("decompress", seconds)
        summary = registry.latency_summary()
        assert summary["count"] == 5
        assert summary["p50_ms"] == pytest.approx(3.0)
        assert summary["p99_ms"] == pytest.approx(100.0)
        assert summary["max_ms"] == pytest.approx(100.0)
        assert summary["mean_ms"] == pytest.approx(22.0)

    def test_qps_window(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        for _ in range(20):
            clock.now += 0.5
            registry.record_response("decompress", 0.001)
        # 20 completions over 10 seconds, window covers all of them.
        assert registry.qps(window=100.0) == pytest.approx(2.0, rel=0.15)
        # Nothing completes in the next 50s: windowed qps decays to zero.
        clock.now += 50.0
        assert registry.qps(window=10.0) == 0.0
        assert registry.lifetime_qps() > 0.0

    def test_batch_occupancy(self):
        registry = MetricsRegistry()
        registry.record_batch(10, 4)
        registry.record_batch(2, 2)
        summary = registry.batch_summary()
        assert summary["batches"] == 2
        assert summary["occupancy"] == pytest.approx(6.0)
        assert summary["groups_per_batch"] == pytest.approx(3.0)

    def test_gauges_sampled_at_snapshot(self):
        registry = MetricsRegistry()
        value = {"depth": 3}
        registry.register_gauge("queue_depth", lambda: value["depth"])
        registry.register_gauge("broken", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["gauges"]["queue_depth"] == 3
        assert snap["gauges"]["broken"] is None
        value["depth"] = 9
        assert registry.snapshot()["gauges"]["queue_depth"] == 9


def _worker_snapshot(latencies_ms, kind="decompress", cache=None,
                     redirected=0, samples=True):
    registry = MetricsRegistry()
    for ms in latencies_ms:
        registry.record_request(kind)
        registry.record_response(kind, ms / 1000.0)
    for _ in range(redirected):
        registry.record_redirect()
    if cache is not None:
        registry.register_gauge("cache", lambda: dict(cache))
    return registry.snapshot(samples=samples)


class TestMergeSnapshots:
    def test_empty(self):
        assert merge_snapshots([]) == {"workers": 0}
        # Unreachable workers (None or empty dicts) just drop out.
        assert merge_snapshots([None, {}]) == {"workers": 0}
        assert merge_snapshots(
            [None, _worker_snapshot([1.0])])["workers"] == 1

    def test_counters_and_redirects_sum(self):
        merged = merge_snapshots([
            _worker_snapshot([1.0, 2.0], redirected=2),
            _worker_snapshot([3.0], redirected=1),
        ])
        assert merged["workers"] == 2
        assert merged["responses"] == {"decompress": 3}
        assert merged["redirected"] == 3

    def test_exact_percentiles_from_raw_samples(self):
        """With every worker exporting its sample window the merged
        percentiles are computed over the union -- not averaged."""
        fast = list(range(1, 100))        # 1..99 ms
        slow = [1000.0]                   # one outlier on worker 2
        merged = merge_snapshots([_worker_snapshot(fast),
                                  _worker_snapshot(slow)])
        latency = merged["latency"]
        assert latency["approximate"] is False
        assert latency["count"] == 100
        union = fast + slow
        assert latency["p50_ms"] == pytest.approx(
            percentile(union, 0.50))
        assert latency["p99_ms"] == pytest.approx(
            percentile(union, 0.99))
        assert latency["max_ms"] == pytest.approx(1000.0)

    def test_approximate_fallback_without_samples(self):
        merged = merge_snapshots([
            _worker_snapshot([1.0] * 10, samples=False),
            _worker_snapshot([9.0] * 10, samples=False),
        ])
        latency = merged["latency"]
        assert latency["approximate"] is True
        assert latency["count"] == 20
        # Conservative: worst per-worker percentile, weighted mean.
        assert latency["p99_ms"] == pytest.approx(9.0)
        assert latency["mean_ms"] == pytest.approx(5.0)

    def test_fleet_cache_hit_rate(self):
        merged = merge_snapshots([
            _worker_snapshot([1.0],
                             cache={"hits": 30, "misses": 10,
                                    "entries": 5}),
            _worker_snapshot([1.0],
                             cache={"hits": 10, "misses": 30,
                                    "entries": 7}),
        ])
        assert merged["cache"] == {
            "entries": 12, "hits": 40, "misses": 40, "hit_rate": 0.5}

    def test_per_worker_rows_carry_shard_labels(self):
        merged = merge_snapshots(
            [_worker_snapshot([1.0]), _worker_snapshot([2.0, 4.0])],
            shards=[3, 0])
        rows = merged["per_worker"]
        assert [row["shard"] for row in rows] == [3, 0]
        assert rows[1]["responses"] == 2
        assert rows[1]["p99_ms"] == pytest.approx(4.0)

    def test_qps_and_batch_totals_sum(self):
        first = MetricsRegistry()
        first.record_compress_batch(4)
        first.record_batch(6, 3)
        second = MetricsRegistry()
        second.record_compress_batch(2)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        batch = merged["batch"]
        assert batch["compress_batches"] == 2
        assert batch["compress_requests"] == 6
        assert batch["batches"] == 1
        assert batch["requests"] == 6
        assert batch["occupancy"] == pytest.approx(6.0)
