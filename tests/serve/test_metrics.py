"""Metrics registry: percentile math, qps windows, batch occupancy."""

import pytest

from repro.serve.metrics import MetricsRegistry, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        samples = list(range(1, 101))  # 1..100
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 0.50) == 51
        assert percentile(samples, 0.99) == 99
        assert percentile(samples, 1.0) == 100

    def test_order_independent(self):
        assert percentile([5, 1, 3, 2, 4], 0.5) == 3


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.record_request("decompress")
        registry.record_request("decompress")
        registry.record_response("decompress", 0.001)
        registry.record_error("malformed")
        registry.record_rejected()
        snap = registry.snapshot()
        assert snap["requests"]["decompress"] == 2
        assert snap["responses"]["decompress"] == 1
        assert snap["errors"]["malformed"] == 1
        assert snap["rejected"] == 1

    def test_latency_summary_ms(self):
        registry = MetricsRegistry()
        for seconds in (0.001, 0.002, 0.003, 0.004, 0.100):
            registry.record_response("decompress", seconds)
        summary = registry.latency_summary()
        assert summary["count"] == 5
        assert summary["p50_ms"] == pytest.approx(3.0)
        assert summary["p99_ms"] == pytest.approx(100.0)
        assert summary["max_ms"] == pytest.approx(100.0)
        assert summary["mean_ms"] == pytest.approx(22.0)

    def test_qps_window(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        for _ in range(20):
            clock.now += 0.5
            registry.record_response("decompress", 0.001)
        # 20 completions over 10 seconds, window covers all of them.
        assert registry.qps(window=100.0) == pytest.approx(2.0, rel=0.15)
        # Nothing completes in the next 50s: windowed qps decays to zero.
        clock.now += 50.0
        assert registry.qps(window=10.0) == 0.0
        assert registry.lifetime_qps() > 0.0

    def test_batch_occupancy(self):
        registry = MetricsRegistry()
        registry.record_batch(10, 4)
        registry.record_batch(2, 2)
        summary = registry.batch_summary()
        assert summary["batches"] == 2
        assert summary["occupancy"] == pytest.approx(6.0)
        assert summary["groups_per_batch"] == pytest.approx(3.0)

    def test_gauges_sampled_at_snapshot(self):
        registry = MetricsRegistry()
        value = {"depth": 3}
        registry.register_gauge("queue_depth", lambda: value["depth"])
        registry.register_gauge("broken", lambda: 1 / 0)
        snap = registry.snapshot()
        assert snap["gauges"]["queue_depth"] == 3
        assert snap["gauges"]["broken"] is None
        value["depth"] = 9
        assert registry.snapshot()["gauges"]["queue_depth"] == 9
