"""Warm-start snapshot persistence.

Mirrors the trace-format suite (``tests/sim/test_trace_format.py``)
for the serve layer: round trips must be faithful, and *anything*
short of a pristine, current-version, checksum-clean snapshot must
load as ``None`` -- a cold start, never an exception, because a bad
snapshot must not stop a worker from serving.
"""

import hashlib
import json
import os

import pytest

from repro.codepack.compressor import compress_words
from repro.serve import SERVE_VERSION
from repro.serve.batcher import GroupCache, ImageRegistry
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    collect_hot_set,
    load_snapshot,
    restore_hot_set,
    snapshot_path,
    write_snapshot,
)
from repro.tools.container import dump_image

from tests.conftest import random_word_program

PROGRAM = random_word_program(23, size=300, kind="workload")


@pytest.fixture(scope="module")
def image():
    return compress_words(PROGRAM.text, name=PROGRAM.name)


@pytest.fixture()
def warm_pair(image):
    """A registry + cache holding one image and a few decoded groups."""
    registry = ImageRegistry(max_images=8)
    cache = GroupCache(max_entries=64)
    digest = hashlib.sha256(dump_image(image)).digest()
    registry.register(digest, image)
    for group in range(4):
        cache.put((digest, group), tuple(range(group, group + 16)))
    return registry, cache, digest


def roundtrip(tmp_path, body, shard_id=3, serve_version=SERVE_VERSION):
    path = snapshot_path(str(tmp_path), shard_id)
    write_snapshot(path, body, shard_id, serve_version)
    return path


class TestRoundTrip:
    def test_hot_set_survives_restart(self, tmp_path, warm_pair):
        registry, cache, digest = warm_pair
        body = collect_hot_set(registry, cache)
        path = roundtrip(tmp_path, body)

        loaded = load_snapshot(path, 3, SERVE_VERSION)
        assert loaded is not None
        fresh_registry = ImageRegistry(max_images=8)
        fresh_cache = GroupCache(max_entries=64)
        n_images, n_groups = restore_hot_set(loaded, fresh_registry,
                                             fresh_cache)
        assert (n_images, n_groups) == (1, 4)
        assert fresh_registry.get(digest).name == PROGRAM.name
        for group in range(4):
            assert fresh_cache.get((digest, group)) \
                == tuple(range(group, group + 16))

    def test_lru_order_preserved(self, tmp_path, warm_pair):
        registry, cache, digest = warm_pair
        cache.get((digest, 1))  # touch: group 1 becomes hottest
        body = collect_hot_set(registry, cache)
        # Coldest-first layout: the restored LRU evicts in the same
        # order the live one would have.
        assert [entry[1] for entry in body["groups"]] == [0, 2, 3, 1]

    def test_group_cap_keeps_hottest(self, tmp_path, warm_pair):
        registry, cache, _digest = warm_pair
        body = collect_hot_set(registry, cache, max_groups=2)
        assert [entry[1] for entry in body["groups"]] == [2, 3]

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path,
                                                 warm_pair):
        registry, cache, _digest = warm_pair
        roundtrip(tmp_path, collect_hot_set(registry, cache))
        assert [entry for entry in os.listdir(tmp_path)
                if entry.endswith(".tmp")] == []


class TestColdStartOnDamage:
    @pytest.fixture()
    def written(self, tmp_path, warm_pair):
        registry, cache, _digest = warm_pair
        return roundtrip(tmp_path, collect_hot_set(registry, cache))

    def test_missing_file(self, tmp_path):
        assert load_snapshot(snapshot_path(str(tmp_path), 0),
                             0, SERVE_VERSION) is None

    def test_truncation(self, written):
        data = open(written, "rb").read()
        with open(written, "wb") as handle:
            handle.write(data[:len(data) // 2])
        assert load_snapshot(written, 3, SERVE_VERSION) is None

    def test_garbage(self, written):
        with open(written, "w") as handle:
            handle.write("not json {{{")
        assert load_snapshot(written, 3, SERVE_VERSION) is None

    def test_flipped_body_byte_fails_checksum(self, written):
        entry = json.load(open(written))
        entry["body"]["groups"][0][1] += 1  # tamper without re-checksum
        with open(written, "w") as handle:
            json.dump(entry, handle)
        assert load_snapshot(written, 3, SERVE_VERSION) is None

    def test_format_version_bump(self, written):
        entry = json.load(open(written))
        entry["format"] = SNAPSHOT_FORMAT_VERSION + 1
        with open(written, "w") as handle:
            json.dump(entry, handle)
        assert load_snapshot(written, 3, SERVE_VERSION) is None

    def test_serve_version_bump(self, written):
        # The writer's serve version no longer matching the reader's
        # means cache semantics may have changed: cold start.
        assert load_snapshot(written, 3, SERVE_VERSION + 1) is None

    def test_shard_mismatch(self, written):
        # A copied or misnamed snapshot must not warm the wrong shard.
        assert load_snapshot(written, 4, SERVE_VERSION) is None


class TestRestoreValidation:
    def test_blob_digest_mismatch_drops_image_and_groups(self, image):
        blob = dump_image(image)
        claimed = hashlib.sha256(b"some other image").hexdigest()
        body = {
            "images": [[claimed, blob.hex()]],
            "groups": [[claimed, 0, [1, 2, 3]]],
        }
        registry = ImageRegistry(max_images=4)
        cache = GroupCache(max_entries=16)
        assert restore_hot_set(body, registry, cache) == (0, 0)
        assert len(registry) == 0

    def test_malformed_entries_skipped_individually(self, image):
        blob = dump_image(image)
        digest_hex = hashlib.sha256(blob).hexdigest()
        body = {
            "images": [["zz-not-hex", "zz"], [digest_hex, blob.hex()]],
            "groups": [
                [digest_hex, 0, [1, "two", 3]],   # non-integer words
                [digest_hex],                     # wrong arity
                [digest_hex, 1, [4, 5, 6]],       # fine
            ],
        }
        registry = ImageRegistry(max_images=4)
        cache = GroupCache(max_entries=16)
        assert restore_hot_set(body, registry, cache) == (1, 1)
        digest = bytes.fromhex(digest_hex)
        assert cache.get((digest, 1)) == (4, 5, 6)
        assert cache.get((digest, 0)) is None
