"""Fleet end-to-end tests: routing, redirects, healing, warm restarts.

:class:`LocalFleet` runs every worker in the test's own event loop, so
these tests reach straight into worker registries and caches to verify
*where* data landed, not just that responses came back.  One smoke
test exercises the multiprocess :class:`Fleet` runner over real worker
processes.
"""

import asyncio
import contextlib

import pytest

from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.serve.client import FleetClient, Redirected, ServeClient
from repro.serve.fleet import Fleet, LocalFleet, reserve_ports
from repro.serve.protocol import ProtocolError
from repro.serve.ring import HashRing, routing_key
from repro.serve.server import ServerConfig

from tests.conftest import random_word_program

PROGRAM = random_word_program(31, size=400, kind="workload")
IMAGE = compress_words(PROGRAM.text, name=PROGRAM.name)
EXPECTED_WORDS = decompress_program(IMAGE)
PER_GROUP = IMAGE.block_instructions * IMAGE.group_blocks


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def local_fleet(n_workers, **overrides):
    fleet = LocalFleet(n_workers=n_workers,
                       config=ServerConfig(**overrides))
    await fleet.start()
    try:
        yield fleet
    finally:
        await fleet.stop()


def span_words(start, count):
    return tuple(EXPECTED_WORDS[start * PER_GROUP:
                                (start + count) * PER_GROUP])


class TestRouting:
    def test_spans_route_to_owning_shards(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                    starts = list(range(0, IMAGE.n_groups - 2, 2))
                    for start in starts:
                        words = await client.decompress(
                            digest=digest, group_start=start,
                            group_count=2, timeout=30.0)
                        assert tuple(words) == span_words(start, 2)
                    # Each span's decoded groups live in exactly the
                    # worker the client ring named -- and nowhere else
                    # (no redirects happened, no cache duplication).
                    # Group 0 is exempt: broadcast_register decodes it
                    # inline on every worker to seed the registry.
                    for start in starts:
                        owner = client.shard_for(digest, start)
                        for shard, server in enumerate(fleet.servers):
                            cached = server.cache.get((digest, start))
                            if shard == owner:
                                assert cached is not None
                            elif start != 0:
                                assert cached is None
                    metrics = await client.metrics(fleet=True)
                    assert metrics["workers"] == 3
                    assert metrics["redirected"] == 0
                    served = {row["shard"]: row["responses"]
                              for row in metrics["per_worker"]}
                    assert sum(1 for n in served.values() if n > 0) > 1

        run(main())

    def test_whole_image_request_served_by_first_group_owner(self):
        async def main():
            async with local_fleet(2) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                    words = await client.decompress(digest=digest,
                                                    timeout=30.0)
                    assert words == EXPECTED_WORDS

        run(main())


class TestRedirects:
    def test_wrong_worker_answers_with_redirect(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                ring = fleet.servers[0].ring
                start = 2
                owner = ring.owner(routing_key(digest, start))
                wrong = next(shard for shard in range(3)
                             if shard != owner)
                wrong_client = ServeClient(
                    port=fleet.servers[wrong].port)
                await wrong_client.connect()
                try:
                    with pytest.raises(Redirected) as caught:
                        await wrong_client.decompress(
                            digest=digest, group_start=start,
                            group_count=2, timeout=30.0)
                finally:
                    await wrong_client.close()
                # The redirect names the true owner and its address.
                assert caught.value.shard_id == owner
                host, _, port = \
                    fleet.addresses[owner].rpartition(":")
                assert caught.value.port == int(port)

        run(main())

    def test_fleet_client_follows_redirects_from_stale_ring(self):
        async def main():
            async with local_fleet(3) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                    # Sabotage the client's ring (different vnode
                    # placement => frequent misroutes).  Every request
                    # must still succeed, via redirect frames.
                    client.ring = HashRing(range(3), replicas=1)
                    for start in range(0, IMAGE.n_groups - 2, 2):
                        words = await client.decompress(
                            digest=digest, group_start=start,
                            group_count=2, timeout=30.0)
                        assert tuple(words) == span_words(start, 2)
                    metrics = await client.metrics(fleet=True)
                    assert metrics["redirected"] > 0

        run(main())


class TestNotFoundHealing:
    def test_cold_shard_healed_with_inline_image(self):
        async def main():
            async with local_fleet(2) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    # Compress registers the image only on the worker
                    # that served the request -- no broadcast here.
                    digest, _blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    compress_shard = next(
                        shard for shard, server
                        in enumerate(fleet.servers)
                        if digest in server.registry)
                    other = 1 - compress_shard
                    start = next(
                        s for s in range(IMAGE.n_groups)
                        if client.shard_for(digest, s) == other)
                    words = await client.decompress(
                        digest=digest, group_start=start,
                        group_count=1, timeout=30.0)
                    assert tuple(words) == span_words(start, 1)
                    # The healing round trip registered the image on
                    # the formerly-cold shard.
                    assert digest in fleet.servers[other].registry

        run(main())


class TestWarmRestart:
    def test_restarted_worker_rejoins_warm(self, tmp_path):
        async def main():
            async with local_fleet(
                    2, snapshot_dir=str(tmp_path),
                    snapshot_interval=0.0) as fleet:
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                    starts = list(range(0, IMAGE.n_groups - 1))
                    for start in starts:
                        await client.decompress(
                            digest=digest, group_start=start,
                            group_count=1, timeout=30.0)
                    victim = client.shard_for(digest, starts[0])
                    warm_keys = [
                        key for key in starts
                        if client.shard_for(digest, key) == victim]
                    assert warm_keys

                    # Bounce the worker: the shutdown half writes the
                    # farewell snapshot, the start half restores it.
                    server = await fleet.restart(victim)
                    state = server._snapshot_state
                    assert state["restored_images"] >= 1
                    assert state["restored_groups"] >= len(warm_keys)
                    counters = server.cache.counters()
                    assert counters["entries"] >= len(warm_keys)
                    assert counters["hits"] == 0

                    # Hit-rate recovery: the rejoined worker serves its
                    # old working set from the restored cache.
                    for start in warm_keys:
                        words = await client.decompress(
                            digest=digest, group_start=start,
                            group_count=1, timeout=30.0)
                        assert tuple(words) == span_words(start, 1)
                    counters = server.cache.counters()
                    assert counters["hits"] >= len(warm_keys)
                    assert counters["hit_rate"] == 1.0

        run(main())

    def test_cold_restart_without_snapshots_pays_misses(self):
        async def main():
            async with local_fleet(2) as fleet:  # no snapshot_dir
                async with FleetClient(fleet.addresses) as client:
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=30.0)
                    await client.broadcast_register(image_bytes=blob)
                    start = next(
                        s for s in range(IMAGE.n_groups)
                        if client.shard_for(digest, s) == 0)
                    await client.decompress(digest=digest,
                                            group_start=start,
                                            group_count=1, timeout=30.0)
                    server = await fleet.restart(0)
                    assert server._snapshot_state["restored_groups"] == 0
                    # Cold: still serves (healed inline), but misses.
                    words = await client.decompress(
                        digest=digest, group_start=start,
                        group_count=1, timeout=30.0)
                    assert tuple(words) == span_words(start, 1)
                    assert server.cache.counters()["hits"] == 0

        run(main())


class TestReservePorts:
    def test_ports_are_distinct_and_bindable(self):
        ports = reserve_ports(4)
        assert len(set(ports)) == 4
        assert all(1024 <= port <= 65535 for port in ports)


@pytest.mark.slow
class TestMultiprocessFleet:
    def test_fleet_smoke_with_restart(self, tmp_path):
        with Fleet(n_workers=2, snapshot_dir=str(tmp_path),
                   snapshot_interval=0.0, workers=1) as fleet:
            assert fleet.alive() == [True, True]

            async def drive():
                async with FleetClient(fleet.addresses) as client:
                    assert await client.ping(timeout=10.0)
                    digest, blob = await client.compress(
                        PROGRAM.text, name=PROGRAM.name, timeout=60.0)
                    await client.broadcast_register(image_bytes=blob)
                    words = await client.decompress(digest=digest,
                                                    timeout=60.0)
                    assert words == EXPECTED_WORDS
                    metrics = await client.metrics(fleet=True)
                    assert metrics["workers"] == 2
                    return digest

            digest = run(drive())

            # SIGTERM -> drain + farewell snapshot -> warm respawn on
            # the same port; the fleet keeps serving afterwards.
            fleet.restart(0)
            assert fleet.alive() == [True, True]

            async def after():
                async with FleetClient(fleet.addresses) as client:
                    words = await client.decompress(digest=digest,
                                                    timeout=60.0)
                    assert words == EXPECTED_WORDS
                    describe = await (await client._client(0)) \
                        .fleet("describe", timeout=10.0)
                    return describe

            describe = run(after())
            assert describe["shard_id"] == 0
            assert describe["workers"] == 2
            assert describe["snapshot"]["restored_images"] >= 1
