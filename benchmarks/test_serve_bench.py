"""Serving-layer benchmarks: micro-batching, fleet scaling, peer-fetch.

Three contracts:

* **Batching** -- the same Zipf-skewed decompress workload against two
  in-process servers, one with the micro-batch window and
  decoded-group cache and one with neither; the batched configuration
  must sustain at least twice the throughput.
* **Fleet scaling** -- a 4-worker sharded fleet versus a single worker
  with identical per-worker configuration, both driven by multiprocess
  load generators.  The speedup, per-shard p99 rows, and the fairness
  index are always *recorded*; the ``>= 2x`` floor is only *asserted*
  when ``SERVE_FLEET_MIN_SPEEDUP`` is set (CI exports ``2.0`` on its
  multi-core runners -- a one-core dev box cannot scale by fiat).
* **Peer-fetch** -- the tier-2 cooperative cache: serving an evicted
  hot span from the ring successor's replica tier must beat
  re-decoding it by at least ``PEER_FETCH_MIN_SPEEDUP`` (default 3x),
  byte-identically.  One localhost round trip versus a multi-group
  kernel decode -- this is the whole reason the tier exists.

All reports land in ``BENCH_serve.json`` so CI can upload one
artifact::

    pytest benchmarks/test_serve_bench.py -q -s
"""

import asyncio
import json
import os
import statistics
import time

import pytest

from repro.serve.loadgen import LoadgenConfig
from repro.serve.loadgen import run_compare_sync, run_fleet_compare
from repro.serve.server import ServerConfig

#: Minimum batched/unbatched throughput ratio (acceptance contract).
SERVE_SPEEDUP_FLOOR = 2.0

#: Fleet-vs-single floor, asserted only when the env var sets it.
FLEET_SPEEDUP_FLOOR = float(
    os.environ.get("SERVE_FLEET_MIN_SPEEDUP", "0"))

#: Peer-fetch-vs-decode floor (always asserted; env-tunable for CI).
PEER_FETCH_FLOOR = float(
    os.environ.get("PEER_FETCH_MIN_SPEEDUP", "3.0"))

REPORT_PATH = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")

#: Hot-span workload: 16-group spans over a 24-span working set with a
#: Zipf(1.1) popularity skew.  Spans this long make group decoding the
#: dominant cost, which is what the cache + coalescing attack; measured
#: headroom on a single-core runner is ~3-4x against the 2x floor.
WORKLOAD = LoadgenConfig(mode="closed", connections=4, pipeline=4,
                         requests=600, span=16, working_set=24,
                         skew=1.1, benchmark="pegwit", scale=0.05,
                         seed=1234)

SERVER = ServerConfig(batch_window=0.002, max_batch=128,
                      group_cache_entries=4096, workers=2)


def test_batched_throughput_contract():
    result = run_compare_sync(loadgen=WORKLOAD, server_config=SERVER,
                              output=REPORT_PATH)

    batched = result["batched"]
    unbatched = result["unbatched"]
    # Both passes completed the whole plan without shedding anything.
    assert batched["completed"] == WORKLOAD.requests
    assert unbatched["completed"] == WORKLOAD.requests
    assert batched["errors"] == {}
    assert unbatched["errors"] == {}
    # Identical plan both sides: same words delivered, fair comparison.
    assert batched["words_returned"] == unbatched["words_returned"]

    server_metrics = batched["server_metrics"]
    occupancy = server_metrics["batch"]["occupancy"]
    hit_rate = server_metrics["gauges"]["cache"]["hit_rate"]

    print("\nserve bench: batched %.0f rps vs unbatched %.0f rps "
          "= %.2fx (occupancy %.1f, cache hit rate %.2f) -> %s"
          % (batched["throughput_rps"], unbatched["throughput_rps"],
             result["speedup"], occupancy, hit_rate, REPORT_PATH))

    # Micro-batching must actually merge waiters, and the hot working
    # set must actually hit the cache -- otherwise the speedup would be
    # an accident of noise.
    assert occupancy > 1.0
    assert hit_rate > 0.5
    assert result["speedup"] >= SERVE_SPEEDUP_FLOOR, (
        "batched serving only %.2fx over the unbatched baseline "
        "(batched %.0f rps, unbatched %.0f rps)"
        % (result["speedup"], batched["throughput_rps"],
           unbatched["throughput_rps"]))


#: Fleet workload: milder skew than the batching bench so the working
#: set spreads across shards (span starts route independently); 8x4
#: request streams split over multiprocess drivers.
FLEET_WORKLOAD = LoadgenConfig(mode="closed", connections=8, pipeline=4,
                               requests=800, span=16, working_set=32,
                               skew=0.8, benchmark="pegwit", scale=0.05,
                               seed=1234)

FLEET_WORKERS = 4


def _merge_into_report(path, key, payload):
    """Attach *payload* under *key* in the JSON report at *path*,
    keeping whatever the other benchmark already wrote there."""
    report = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, ValueError):
            report = {}
    report[key] = payload
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def test_fleet_scaling_contract():
    result = run_fleet_compare(
        loadgen=FLEET_WORKLOAD, n_workers=FLEET_WORKERS,
        batch_window=SERVER.batch_window, max_batch=SERVER.max_batch,
        group_cache_entries=SERVER.group_cache_entries,
        workers=SERVER.workers)
    _merge_into_report(REPORT_PATH, "fleet", result)

    single = result["single"]
    fleet = result["fleet"]
    assert single["completed"] == FLEET_WORKLOAD.requests
    assert fleet["completed"] == FLEET_WORKLOAD.requests
    assert single["errors"] == {}
    assert fleet["errors"] == {}
    assert fleet["words_returned"] == single["words_returned"]

    rows = result["per_shard"]
    assert len(rows) == FLEET_WORKERS
    print("\nserve fleet bench: %d workers %.0f rps vs single %.0f rps "
          "= %.2fx (fairness %.3f) -> %s"
          % (FLEET_WORKERS, fleet["throughput_rps"],
             single["throughput_rps"], result["fleet_speedup"],
             result["fairness"], REPORT_PATH))
    for row in rows:
        print("  shard %d: %5d reqs  p99 %6.2fms"
              % (row["shard"], row["completed"], row["p99_ms"]))

    # Routing must spread the working set: every shard served traffic,
    # and no shard-starvation fairness collapse.
    assert all(row["completed"] > 0 for row in rows)
    assert result["fairness"] > 1.5 / FLEET_WORKERS
    # Zero redirects in steady state: client and workers agree on the
    # ring with no coordination.
    assert fleet["fleet_metrics"]["redirected"] == 0

    if FLEET_SPEEDUP_FLOOR > 0:
        assert result["fleet_speedup"] >= FLEET_SPEEDUP_FLOOR, (
            "fleet of %d only %.2fx over one worker "
            "(fleet %.0f rps, single %.0f rps)"
            % (FLEET_WORKERS, result["fleet_speedup"],
               fleet["throughput_rps"], single["throughput_rps"]))
    else:
        print("  (SERVE_FLEET_MIN_SPEEDUP unset: %.2fx recorded, "
              "not asserted)" % result["fleet_speedup"])


#: Peer-fetch bench: spans long enough that a decode dwarfs a localhost
#: round trip; the 1ms batch window rides on both sides of the compare.
PEER_SPAN = 16
PEER_TRIALS = 8


def test_peer_fetch_contract():
    from repro.serve.client import FleetClient
    from repro.serve.fleet import LocalFleet
    from repro.tools.container import parse_image
    from repro.workloads.suite import build_benchmark

    async def main():
        fleet = LocalFleet(n_workers=3, config=ServerConfig(
            batch_window=0.001, replicate_interval=0.01,
            workers=SERVER.workers))
        await fleet.start()
        try:
            async with FleetClient(fleet.addresses) as client:
                program = build_benchmark(WORKLOAD.benchmark,
                                          WORKLOAD.scale)
                digest, blob = await client.compress(
                    program.text, text_base=program.text_base,
                    name=program.name, timeout=60.0)
                await client.broadcast_register(image_bytes=blob)
                n_groups = parse_image(blob).n_groups
                starts = list(range(0, n_groups - PEER_SPAN,
                                    PEER_SPAN))[:PEER_TRIALS]
                assert len(starts) >= 3, "image too small for the bench"

                baseline = {}
                for start in starts:
                    words = await client.decompress(
                        digest=digest, group_start=start,
                        group_count=PEER_SPAN, timeout=60.0)
                    baseline[start] = tuple(words)

                # Wait for the write-behind pump to mirror every span
                # to its ring successor before evicting anything.
                expected = len(starts) * PEER_SPAN
                deadline = asyncio.get_running_loop().time() + 20.0
                while sum(len(s.replicas)
                          for s in fleet.servers) < expected:
                    assert asyncio.get_running_loop().time() < deadline, \
                        "replication pump never mirrored the hot set"
                    await asyncio.sleep(0.02)

                async def timed(start):
                    began = time.perf_counter()
                    words = await client.decompress(
                        digest=digest, group_start=start,
                        group_count=PEER_SPAN, timeout=60.0)
                    elapsed = time.perf_counter() - began
                    assert tuple(words) == baseline[start]
                    return elapsed * 1000.0

                # Peer path: evict the owner's primary cache; the span
                # comes back from the successor's replica tier.
                peer_ms = []
                for start in starts:
                    fleet.server(client.shard_for(
                        digest, start)).cache.clear()
                    peer_ms.append(await timed(start))
                hits = sum(s.metrics.peer_fetch_hits
                           for s in fleet.servers)
                assert hits >= len(starts), \
                    "evicted spans were not served by peers"

                # Decode path: same eviction, but no replica anywhere
                # -- the owner pays for the full span re-decode.
                for server in fleet.servers:
                    server.replicas.clear()
                decode_ms = []
                for start in starts:
                    fleet.server(client.shard_for(
                        digest, start)).cache.clear()
                    decode_ms.append(await timed(start))

                return {
                    "span_groups": PEER_SPAN,
                    "trials": len(starts),
                    "peer_fetch_p50_ms": statistics.median(peer_ms),
                    "decode_p50_ms": statistics.median(decode_ms),
                    "speedup": (statistics.median(decode_ms)
                                / statistics.median(peer_ms)),
                    "floor": PEER_FETCH_FLOOR,
                    "peer_fetch_hits": hits,
                }
        finally:
            await fleet.stop()

    result = asyncio.run(main())
    _merge_into_report(REPORT_PATH, "peer_fetch", result)

    print("\nserve peer-fetch bench: evicted %d-group span healed in "
          "%.2fms via peer vs %.2fms re-decode = %.2fx -> %s"
          % (PEER_SPAN, result["peer_fetch_p50_ms"],
             result["decode_p50_ms"], result["speedup"], REPORT_PATH))

    assert result["speedup"] >= PEER_FETCH_FLOOR, (
        "peer-fetch only %.2fx over re-decode (peer %.2fms, "
        "decode %.2fms; floor %.1fx)"
        % (result["speedup"], result["peer_fetch_p50_ms"],
           result["decode_p50_ms"], PEER_FETCH_FLOOR))


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
