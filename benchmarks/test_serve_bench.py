"""Serving-layer benchmark: micro-batching + group cache vs neither.

Drives the same Zipf-skewed decompress workload against two in-process
servers -- one with the micro-batch window and decoded-group cache, one
with ``batch_window=0`` and the cache disabled (every request decodes
its span from scratch) -- and pins the contract that the batched
configuration sustains at least twice the throughput.

The full comparison report lands in ``BENCH_serve.json`` so CI can
upload it as an artifact::

    pytest benchmarks/test_serve_bench.py -q -s
"""

import os

import pytest

from repro.serve.loadgen import LoadgenConfig
from repro.serve.loadgen import run_compare_sync
from repro.serve.server import ServerConfig

#: Minimum batched/unbatched throughput ratio (acceptance contract).
SERVE_SPEEDUP_FLOOR = 2.0

REPORT_PATH = os.environ.get("BENCH_SERVE_JSON", "BENCH_serve.json")

#: Hot-span workload: 16-group spans over a 24-span working set with a
#: Zipf(1.1) popularity skew.  Spans this long make group decoding the
#: dominant cost, which is what the cache + coalescing attack; measured
#: headroom on a single-core runner is ~3-4x against the 2x floor.
WORKLOAD = LoadgenConfig(mode="closed", connections=4, pipeline=4,
                         requests=600, span=16, working_set=24,
                         skew=1.1, benchmark="pegwit", scale=0.05,
                         seed=1234)

SERVER = ServerConfig(batch_window=0.002, max_batch=128,
                      group_cache_entries=4096, workers=2)


def test_batched_throughput_contract():
    result = run_compare_sync(loadgen=WORKLOAD, server_config=SERVER,
                              output=REPORT_PATH)

    batched = result["batched"]
    unbatched = result["unbatched"]
    # Both passes completed the whole plan without shedding anything.
    assert batched["completed"] == WORKLOAD.requests
    assert unbatched["completed"] == WORKLOAD.requests
    assert batched["errors"] == {}
    assert unbatched["errors"] == {}
    # Identical plan both sides: same words delivered, fair comparison.
    assert batched["words_returned"] == unbatched["words_returned"]

    server_metrics = batched["server_metrics"]
    occupancy = server_metrics["batch"]["occupancy"]
    hit_rate = server_metrics["gauges"]["cache"]["hit_rate"]

    print("\nserve bench: batched %.0f rps vs unbatched %.0f rps "
          "= %.2fx (occupancy %.1f, cache hit rate %.2f) -> %s"
          % (batched["throughput_rps"], unbatched["throughput_rps"],
             result["speedup"], occupancy, hit_rate, REPORT_PATH))

    # Micro-batching must actually merge waiters, and the hot working
    # set must actually hit the cache -- otherwise the speedup would be
    # an accident of noise.
    assert occupancy > 1.0
    assert hit_rate > 0.5
    assert result["speedup"] >= SERVE_SPEEDUP_FLOOR, (
        "batched serving only %.2fx over the unbatched baseline "
        "(batched %.0f rps, unbatched %.0f rps)"
        % (result["speedup"], batched["throughput_rps"],
           unbatched["throughput_rps"]))


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
