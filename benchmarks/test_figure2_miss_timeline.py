"""Regenerates paper Figure 2: the worked L1-miss timeline.

This is the one exhibit our model must (and does) match cycle-exactly:
native critical word at t=10, baseline CodePack at t=25, optimized
CodePack at t=14.
"""

from repro.eval.experiments import figure2


def test_figure2_miss_timeline(benchmark, show):
    table = benchmark.pedantic(figure2, rounds=5, iterations=1)
    show(table)
    for model, measured, paper in table.rows:
        assert measured == paper, model
