"""Regenerates paper Table 5: IPC for native/CodePack/optimized x 3
machines."""

from repro.eval.experiments import table5


def test_table5_ipc(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table5(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        for base in (1, 4, 7):  # native columns per machine
            native, codepack, optimized = row[base:base + 3]
            # Paper's prose: CodePack loses at most ~18%, optimized is
            # within a few percent (sometimes ahead).
            assert codepack >= native * 0.78, (bench, base)
            assert optimized >= native * 0.90, (bench, base)
        # Wider machines retire more per cycle on every benchmark.
        assert row[7] >= row[1]
