"""Regenerates paper Table 7: speedup due to the index cache."""

from repro.eval.experiments import table7


def test_table7_index_speedup(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table7(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench, baseline, cached, perfect = row
        assert cached >= baseline - 1e-9, bench
        assert perfect >= cached - 0.02, bench
        # Paper prose: optimized index path within 8% of native.
        assert cached >= 0.92, bench
