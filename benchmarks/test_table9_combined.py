"""Regenerates paper Table 9: optimizations individually and combined."""

from repro.eval.experiments import table9


def test_table9_combined(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table9(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    misses = ("cc1", "go", "perl", "vortex")
    for row in table.rows:
        bench, baseline, index, decompress, combined = row
        assert combined >= max(index, decompress) - 0.02, bench
        if bench in misses:
            # Paper: the index cache helps more than wider decode.
            assert index >= decompress - 0.02, bench
    # Paper: a slight speedup over native is attained when combined.
    assert any(table.row_by_key(b)[4] > 1.0 for b in misses)
