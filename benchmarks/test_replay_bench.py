"""Trace-replay benchmark: cold sweep with replay on vs off.

Runs the full paper sweep (every exhibit's cells) twice at scale 0.1 on
one worker -- once execute-driven (``replay=False``), once through the
trace-once/replay-many engines -- asserts the results are identical
cell-for-cell, and pins the wall-clock contract that replay wins by at
least :data:`REPLAY_SPEEDUP_FLOOR` (override with the
``REPLAY_SPEEDUP_FLOOR`` environment variable).

The same-tree floor is 2x: this PR's satellite optimisations (memoised
block schedules, word-level predecode sharing, heap FU pools, slotted
sim classes) sped the execute-driven comparison point up too, so the
in-repo ratio understates the win.  Against the pre-replay tree's
execute-driven sweep -- the baseline the optimisation was sized
against -- the same replay pass measures >= 3x; the measured numbers
and methodology live in DESIGN.md's functional/timing-split section.
The report lands in ``BENCH_replay.json`` so CI uploads it as an
artifact::

    pytest benchmarks/test_replay_bench.py -q -s
"""

import os
import time

import pytest

from repro.eval.experiments import ALL_EXPERIMENTS, sweep_cells
from repro.eval.runner import Workbench
from repro.tools.benchinfo import write_report

REPORT_PATH = os.environ.get("BENCH_REPLAY_JSON", "BENCH_replay.json")

#: Minimum replay-off/replay-on wall-clock ratio on one tree.
REPLAY_SPEEDUP_FLOOR = 2.0

SWEEP_SCALE = 0.1


def _floor():
    return float(os.environ.get("REPLAY_SPEEDUP_FLOOR",
                                REPLAY_SPEEDUP_FLOOR))


def test_cold_sweep_replay_speedup():
    """Replay must beat execute-driven simulation on the full sweep."""
    cells = list(sweep_cells(list(ALL_EXPERIMENTS)))
    timings = {}
    benches = {}
    for label, replay in (("execute", False), ("replay", True)):
        wb = Workbench(scale=SWEEP_SCALE, jobs=1, replay=replay)
        begin = time.perf_counter()
        wb.prefetch(cells)
        timings[label] = time.perf_counter() - begin
        benches[label] = wb

    execute_wb = benches["execute"]
    replay_wb = benches["replay"]
    # Replay is cycle-exact: every cell's result must match the
    # execute-driven model bit-for-bit (memo keys are identical).
    assert set(replay_wb._results) == set(execute_wb._results)
    for key, expected in execute_wb._results.items():
        got = replay_wb._results[key]
        assert got.to_dict() == expected.to_dict(), key

    speedup = timings["execute"] / timings["replay"]
    floor = _floor()
    print("\nreplay sweep: execute %.2fs vs replay %.2fs = %.2fx "
          "(floor %.1fx, %d cells) -> %s"
          % (timings["execute"], timings["replay"], speedup, floor,
             len(cells), REPORT_PATH))
    write_report(REPORT_PATH, {"cold_sweep": {
        "scale": SWEEP_SCALE,
        "jobs": 1,
        "cells": len(cells),
        "execute_seconds": timings["execute"],
        "replay_seconds": timings["replay"],
        "speedup": speedup,
        "floor": floor,
    }})
    assert speedup >= floor, (
        "replay sweep only %.2fx over execute-driven "
        "(execute %.2fs, replay %.2fs)"
        % (speedup, timings["execute"], timings["replay"]))


def test_trace_cache_amortises_recording(tmp_path):
    """A second Workbench over the same trace dir must skip recording."""
    from repro.sim.replay import TraceCache

    trace_dir = str(tmp_path / "traces")
    cold = Workbench(scale=0.05, jobs=1, trace_cache=trace_dir)
    begin = time.perf_counter()
    cold_trace = cold.trace("pegwit")
    cold_seconds = time.perf_counter() - begin

    warm = Workbench(scale=0.05, jobs=1, trace_cache=trace_dir)
    begin = time.perf_counter()
    warm_trace = warm.trace("pegwit")
    warm_seconds = time.perf_counter() - begin

    assert isinstance(cold.trace_cache, TraceCache)
    assert warm_trace.n == cold_trace.n
    assert bytes(warm_trace.takens) == bytes(cold_trace.takens)
    print("\ntrace cache: record %.3fs vs load %.3fs" %
          (cold_seconds, warm_seconds))
    write_report(REPORT_PATH, {"trace_cache": {
        "benchmark": "pegwit",
        "scale": 0.05,
        "record_seconds": cold_seconds,
        "load_seconds": warm_seconds,
    }})
    assert warm_seconds <= cold_seconds


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
