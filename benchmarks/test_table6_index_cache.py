"""Regenerates paper Table 6: index-cache miss ratio sweep (cc1)."""

from repro.eval.experiments import table6


def test_table6_index_cache(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table6(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    grid = {row[0]: row[1:] for row in table.rows}
    # More lines monotonically reduces misses (col-wise), and more
    # entries per line helps (row-wise) -- the paper's two trends.
    assert grid[64][3] < grid[1][3]
    assert grid[64][3] < grid[64][0]
    # The paper's 64x4 configuration reaches a low miss ratio.
    assert grid[64][2] < 0.25
