"""Codec throughput: how fast the software implementation itself runs.

Unlike the exhibit benches (one round, table output), these use
pytest-benchmark's statistics properly: several rounds of pure
compression / decompression work over the same real program, reporting
MB/s-style numbers for the library's own users.
"""

import pytest

from repro.codepack.compressor import compress_program, compress_words
from repro.codepack.decompressor import decompress_program
from repro.schemes.ccrp import compress_ccrp, decompress_ccrp
from repro.schemes.dictword import compress_dictword, decompress_dictword


@pytest.fixture(scope="module")
def program(wb):
    return wb.program("perl")


def test_codepack_compress_throughput(benchmark, program):
    image = benchmark(compress_program, program)
    assert image.compression_ratio < 0.7


def test_codepack_decompress_throughput(benchmark, program, wb):
    image = wb.image("perl")
    words = benchmark(decompress_program, image)
    assert words == program.text


def test_dictionary_build_throughput(benchmark, program):
    from repro.codepack.dictionary import build_dictionaries
    high, low = benchmark(build_dictionaries, program.text)
    assert len(high) > 0 and len(low) > 0


def test_ccrp_compress_throughput(benchmark, program):
    image = benchmark(compress_ccrp, program)
    assert image.compression_ratio < 1.0


def test_ccrp_decompress_throughput(benchmark, program):
    image = compress_ccrp(program)
    data = benchmark(decompress_ccrp, image)
    assert data == program.text_bytes()


def test_dictword_compress_throughput(benchmark, program):
    image = benchmark(compress_dictword, program)
    assert image.compression_ratio < 0.8


def test_dictword_decompress_throughput(benchmark, program):
    image = compress_dictword(program)
    words = benchmark(decompress_dictword, image)
    assert words == program.text


def test_simulator_throughput(benchmark, wb):
    """Instructions simulated per second on the 4-issue OoO model."""
    from repro.sim import ARCH_4_ISSUE, simulate
    program = wb.program("pegwit")
    static = wb.static("pegwit")

    result = benchmark.pedantic(
        lambda: simulate(program, ARCH_4_ISSUE, static=static),
        rounds=3, iterations=1)
    assert result.instructions > 0
