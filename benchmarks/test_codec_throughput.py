"""Codec throughput: how fast the software implementation itself runs.

Unlike the exhibit benches (one round, table output), these use
pytest-benchmark's statistics properly: several rounds of pure
compression / decompression work over the same real program, reporting
MB/s-style numbers for the library's own users.

The ``fast path`` benchmarks exercise the table-driven codec the
library actually ships; the ``reference`` benchmarks time the retained
per-bit oracle (:mod:`repro.codepack.reference`), and
``test_fast_path_speedup`` pins the contract that the fast path beats
it by >= 3x for both compression and decompression.
``test_vec_batch_speedup`` pins the next tier: the vectorized batch
kernels (:mod:`repro.codepack.veccodec`) must decompress a batch of
real images >= 5x faster than the scalar fast path.  Both write their
rows into ``BENCH_codec.json``.
"""

import os
import time

import pytest

from repro.codepack.compressor import compress_program, compress_words
from repro.codepack.decompressor import decompress_program
from repro.codepack.reference import (
    compress_program_reference,
    decompress_program_reference,
)
from repro.schemes.ccrp import compress_ccrp, decompress_ccrp
from repro.schemes.dictword import compress_dictword, decompress_dictword
from repro.tools.benchinfo import write_report

REPORT_PATH = os.environ.get("BENCH_CODEC_JSON", "BENCH_codec.json")


@pytest.fixture(scope="module")
def program(wb):
    return wb.program("perl")


def test_codepack_compress_throughput(benchmark, program):
    image = benchmark(compress_program, program)
    assert image.compression_ratio < 0.7


def test_codepack_decompress_throughput(benchmark, program, wb):
    image = wb.image("perl")
    words = benchmark(decompress_program, image)
    assert words == program.text


def test_codepack_reference_compress_throughput(benchmark, program):
    image = benchmark(compress_program_reference, program)
    assert image.compression_ratio < 0.7


def test_codepack_reference_decompress_throughput(benchmark, program, wb):
    image = wb.image("perl")
    words = benchmark(decompress_program_reference, image)
    assert words == program.text


def _best_of(f, rounds):
    times = []
    for _ in range(rounds):
        begin = time.perf_counter()
        f()
        times.append(time.perf_counter() - begin)
    return min(times)


def test_fast_path_speedup(wb):
    """The headline contract: >= 3x over the reference codec, both
    directions, on a real benchmark program (vortex, the largest).

    Plain best-of-N wall timing rather than the ``benchmark`` fixture so
    the assertion also runs under ``--benchmark-disable`` smoke runs.
    """
    program = wb.program("vortex")
    image = compress_program(program)
    reference_image = compress_program_reference(program)
    assert image.code_bytes == reference_image.code_bytes

    compress_fast = _best_of(lambda: compress_program(program), 5)
    compress_ref = _best_of(lambda: compress_program_reference(program), 3)
    decompress_fast = _best_of(lambda: decompress_program(image), 5)
    decompress_ref = _best_of(
        lambda: decompress_program_reference(reference_image), 3)

    compress_speedup = compress_ref / compress_fast
    decompress_speedup = decompress_ref / decompress_fast
    print("\ncompress  %.1fms vs %.1fms reference: %.2fx"
          % (compress_fast * 1e3, compress_ref * 1e3, compress_speedup))
    print("decompress %.1fms vs %.1fms reference: %.2fx"
          % (decompress_fast * 1e3, decompress_ref * 1e3,
             decompress_speedup))
    write_report(REPORT_PATH, {"fast_path": {
        "benchmark": "vortex",
        "compress_seconds": compress_fast,
        "compress_reference_seconds": compress_ref,
        "compress_speedup": compress_speedup,
        "decompress_seconds": decompress_fast,
        "decompress_reference_seconds": decompress_ref,
        "decompress_speedup": decompress_speedup,
    }})
    assert compress_speedup >= 3.0
    assert decompress_speedup >= 3.0


def test_vec_batch_speedup(wb):
    """The batch-kernel contract: the vectorized codec decompresses a
    batch of real benchmark images >= 5x faster than the scalar fast
    path, with byte-identical outputs (compress rows are reported too,
    uncontracted -- dictionary construction stays scalar either way).

    Best-of-N wall timing, same rationale as ``test_fast_path_speedup``.
    The floor is overridable via ``BENCH_VEC_MIN_SPEEDUP`` for
    constrained CI machines.
    """
    pytest.importorskip("numpy")
    from repro.codepack.batch import compress_many, decompress_many

    floor = float(os.environ.get("BENCH_VEC_MIN_SPEEDUP", "5.0"))
    names = ["perl", "vortex", "go", "cc1"]
    programs = [wb.program(name) for name in names]
    images = [wb.image(name) for name in names]

    vec_images = compress_many(programs, vec=True)
    for image, vec_image in zip(images, vec_images):
        assert image.code_bytes == vec_image.code_bytes
    vec_words = decompress_many(images, vec=True)
    assert vec_words == [list(p.text) for p in programs]

    decompress_vec = _best_of(lambda: decompress_many(images, vec=True), 5)
    decompress_scalar = _best_of(
        lambda: decompress_many(images, vec=False), 3)
    compress_vec = _best_of(lambda: compress_many(programs, vec=True), 3)
    compress_scalar = _best_of(
        lambda: compress_many(programs, vec=False), 3)

    decompress_speedup = decompress_scalar / decompress_vec
    compress_speedup = compress_scalar / compress_vec
    total_words = sum(len(p.text) for p in programs)
    print("\nbatch decompress %.1fms vs %.1fms scalar: %.2fx (%d words)"
          % (decompress_vec * 1e3, decompress_scalar * 1e3,
             decompress_speedup, total_words))
    print("batch compress   %.1fms vs %.1fms scalar: %.2fx"
          % (compress_vec * 1e3, compress_scalar * 1e3, compress_speedup))
    write_report(REPORT_PATH, {"vec_batch": {
        "benchmarks": names,
        "total_words": total_words,
        "decompress_seconds": decompress_vec,
        "decompress_scalar_seconds": decompress_scalar,
        "decompress_speedup": decompress_speedup,
        "compress_seconds": compress_vec,
        "compress_scalar_seconds": compress_scalar,
        "compress_speedup": compress_speedup,
        "min_speedup": floor,
    }})
    assert decompress_speedup >= floor


def test_dictionary_build_throughput(benchmark, program):
    from repro.codepack.dictionary import build_dictionaries
    high, low = benchmark(build_dictionaries, program.text)
    assert len(high) > 0 and len(low) > 0


def test_ccrp_compress_throughput(benchmark, program):
    image = benchmark(compress_ccrp, program)
    assert image.compression_ratio < 1.0


def test_ccrp_decompress_throughput(benchmark, program):
    image = compress_ccrp(program)
    data = benchmark(decompress_ccrp, image)
    assert data == program.text_bytes()


def test_dictword_compress_throughput(benchmark, program):
    image = benchmark(compress_dictword, program)
    assert image.compression_ratio < 0.8


def test_dictword_decompress_throughput(benchmark, program):
    image = compress_dictword(program)
    words = benchmark(decompress_dictword, image)
    assert words == program.text


def test_simulator_throughput(benchmark, wb):
    """Instructions simulated per second on the 4-issue OoO model."""
    from repro.sim import ARCH_4_ISSUE, simulate
    program = wb.program("pegwit")
    static = wb.static("pegwit")

    result = benchmark.pedantic(
        lambda: simulate(program, ARCH_4_ISSUE, static=static),
        rounds=3, iterations=1)
    assert result.instructions > 0
