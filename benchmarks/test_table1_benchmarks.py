"""Regenerates paper Table 1: benchmark characterisation."""

from repro.eval.experiments import table1


def test_table1_benchmarks(benchmark, wb, show):
    """Dynamic instruction counts and 4-issue I-miss rates."""
    table = benchmark.pedantic(lambda: table1(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    # Shape check against paper Table 1: the call-heavy four miss, the
    # media kernels do not.
    rates = {row[0]: row[2] for row in table.rows}
    assert rates["cc1"] > 0.03
    assert rates["go"] > 0.03
    assert rates["mpeg2enc"] < 0.005
    assert rates["pegwit"] < 0.01
