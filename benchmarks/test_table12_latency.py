"""Regenerates paper Table 12: speedup across memory latencies."""

from repro.eval.experiments import table12


def test_table12_latency(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table12(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        if bench in ("mpeg2enc", "pegwit"):
            continue
        opt = row[2::2]  # optimized columns, 0.5x -> 8x latency
        # Paper: as latency grows the optimized decompressor attains
        # speedups over native (fewer costly memory accesses).
        assert opt[-1] > opt[0], bench
        assert opt[-1] > 1.05, bench
