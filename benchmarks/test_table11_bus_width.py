"""Regenerates paper Table 11: speedup across memory bus widths."""

from repro.eval.experiments import table11


def test_table11_bus_width(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table11(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        if bench in ("mpeg2enc", "pegwit"):
            continue
        cp = row[1::2]   # 16b -> 128b
        opt = row[2::2]
        # Paper: compression pays off on narrow buses and fades as the
        # bus widens; the optimized model degrades more gracefully.
        assert cp[0] > cp[-1], bench
        assert opt[0] > opt[-1], bench
        assert cp[0] > 1.0, bench  # 16-bit bus: CodePack wins outright
        assert all(o >= c - 1e-9 for o, c in zip(opt, cp)), bench
