"""Extension bench: coding efficiency vs the halfword-entropy bound."""

from repro.eval.extensions import compression_analysis


def test_ext_compression_analysis(benchmark, wb, show):
    table = benchmark.pedantic(lambda: compression_analysis(wb=wb),
                               rounds=1, iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        bound_bits, achieved_bits, efficiency = row[1:4]
        # Information theory: achieved symbol coding can't beat the
        # zeroth-order bound, and CodePack's tagged classes should stay
        # within striking distance of it.
        assert achieved_bits >= bound_bits - 1e-9, bench
        assert efficiency > 0.6, bench
