"""Extension bench: CodePack vs CCRP vs full-word dictionary."""

from repro.eval.extensions import scheme_comparison


def test_ext_scheme_comparison(benchmark, wb, show):
    table = benchmark.pedantic(lambda: scheme_comparison(wb=wb),
                               rounds=1, iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        cp_ratio, ccrp_ratio, dw_ratio = row[1:4]
        cp_speed, ccrp_speed, dw_speed = row[4:7]
        # Size: CodePack best, CCRP clearly worst (paper Section 2).
        assert cp_ratio < ccrp_ratio - 0.08, bench
        # Speed: CCRP's serial byte-Huffman is the laggard wherever
        # there are misses.
        if bench in ("cc1", "go", "perl", "vortex"):
            assert ccrp_speed < cp_speed - 0.1, bench
            assert abs(dw_speed - cp_speed) < 0.1, bench
