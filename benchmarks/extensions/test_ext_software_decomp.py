"""Extension bench: software-managed decompression sweep."""

from repro.eval.extensions import software_decompression


def test_ext_software_decomp(benchmark, wb, show):
    table = benchmark.pedantic(lambda: software_decompression(wb=wb),
                               rounds=1, iterations=1)
    show(table)
    by_bench = {row[0]: row for row in table.rows}
    # Miss-heavy code cannot afford software decompression...
    assert by_bench["cc1"][3] < 0.6
    # ...loop code barely notices it.
    assert by_bench["pegwit"][3] > 0.7
    # Cost monotonicity.
    for row in table.rows:
        costs = row[3:]
        assert all(costs[i] >= costs[i + 1] - 1e-9
                   for i in range(len(costs) - 1)), row[0]
