"""Extension bench: dense 16-bit ISA (SS16) vs CodePack."""

from repro.eval.extensions import dense_isa


def test_ext_dense_isa(benchmark, wb, show):
    table = benchmark.pedantic(lambda: dense_isa(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench, ss16_ratio, cp_ratio = row[:3]
        extra, base, ideal, narrow = row[3:]
        # CodePack always compresses harder than a 16-bit re-encoding.
        assert cp_ratio < ss16_ratio, bench
        assert ss16_ratio < 1.0, bench
        # Section 2.1's trade: extra instructions cost on (near-)ideal
        # memory, fetch density pays on a narrow bus.
        assert ideal <= 1.01, bench
        assert narrow >= base - 1e-9, bench
