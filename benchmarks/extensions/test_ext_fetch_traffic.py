"""Extension bench: I-miss memory traffic, native vs compressed."""

from repro.eval.extensions import compressed_fetch_traffic


def test_ext_fetch_traffic(benchmark, wb, show):
    table = benchmark.pedantic(lambda: compressed_fetch_traffic(wb=wb),
                               rounds=1, iterations=1)
    show(table)
    for row in table.rows:
        bench, _, _, blocks, _, ratio = row
        # Compression moves fewer bytes over the bus on every benchmark
        # (the causal mechanism of the paper's speedups), and the
        # output buffer means fewer block fetches than misses.
        assert ratio < 1.0, bench
        assert blocks <= row[1], bench
