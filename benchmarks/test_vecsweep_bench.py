"""Processes x vec composition benchmark: the sweep's pool path.

With every decline path closed, the vectorized backend prices all 309
sweep cells with column kernels, and ``--jobs N`` partitions *whole
kernel groups* (benchmark x pipeline-shape pairs) across the worker
pool while the parent pre-warms a shared on-disk trace cache -- so
each worker runs column passes on its slice of the grid instead of
re-recording traces or pricing cells one at a time.

Two sections land in ``BENCH_vecsweep.json`` (same provenance header
as every other ``BENCH_*.json``):

* ``pool_baseline`` -- the pool worker path at ``jobs=1`` (every cost
  a worker pays: program build, image compression, trace-cache load,
  column kernels), measured on any machine.
* ``jobs_scaling`` -- ``jobs=2`` against ``jobs=1`` on the same
  pre-warmed trace cache, enforced to :data:`JOBS_SPEEDUP_FLOOR` when
  the host has at least two CPUs (the contract CI's multi-core runner
  pins; a single-core host records the baseline and skips the ratio).

Run it the way CI does::

    pytest benchmarks/test_vecsweep_bench.py -q -s
"""

import os
import time

import pytest

pytest.importorskip("numpy")

from repro.eval.experiments import ALL_EXPERIMENTS, sweep_cells
from repro.eval.runner import Workbench
from repro.eval.sweep import partition_cells_vec, run_batches
from repro.tools.benchinfo import write_report

REPORT_PATH = os.environ.get("BENCH_VECSWEEP_JSON", "BENCH_vecsweep.json")

#: Minimum jobs=2 over jobs=1 wall-clock ratio, both arms vectorized,
#: on a host with >= 2 CPUs.  Worker startup and per-worker program /
#: image rebuilds are inside the timed region (they are real costs of
#: ``--jobs``), so the floor sits below the ~2x kernel-time split;
#: raise it via the ``VECSWEEP_JOBS_FLOOR`` environment variable once
#: a given runner's numbers are known.
JOBS_SPEEDUP_FLOOR = 1.2

#: Larger than the single-worker bench's 0.1: per-worker program and
#: image rebuilds are flat in scale (trip counts grow, code size does
#: not), so a longer sweep keeps the measured ratio about kernel
#: partitioning rather than fixed worker startup.
SWEEP_SCALE = 0.25
REPS = 2


def _floor():
    return float(os.environ.get("VECSWEEP_JOBS_FLOOR", JOBS_SPEEDUP_FLOOR))


@pytest.fixture(scope="module")
def warmed(tmp_path_factory):
    """Cells plus a pre-warmed shared trace cache, built once."""
    trace_dir = str(tmp_path_factory.mktemp("traces"))
    base = Workbench(scale=SWEEP_SCALE, jobs=1, replay=True,
                     trace_cache=trace_dir, vec=True)
    cells = list(sweep_cells(list(ALL_EXPERIMENTS), wb=base))
    for bench in sorted({c[0] for c in cells}):
        base.trace(bench)  # records once into the shared cache
    return base, cells, trace_dir


def _timed_pool_sweep(base, cells, trace_dir, jobs):
    """Time run_batches end to end on the shared trace cache."""
    begin = time.perf_counter()
    results = run_batches(cells, scale=SWEEP_SCALE,
                          max_instructions=base.max_instructions,
                          jobs=jobs, replay=True, trace_dir=trace_dir,
                          vec=True)
    return time.perf_counter() - begin, results


def test_pool_baseline(warmed):
    """Record the jobs=1 pool-path cost; sanity-check the partition."""
    base, cells, trace_dir = warmed
    batches = partition_cells_vec(cells, 2)
    assert sorted(len(b) for b in batches) and \
        sum(len(b) for b in batches) == len(cells)
    seconds, results = _timed_pool_sweep(base, cells, trace_dir, jobs=1)
    assert len(results) == len(cells)
    print("\nvec pool sweep: jobs=1 %.2fs (%d cells, %d batches at "
          "jobs=2) -> %s" % (seconds, len(cells), len(batches),
                             REPORT_PATH))
    write_report(REPORT_PATH, {"pool_baseline": {
        "scale": SWEEP_SCALE,
        "jobs": 1,
        "cells": len(cells),
        "batches_at_two": len(batches),
        "seconds": seconds,
    }})


def test_jobs_scaling(warmed):
    """jobs=2 must beat jobs=1 on a multi-core host, both vectorized."""
    base, cells, trace_dir = warmed
    cpus = os.cpu_count() or 1
    one_times, two_times = [], []
    ref = two = None
    for _ in range(REPS):
        seconds, ref = _timed_pool_sweep(base, cells, trace_dir, jobs=1)
        one_times.append(seconds)
        seconds, two = _timed_pool_sweep(base, cells, trace_dir, jobs=2)
        two_times.append(seconds)

    # Partitioning must not change a single result.
    assert set(two) == set(ref)
    for key, expected in ref.items():
        assert two[key].to_dict() == expected.to_dict(), key

    speedup = min(one_times) / min(two_times)
    floor = _floor()
    print("\nvec jobs scaling: jobs=1 %s vs jobs=2 %s -> min %.2fs / "
          "%.2fs = %.2fx (floor %.1fx, %d cpus) -> %s"
          % (["%.2f" % t for t in one_times],
             ["%.2f" % t for t in two_times],
             min(one_times), min(two_times), speedup, floor, cpus,
             REPORT_PATH))
    write_report(REPORT_PATH, {"jobs_scaling": {
        "scale": SWEEP_SCALE,
        "reps": REPS,
        "cells": len(cells),
        "cpus": cpus,
        "jobs1_seconds": one_times,
        "jobs2_seconds": two_times,
        "jobs1_seconds_min": min(one_times),
        "jobs2_seconds_min": min(two_times),
        "speedup": speedup,
        "floor": floor,
        "enforced": cpus >= 2,
    }})
    if cpus < 2:
        pytest.skip("jobs scaling needs >= 2 CPUs (host has %d); "
                    "ratio recorded, floor not enforced" % cpus)
    assert speedup >= floor, (
        "jobs=2 only %.2fx over jobs=1 with the vec backend "
        "(jobs=1 min %.2fs, jobs=2 min %.2fs)"
        % (speedup, min(one_times), min(two_times)))


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
