"""Benchmark-harness fixtures.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one paper exhibit: the benchmarked callable
does the actual simulation/compression work, and the resulting table is
printed in the paper's layout (use ``-s`` to see it inline; a summary
always lands in the benchmark name).

``BENCH_SCALE`` shortens benchmark trip counts so the whole harness
finishes in minutes; EXPERIMENTS.md records full-scale (scale=1.0)
numbers produced with ``python -m repro.eval all``.
"""

import pytest

from repro.eval.runner import Workbench
from repro.eval.tables import format_table

#: Trip-count multiplier for harness runs.
BENCH_SCALE = 0.15


@pytest.fixture(scope="session")
def wb():
    """A session-wide Workbench: programs/images built once."""
    return Workbench(scale=BENCH_SCALE)


@pytest.fixture()
def show():
    """Print a TableResult (visible with ``pytest -s``)."""

    def _show(table):
        print()
        print(format_table(table))
        return table

    return _show
