"""Regenerates paper Table 10: speedup across I-cache sizes."""

from repro.eval.experiments import table10


def test_table10_cache_size(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table10(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        cp = row[1::2]   # CodePack columns, small cache -> large
        opt = row[2::2]  # Optimized columns
        if bench in ("mpeg2enc", "pegwit"):
            continue
        # Paper: the optimized decompressor beats native at every size,
        # baseline CodePack loses most with the smallest cache, and
        # both converge toward native as the cache grows.
        assert all(value >= 0.99 for value in opt), bench
        assert cp[0] <= cp[-1] + 0.02, bench
        assert abs(1 - cp[-1]) < abs(1 - cp[0]), bench
