"""Exploration-engine benchmarks: backend equivalence and warm resume.

Three contracts, one report (``BENCH_explore.json``):

* **Backend equivalence** -- the same seeded search over the full
  default space must walk an *identical* visited-cell sequence (and
  reach an identical frontier value set) on the local Workbench
  backend and across a sharded serve fleet.  Determinism is the
  foundation the journal, the shared result cache and every
  reproducibility claim stand on, so it is asserted at benchmark
  scale, not just in the unit tests.
* **Coverage** -- the adaptive search must keep finding fresh cells:
  every visited key unique, and at least ``EXPLORE_MIN_CELLS`` of them
  (CI runs a reduced budget and still demands >= 50).
* **Warm resume** -- replaying the journal must satisfy every cell
  without pricing and finish at least ``RESUME_SPEEDUP_FLOOR``x faster
  than the cold run.

Environment knobs (CI sets reduced values; the defaults reproduce the
paper-scale acceptance run)::

    EXPLORE_BUDGET=500   unique cells per exploration
    EXPLORE_SCALE=0.1    benchmark trip-count multiplier
    BENCH_EXPLORE_JSON   report path (default BENCH_explore.json)
"""

import asyncio
import contextlib
import os
import threading
import time

from repro.explore.backends import FleetBackend, LocalBackend
from repro.explore.search import Explorer
from repro.explore.space import default_space
from repro.serve.fleet import LocalFleet
from repro.serve.server import ServerConfig
from repro.tools.benchinfo import write_report

BUDGET = int(os.environ.get("EXPLORE_BUDGET", "500"))
SCALE = float(os.environ.get("EXPLORE_SCALE", "0.1"))
CAP = 2_000_000
SEED = 7
EXPLORE_MIN_CELLS = min(50, BUDGET)
RESUME_SPEEDUP_FLOOR = 5.0
FLEET_WORKERS = 2

REPORT_PATH = os.environ.get("BENCH_EXPLORE_JSON", "BENCH_explore.json")

SPACE = default_space()


@contextlib.contextmanager
def fleet_in_thread(n_workers):
    """A LocalFleet serving on a background thread's event loop."""
    started = threading.Event()
    holder = {}

    def host():
        async def main():
            fleet = LocalFleet(n_workers=n_workers,
                               config=ServerConfig(sweep_cache=False))
            await fleet.start()
            holder["fleet"] = fleet
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            started.set()
            await holder["stop"].wait()
            await fleet.stop()

        asyncio.run(main())

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert started.wait(timeout=60), "fleet failed to start"
    try:
        yield holder["fleet"]
    finally:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)
        thread.join(timeout=60)


def explore(backend, journal=None, resume=False):
    explorer = Explorer(SPACE, backend, seed=SEED, budget=BUDGET,
                        batch=16, journal=journal, resume=resume)
    started = time.perf_counter()
    result = explorer.run()
    return result, time.perf_counter() - started


def stats_section(result, elapsed):
    return {
        "visited": result.stats.visited,
        "unique": len(set(result.visited)),
        "frontier": result.stats.frontier_size,
        "hypervolume": round(result.stats.hypervolume, 4),
        "backend_priced": result.stats.backend_priced,
        "journal_hits": result.stats.journal_hits,
        "duplicates": result.stats.duplicates,
        "stopped": result.stats.stopped,
        "elapsed_s": round(elapsed, 3),
        "cells_per_second": round(result.stats.visited / elapsed, 2)
        if elapsed > 0 else 0.0,
    }


def test_explore_contract(tmp_path):
    journal = str(tmp_path / "explore.jsonl")

    local, local_s = explore(
        LocalBackend(scale=SCALE, max_instructions=CAP), journal=journal)

    with fleet_in_thread(FLEET_WORKERS) as fleet:
        backend = FleetBackend(fleet.addresses, scale=SCALE,
                               max_instructions=CAP, timeout=600.0)
        try:
            remote, remote_s = explore(backend)
        finally:
            backend.close()

    resumed, warm_s = explore(
        LocalBackend(scale=SCALE, max_instructions=CAP), journal=journal,
        resume=True)

    resume_speedup = local_s / warm_s if warm_s > 0 else float("inf")
    write_report(REPORT_PATH, {"explore": {
        "budget": BUDGET, "scale": SCALE, "seed": SEED,
        "space_sha": SPACE.fingerprint(),
        "local": stats_section(local, local_s),
        "fleet": dict(stats_section(remote, remote_s),
                      workers=FLEET_WORKERS),
        "resume": dict(stats_section(resumed, warm_s),
                       speedup_vs_cold=round(resume_speedup, 2)),
        "sequences_identical": remote.visited == local.visited,
    }})
    print("\nexplore bench: local %.1fs, fleet %.1fs, warm resume %.2fs "
          "(%.1fx) -> %s" % (local_s, remote_s, warm_s, resume_speedup,
                             REPORT_PATH))

    # Coverage: the search kept finding fresh cells.
    assert len(set(local.visited)) == local.stats.visited
    assert local.stats.visited >= EXPLORE_MIN_CELLS
    assert len(local.frontier) > 0

    # Backend equivalence: same proposals, same frontier, cell by cell.
    assert remote.visited == local.visited
    assert remote.frontier.values_set() == local.frontier.values_set()

    # Warm resume: everything from the journal, nothing re-priced.
    assert resumed.stats.journal_hits == local.stats.visited
    assert resumed.stats.backend_priced == 0
    assert resumed.visited == local.visited
    assert resume_speedup >= RESUME_SPEEDUP_FLOOR, (
        "warm resume only %.2fx over the cold run (cold %.2fs, "
        "warm %.2fs)" % (resume_speedup, local_s, warm_s))
