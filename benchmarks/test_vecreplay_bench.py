"""Vectorized-replay benchmark: full sweep priced by column kernels.

Runs the full paper sweep (every exhibit's cells, 309 at scale 0.1) on
one worker through the PR 4 scalar replay path (``vec=False``) and
through the vectorized column kernels (``vec=True``), interleaved for
:data:`REPS` repetitions, and pins the wall-clock contract that the
vector backend wins by at least :data:`VEC_SPEEDUP_FLOOR` (override
with the ``VEC_SPEEDUP_FLOOR`` environment variable).

Methodology: both paths share the PR 4 functional infrastructure --
built programs, compressed images, predecoded text, recorded traces,
the replay table and the flat dynamic op list -- so those are prepared
once, un-timed, and injected into each measured Workbench.  Everything
the two paths compute *differently* stays inside the timed region and
is re-cooled before every repetition: cache/predictor profiles
(scalar walk vs column scan), the scalar replay kernels, and the
vec-only trace columns and dependency vectors (the "cold trace-column
cache" of the contract).  The score is min-of-reps over min-of-reps,
which suppresses scheduler noise without averaging away a true
regression.

The report lands in ``BENCH_vecreplay.json`` so CI uploads it as an
artifact::

    pytest benchmarks/test_vecreplay_bench.py -q -s
"""

import os
import time

import pytest

pytest.importorskip("numpy")

from repro.eval.experiments import ALL_EXPERIMENTS, sweep_cells
from repro.eval.runner import Workbench
from repro.sim.replay import _dyn_ops, get_replay_table
from repro.tools.benchinfo import write_report

REPORT_PATH = os.environ.get("BENCH_VECREPLAY_JSON", "BENCH_vecreplay.json")

#: Minimum scalar/vec full-sweep wall-clock ratio on one tree.  Since
#: the decline paths closed, the vec arm prices *every* cell with
#: column kernels -- including the narrow 8-issue and in-order groups
#: (3 cells per benchmark), where per-op ufunc call overhead is flat
#: in the column count and a columnar pass is genuinely slower than
#: compiled scalar replay.  The old 2.0 floor was measured with those
#: 36 cells silently falling back to scalar; the all-vec contract is
#: lower on one core and is instead recovered (and exceeded) by
#: ``--jobs N`` partitioning whole kernel groups across cores, which
#: the declines previously made impossible (see
#: benchmarks/test_vecsweep_bench.py for the composition contract).
VEC_SPEEDUP_FLOOR = 1.35

SWEEP_SCALE = 0.1
REPS = 3

#: Per-trace memo slots that belong to the timed region: profiles and
#: replay kernels are computed differently by the two paths, and the
#: column/dependency caches are the vec backend's own cost.  The flat
#: dynamic op list (``_dyn``) stays warm -- it is PR 4 functional
#: infrastructure shared verbatim by both.
_TIMED_MEMOS = ("_kernel", "_profiles", "_columns", "_vdeps", "_vkinds",
                "_vec_dallmiss")


def _floor():
    return float(os.environ.get("VEC_SPEEDUP_FLOOR", VEC_SPEEDUP_FLOOR))


def _cool_traces(wb):
    for trace in wb._traces.values():
        for attr in _TIMED_MEMOS:
            try:
                delattr(trace, attr)
            except AttributeError:
                pass


def _timed_sweep(base, cells, vec):
    """Time one full prefetch over *cells* with shared artifacts warm."""
    wb = Workbench(scale=SWEEP_SCALE, jobs=1, vec=vec)
    wb._programs = dict(base._programs)
    wb._images = dict(base._images)
    wb._static = dict(base._static)
    wb._traces = dict(base._traces)
    _cool_traces(wb)
    begin = time.perf_counter()
    wb.prefetch(cells)
    return time.perf_counter() - begin, wb


def test_full_sweep_vec_speedup():
    """Column kernels must beat per-cell scalar replay on the sweep."""
    base = Workbench(scale=SWEEP_SCALE, jobs=1, vec=False)
    cells = list(sweep_cells(list(ALL_EXPERIMENTS), wb=base))
    for bench in sorted({c[0] for c in cells}):
        static = base.static(bench)
        base.image(bench)
        trace = base.trace(bench)
        _dyn_ops(trace, get_replay_table(static).ops)

    scalar_times, vec_times = [], []
    scalar_wb = vec_wb = None
    for _ in range(REPS):
        seconds, scalar_wb = _timed_sweep(base, cells, vec=False)
        scalar_times.append(seconds)
        seconds, vec_wb = _timed_sweep(base, cells, vec=True)
        vec_times.append(seconds)

    # The backends must agree cell-for-cell before any speed claim,
    # and the vec arm must have priced every cell with column kernels.
    assert not vec_wb.stats.vec_declines, vec_wb.stats.vec_declines
    assert set(vec_wb._results) == set(scalar_wb._results)
    for key, expected in scalar_wb._results.items():
        assert vec_wb._results[key].to_dict() == expected.to_dict(), key

    speedup = min(scalar_times) / min(vec_times)
    floor = _floor()
    print("\nvec sweep: scalar %s vs vec %s -> min %.2fs / %.2fs = "
          "%.2fx (floor %.2fx, %d cells, %d vec-priced) -> %s"
          % (["%.2f" % t for t in scalar_times],
             ["%.2f" % t for t in vec_times],
             min(scalar_times), min(vec_times), speedup, floor,
             len(cells), vec_wb.stats.vec_cells, REPORT_PATH))
    write_report(REPORT_PATH, {"full_sweep": {
        "scale": SWEEP_SCALE,
        "jobs": 1,
        "reps": REPS,
        "cells": len(cells),
        "vec_cells": vec_wb.stats.vec_cells,
        "scalar_seconds": scalar_times,
        "vec_seconds": vec_times,
        "scalar_seconds_min": min(scalar_times),
        "vec_seconds_min": min(vec_times),
        "speedup": speedup,
        "floor": floor,
    }})
    assert speedup >= floor, (
        "vectorized sweep only %.2fx over scalar replay "
        "(scalar min %.2fs, vec min %.2fs)"
        % (speedup, min(scalar_times), min(vec_times)))


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
