"""Sweep-runner smoke benchmark: cold vs warm persistent cache.

Runs one paper table's whole sweep twice against a fresh cache
directory -- the cold pass simulates every cell and persists it, the
warm pass must serve everything from disk -- and pins the contract that
the warm pass is at least 5x faster.  Also times the batched in-order
fast path against the per-instruction reference model on the same
cells.

The measured trajectory lands in ``BENCH_sweep.json`` next to the
working directory so CI can upload it as an artifact::

    pytest benchmarks/test_sweep_runner.py -q -s
"""

import os
import time

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.eval.experiments import sweep_cells, table7
from repro.eval.runner import Workbench
from repro.sim.config import ARCH_1_ISSUE
from repro.sim.machine import simulate
from repro.tools.benchinfo import write_report

#: Minimum cold/warm wall-clock ratio the persistent cache must deliver.
WARM_SPEEDUP_FLOOR = 5.0

TRAJECTORY_PATH = os.environ.get("BENCH_SWEEP_JSON", "BENCH_sweep.json")

SWEEP_SCALE = min(BENCH_SCALE, 0.1)
SWEEP_BENCHMARKS = ("cc1", "pegwit", "mpeg2enc")


def _write_trajectory(payload):
    write_report(TRAJECTORY_PATH, payload)


def test_warm_cache_sweep_speedup(tmp_path):
    """Cold table sweep, then warm: the cache must win by >= 5x."""
    cache_dir = str(tmp_path / "cache")
    cells = sweep_cells(["table7"], benchmarks=SWEEP_BENCHMARKS)
    jobs = os.environ.get("SWEEP_JOBS", "auto")

    begin = time.perf_counter()
    cold = Workbench(scale=SWEEP_SCALE, cache=cache_dir, jobs=jobs)
    cold.prefetch(cells)
    cold_table = table7(wb=cold, benchmarks=SWEEP_BENCHMARKS)
    cold_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    warm = Workbench(scale=SWEEP_SCALE, cache=cache_dir, jobs=jobs)
    warm.prefetch(cells)
    warm_table = table7(wb=warm, benchmarks=SWEEP_BENCHMARKS)
    warm_seconds = time.perf_counter() - begin

    assert warm.stats.cache_hits == len(cells)
    assert warm.stats.sim_runs == 0 and warm.stats.parallel_cells == 0
    assert warm_table.rows == cold_table.rows

    speedup = cold_seconds / warm_seconds
    print("\nsweep cold=%.2fs warm=%.2fs speedup=%.1fx (jobs=%s, %d cells)"
          % (cold_seconds, warm_seconds, speedup, cold.jobs, len(cells)))
    _write_trajectory({"warm_cache": {
        "table": "table7",
        "benchmarks": list(SWEEP_BENCHMARKS),
        "scale": SWEEP_SCALE,
        "jobs": cold.jobs,
        "cells": len(cells),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "cold_stats": cold.stats.as_dict(cache=cold.cache),
        "warm_stats": warm.stats.as_dict(cache=warm.cache),
    }})
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        "warm sweep only %.1fx faster (cold %.2fs, warm %.2fs)"
        % (speedup, cold_seconds, warm_seconds))


def test_batched_inorder_speedup():
    """The block model must beat the reference model on the 1-issue
    sweep (and agree with it cycle-for-cycle -- the differential suite
    in tests/sim/test_blockexec.py checks exactness; here we record the
    performance trajectory)."""
    wb = Workbench(scale=SWEEP_SCALE)
    rows = {}
    totals = {"reference": 0.0, "batched": 0.0}
    for bench in SWEEP_BENCHMARKS:
        program = wb.program(bench)
        static = wb.static(bench)
        # Warm the compiled block table so one-time setup is excluded.
        simulate(program, ARCH_1_ISSUE, static=static, batched=True)
        timings = {}
        for label, batched in (("reference", False), ("batched", True)):
            best = float("inf")
            for _ in range(3):
                begin = time.perf_counter()
                result = simulate(program, ARCH_1_ISSUE, static=static,
                                  batched=batched)
                best = min(best, time.perf_counter() - begin)
            timings[label] = best
            timings["%s_cycles" % label] = result.cycles
        totals["reference"] += timings["reference"]
        totals["batched"] += timings["batched"]
        timings["speedup"] = timings["reference"] / timings["batched"]
        rows[bench] = timings
        assert timings["reference_cycles"] == timings["batched_cycles"]
    overall = totals["reference"] / totals["batched"]
    print("\nbatched in-order speedup: %.2fx overall (%s)"
          % (overall, ", ".join("%s %.2fx" % (b, rows[b]["speedup"])
                                for b in rows)))
    _write_trajectory({"batched_inorder": {
        "scale": SWEEP_SCALE,
        "benchmarks": rows,
        "overall_speedup": overall,
    }})
    assert overall > 1.0


if __name__ == "__main__":
    import sys
    sys.exit(pytest.main([__file__, "-q", "-s"]))
