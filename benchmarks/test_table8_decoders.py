"""Regenerates paper Table 8: speedup due to decompression rate."""

from repro.eval.experiments import table8


def test_table8_decoders(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table8(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench, one, two, sixteen = row
        assert two >= one - 1e-9, bench
        assert sixteen >= two - 1e-9, bench
        # Paper: "most of the benefit is achieved by using only 2
        # decompressors" -- going to 16 adds little.
        assert sixteen - two <= (two - one) + 0.02, bench
