"""Regenerates paper Table 3: compression ratio of the .text section."""

from repro.eval.experiments import table3


def test_table3_compression_ratio(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table3(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    # Paper band: every benchmark compresses to 54-64% of native size.
    for row in table.rows:
        bench, _, _, ratio, paper = row
        assert 0.50 <= ratio <= 0.68, (bench, ratio)
        assert abs(ratio - paper) < 0.08, \
            "%s drifted from the paper's ratio" % bench
