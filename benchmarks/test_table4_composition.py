"""Regenerates paper Table 4: composition of the compressed region."""

from repro.eval.experiments import table4
from repro.eval.paperdata import TABLE4


def test_table4_composition(benchmark, wb, show):
    table = benchmark.pedantic(lambda: table4(wb=wb), rounds=1,
                               iterations=1)
    show(table)
    for row in table.rows:
        bench = row[0]
        index_frac, raw_frac = row[1], row[6]
        # Paper: index table ~5%, raw bits 14-25%.
        assert 0.02 <= index_frac <= 0.09, (bench, index_frac)
        assert 0.10 <= raw_frac <= 0.30, (bench, raw_frac)
        # Tags+indices carry the bulk of the image, as in the paper.
        assert row[3] + row[4] > 0.5, bench
