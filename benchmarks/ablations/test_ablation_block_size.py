"""Ablation: compression-block size (the paper fixes 16 instructions).

Smaller blocks waste pad bits and index reach; larger blocks amortise
padding but make every miss fetch and decompress more bytes.  This
bench quantifies both directions of the trade the paper's designers
took.
"""

import pytest

from repro.codepack.compressor import compress_program
from repro.eval.tables import TableResult, format_table
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate


@pytest.mark.parametrize("block_instructions", [8, 16, 32])
def test_ablation_block_size(benchmark, wb, block_instructions):
    prog = wb.program("cc1")
    image = benchmark.pedantic(
        lambda: compress_program(prog,
                                 block_instructions=block_instructions,
                                 group_blocks=2),
        rounds=1, iterations=1)
    native = wb.run("cc1", ARCH_4_ISSUE)
    packed = simulate(prog, ARCH_4_ISSUE, codepack=CodePackConfig(),
                      image=image, static=wb.static("cc1"))
    speedup = packed.speedup_over(native)
    print("\nblock=%2d insts: ratio=%.4f speedup=%.3f"
          % (block_instructions, image.compression_ratio, speedup))
    assert 0.4 < image.compression_ratio < 0.8
    assert 0.5 < speedup < 1.5


def test_block_size_tradeoff_direction(benchmark, wb, show):
    """Pad overhead shrinks with block size; miss cost grows."""
    prog = wb.program("cc1")

    def sweep():
        rows = []
        for block in (8, 16, 32):
            image = compress_program(prog, block_instructions=block)
            pad = image.stats.fractions()["pad_bits"]
            rows.append([block, image.compression_ratio, pad])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(TableResult("Ablation", "Block size vs ratio and pad",
                     ["block insts", "ratio", "pad fraction"], rows,
                     formats={1: "%.4f", 2: "%.4f"}))
    pads = [row[2] for row in rows]
    assert pads[0] > pads[1] > pads[2]
