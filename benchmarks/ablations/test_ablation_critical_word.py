"""Ablation: critical-word-first refill for native code.

Paper: "We modified SimpleScalar to return the critical word first for
I-cache misses ... This is a significant advantage for native code
programs."  Without it, native misses wait for their word's position in
the burst, shrinking CodePack's disadvantage.
"""

from repro.eval.tables import TableResult
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate


def test_ablation_critical_word_first(benchmark, wb, show):
    prog = wb.program("cc1")
    static = wb.static("cc1")

    def run_all():
        cwf = simulate(prog, ARCH_4_ISSUE, static=static)
        plain = simulate(prog, ARCH_4_ISSUE, static=static,
                         critical_word_first=False)
        packed = simulate(prog, ARCH_4_ISSUE, static=static,
                          image=wb.image("cc1"),
                          codepack=CodePackConfig())
        return cwf, plain, packed

    cwf, plain, packed = benchmark.pedantic(run_all, rounds=1,
                                            iterations=1)
    rows = [
        ["native + critical word first", cwf.cycles,
         packed.cycles / cwf.cycles],
        ["native, in-order refill", plain.cycles,
         packed.cycles / plain.cycles],
    ]
    show(TableResult(
        "Ablation", "Critical-word-first (cc1, 4-issue)",
        ["native model", "native cycles", "CodePack slowdown vs it"],
        rows, formats={2: "%.3f"}))
    # CWF must help native code, i.e. the paper's baseline is the
    # stronger comparison point.
    assert cwf.cycles < plain.cycles
    assert packed.cycles / cwf.cycles > packed.cycles / plain.cycles
