"""Ablation: per-program vs generic dictionaries.

Paper Section 3.1: "The dictionaries are fixed at program load-time
which allows them to be adapted for specific programs."  Compressing
each benchmark with a *foreign* program's dictionaries measures what
that adaptation buys.
"""

from repro.codepack.compressor import compress_program
from repro.codepack.decompressor import decompress_program
from repro.codepack.dictionary import build_dictionaries
from repro.eval.tables import TableResult


def test_ablation_generic_dictionary(benchmark, wb, show):
    donor = wb.program("go")  # the dictionary donor

    def sweep():
        high, low = build_dictionaries(donor.text)
        rows = []
        for bench in ("cc1", "perl", "vortex"):
            program = wb.program(bench)
            own = wb.image(bench)
            generic = compress_program(program, high_dict=high,
                                       low_dict=low)
            assert decompress_program(generic) == program.text
            rows.append([bench, own.compression_ratio,
                         generic.compression_ratio,
                         generic.compression_ratio
                         - own.compression_ratio])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(TableResult(
        "Ablation", "Load-time dictionary adaptation (donor: go)",
        ["bench", "own dictionaries", "generic dictionaries", "penalty"],
        rows, formats={1: "%.3f", 2: "%.3f", 3: "%+.3f"},
        notes="Our stand-ins share a code generator, so dictionaries "
              "transfer unusually well; real cross-program penalties "
              "would be larger.  Adaptation never hurts."))
    for row in rows:
        assert row[2] >= row[1] - 1e-9, row[0]  # adaptation never loses
