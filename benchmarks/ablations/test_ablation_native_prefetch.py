"""Ablation: give native code a next-line prefetcher.

The paper explains CodePack's occasional wins over native code by "the
inherent prefetching behavior of the CodePack algorithm" plus its lower
memory traffic.  Granting the native machine a one-line next-line
prefetcher isolates the prefetch mechanism: whatever advantage remains
for CodePack is the traffic reduction itself.
"""

from repro.eval.tables import TableResult
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate


def test_ablation_native_prefetch(benchmark, wb, show):
    prog = wb.program("cc1")
    static = wb.static("cc1")

    def run_all():
        native = simulate(prog, ARCH_4_ISSUE, static=static)
        prefetching = simulate(prog, ARCH_4_ISSUE, static=static,
                               native_prefetch=True, mode="native+nlp")
        optimized = simulate(prog, ARCH_4_ISSUE, static=static,
                             image=wb.image("cc1"),
                             codepack=CodePackConfig.optimized())
        return native, prefetching, optimized

    native, prefetching, optimized = benchmark.pedantic(run_all, rounds=1,
                                                        iterations=1)
    rows = [
        ["native", native.cycles, 1.0],
        ["native + next-line prefetch", prefetching.cycles,
         prefetching.speedup_over(native)],
        ["CodePack optimized", optimized.cycles,
         optimized.speedup_over(native)],
    ]
    show(TableResult("Ablation",
                     "Next-line prefetch for native code (cc1, 4-issue)",
                     ["model", "cycles", "speedup"], rows,
                     formats={2: "%.3f"}))
    # Prefetch helps native code, but (on this call-driven miss stream)
    # does not close the gap to compressed fetches: the traffic
    # reduction is doing real work beyond prefetching.
    assert prefetching.cycles <= native.cycles
    assert optimized.cycles < prefetching.cycles
