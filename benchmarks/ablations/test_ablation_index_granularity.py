"""Ablation: index-entry granularity (1 vs 2 blocks per group).

The paper's 2-block groups halve the index table "to optimize table
size" at the cost of a short-offset add on block-2 lookups.  One-block
groups double index-table overhead.
"""

from repro.codepack.compressor import compress_program
from repro.eval.tables import TableResult


def test_ablation_index_granularity(benchmark, wb, show):
    prog = wb.program("vortex")

    def build_both():
        one = compress_program(prog, group_blocks=1)
        two = compress_program(prog, group_blocks=2)
        return one, two

    one, two = benchmark.pedantic(build_both, rounds=1, iterations=1)
    rows = [
        [1, one.n_groups, one.stats.fractions()["index_table_bits"],
         one.compression_ratio],
        [2, two.n_groups, two.stats.fractions()["index_table_bits"],
         two.compression_ratio],
    ]
    show(TableResult("Ablation", "Index granularity (vortex)",
                     ["blocks/group", "index entries", "index fraction",
                      "ratio"], rows, formats={2: "%.4f", 3: "%.4f"}))
    assert one.n_groups > two.n_groups * 1.9
    assert one.stats.index_table_bits > two.stats.index_table_bits * 1.9
    assert one.compression_ratio > two.compression_ratio
