"""Ablation: shared vs idle memory channel.

Paper Figure 2 times each miss against an otherwise idle channel and
says nothing about contention between instruction fetch, index fetch
and data misses.  This ablation serializes all three on one channel and
shows how much of CodePack's advantage survives (its per-miss bursts
are longer -- a whole 16-instruction block plus an index entry -- so
contention costs it more than native code).
"""

from repro.eval.tables import TableResult
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate


def test_ablation_shared_bus(benchmark, wb, show):
    prog = wb.program("cc1")
    static = wb.static("cc1")
    image = wb.image("cc1")

    def run_grid():
        rows = []
        for label, arch in (("idle channel (paper model)", ARCH_4_ISSUE),
                            ("shared channel", ARCH_4_ISSUE
                             .with_shared_bus())):
            native = simulate(prog, arch, static=static)
            optimized = simulate(prog, arch, static=static, image=image,
                                 codepack=CodePackConfig.optimized())
            rows.append([label, native.cycles, optimized.cycles,
                         optimized.speedup_over(native)])
        return rows

    rows = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    show(TableResult("Ablation", "Memory-channel contention (cc1, 4-issue)",
                     ["channel model", "native cycles", "optimized cycles",
                      "optimized speedup"], rows, formats={3: "%.3f"}))
    idle, shared = rows
    # Contention slows everyone down and narrows CodePack's advantage.
    assert shared[1] >= idle[1]
    assert shared[2] >= idle[2]
    assert shared[3] <= idle[3] + 0.01
