"""Ablation: dictionary size classes.

The paper's dictionaries hold <512 entries with 2-11-bit codewords.
Shrinking the classes shortens codewords but spills symbols to raw
escapes; growing them captures more symbols with longer codewords.
"""

from repro.codepack.codewords import CodewordClass, CodewordScheme
from repro.codepack.compressor import compress_words
from repro.codepack.decompressor import decompress_program
from repro.eval.tables import TableResult

SMALL_HIGH = CodewordScheme("high-small", zero_special=False, classes=(
    CodewordClass(0b00, 2, 4), CodewordClass(0b01, 2, 6)))
SMALL_LOW = CodewordScheme("low-small", zero_special=True, classes=(
    CodewordClass(0b01, 2, 4), CodewordClass(0b10, 2, 6)))

LARGE_HIGH = CodewordScheme("high-large", zero_special=False, classes=(
    CodewordClass(0b00, 2, 4), CodewordClass(0b01, 2, 8),
    CodewordClass(0b10, 2, 10)))
LARGE_LOW = CodewordScheme("low-large", zero_special=True, classes=(
    CodewordClass(0b01, 2, 4), CodewordClass(0b10, 2, 8),
    CodewordClass(0b110, 3, 10)))


def test_ablation_dictionary_sizes(benchmark, wb, show):
    words = wb.program("perl").text

    def compress_three():
        small = compress_words(words, high_scheme=SMALL_HIGH,
                               low_scheme=SMALL_LOW)
        default = compress_words(words)
        large = compress_words(words, high_scheme=LARGE_HIGH,
                               low_scheme=LARGE_LOW)
        return small, default, large

    small, default, large = benchmark.pedantic(compress_three, rounds=1,
                                               iterations=1)
    rows = []
    for label, image in (("small (80/80)", small),
                         ("paper-sized (336/336)", default),
                         ("large (1296/1296)", large)):
        frac = image.stats.fractions()
        rows.append([label, image.compression_ratio, frac["raw_bits"],
                     len(image.high_dict) + len(image.low_dict)])
    show(TableResult("Ablation", "Dictionary sizing (perl)",
                     ["scheme", "ratio", "raw fraction", "entries"],
                     rows, formats={1: "%.4f", 2: "%.4f"}))
    # All variants must remain lossless.
    assert decompress_program(small) == words
    assert decompress_program(large) == words
    # Small dictionaries spill more raw bits.
    assert small.stats.fractions()["raw_bits"] \
        > default.stats.fractions()["raw_bits"]
    # The paper-sized scheme should be at least competitive with both.
    assert default.compression_ratio <= small.compression_ratio + 0.02
