"""Ablation: the 16-instruction output buffer (the paper's built-in
prefetch).

The paper credits CodePack's occasional *speedup* over native code to
"the inherent prefetching behavior of the CodePack algorithm"; turning
the buffer off isolates that mechanism.
"""

from repro.eval.tables import TableResult
from repro.sim import ARCH_4_ISSUE, CodePackConfig, simulate


def test_ablation_output_buffer(benchmark, wb, show):
    prog = wb.program("cc1")
    image = wb.image("cc1")
    static = wb.static("cc1")

    def run_both():
        with_buf = simulate(prog, ARCH_4_ISSUE, image=image,
                            static=static, codepack=CodePackConfig())
        without = simulate(prog, ARCH_4_ISSUE, image=image, static=static,
                           codepack=CodePackConfig(output_buffer=False))
        return with_buf, without

    with_buf, without = benchmark.pedantic(run_both, rounds=1,
                                           iterations=1)
    native = wb.run("cc1", ARCH_4_ISSUE)
    rows = [
        ["with buffer", with_buf.speedup_over(native),
         with_buf.engine.buffer_hits],
        ["without buffer", without.speedup_over(native),
         without.engine.buffer_hits],
    ]
    show(TableResult("Ablation", "Output-buffer prefetch (cc1, 4-issue)",
                     ["model", "speedup vs native", "buffer hits"], rows,
                     formats={1: "%.3f"}))
    assert with_buf.engine.buffer_hits > 0
    assert without.engine.buffer_hits == 0
    assert with_buf.cycles < without.cycles
